"""Command-line interface: compile OpenQASM files with qubit reuse.

Usage examples (kept in sync with the argparse tree below; the README's
CLI section mirrors these and ``tests/test_docs.py`` parses both)::

    python -m repro compile circuit.qasm --mode max_reuse
    python -m repro compile circuit.qasm --mode min_swap --backend mumbai \
        --output compiled.qasm --draw
    python -m repro compile bv_20 --cache          # content-addressed cache
    python -m repro compile bv_20 --cache --calib-bands 2   # drift-banded key
    python -m repro compile bv_20 --server http://127.0.0.1:8787
    python -m repro compile bv_5 --strategy portfolio --objective qubits
    python -m repro compile bv_10 --strategy chain
    python -m repro compile bv_10 --strategy chain --backend iontrap32 \
        --mode min_swap
    python -m repro compile bv_20 --backend eagle127 --mode min_swap
    python -m repro backends                       # list the device registry
    python -m repro drift-replay bv_5 --device ibm_mumbai --steps 12 --bands 2
    python -m repro serve --port 8787 --cache-dir /tmp/caqr-cache
    python -m repro serve --port 8787 --workers-mode persistent \
        --disk-entries 10000 --request-log /tmp/caqr-requests.jsonl
    python -m repro serve --port 8787 --auth-token secret \
        --tls-cert cert.pem --tls-key key.pem
    python -m repro gateway --backend http://127.0.0.1:8787 \
        --backend http://127.0.0.1:8788 --port 8786
    python -m repro sweep circuit.qasm --backend mumbai
    python -m repro benchmarks            # list bundled benchmark names
    python -m repro cache stats           # inspect the on-disk cache
    python -m repro cache stats --server http://127.0.0.1:8787
    python -m repro cache clear
    python -m repro cache clear --key <fingerprint>
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro.analysis import format_table
from repro.circuit import parse_qasm, to_qasm
from repro.compile_api import caqr_compile
from repro.core import assess_reuse_benefit, sweep_regular
from repro.exceptions import ReproError
from repro.hardware import (
    Backend,
    backend_from_json,
    device_names,
    device_profile,
    get_device,
    ibm_mumbai,
)
from repro.workloads import benchmark_names, get_benchmark, qasm_benchmark_names

__all__ = ["main"]


def _load_backend(spec: Optional[str]) -> Optional[Backend]:
    if spec is None:
        return None
    if spec == "mumbai":
        return ibm_mumbai()
    if spec in device_names():
        return get_device(spec)
    with open(spec) as handle:
        return backend_from_json(handle.read())


def _load_circuit(path: str):
    if path.endswith(".qasm"):
        with open(path) as handle:
            return parse_qasm(handle.read())
    # convenience: bundled benchmark names work in place of files
    return get_benchmark(path)


def _cache_spec(args: argparse.Namespace):
    """Map --server/--cache/--cache-dir onto ``caqr_compile``'s ``cache=``.

    A ``--server URL`` routes the compile through a running ``repro
    serve`` instance (``resolve_cache`` turns the URL into a
    :class:`~repro.service.net.client.RemoteCompileService`)."""
    if getattr(args, "server", None):
        return args.server
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return bool(getattr(args, "cache", False))


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    backend = _load_backend(args.backend)
    report = caqr_compile(
        circuit,
        backend=backend,
        mode=args.mode,
        qubit_limit=args.qubit_limit,
        reset_style=args.reset_style,
        cache=_cache_spec(args),
        strategy=args.strategy,
        objective=args.objective,
        calib_bands=args.calib_bands,
    )
    metrics = report.metrics
    rows = [
        ["qubits used", metrics.qubits_used],
        ["depth", metrics.depth],
        ["duration (dt)", metrics.duration_dt],
        ["SWAPs", metrics.swap_count],
        ["2Q gates", metrics.two_qubit_count],
        ["reuse resets", metrics.reuse_resets],
        ["qubit saving", f"{report.qubit_saving:.0%}"],
        ["reuse beneficial", report.reuse_beneficial],
    ]
    if report.strategy is not None:
        rows.append(["winning strategy", report.strategy])
        if report.optimality_gap is not None:
            rows.append(["optimality gap", report.optimality_gap])
        if report.exact_optimal is not None:
            rows.append(["oracle optimal", report.exact_optimal])
    if _cache_spec(args):
        rows.append(["served from cache", report.from_cache])
    print(format_table(["metric", "value"], rows, title=f"mode={report.mode}"))
    if args.draw:
        print()
        print(report.circuit.draw())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(to_qasm(report.circuit))
        print(f"\nwrote {args.output}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    backend = _load_backend(args.backend)
    from repro.core import sweep_commuting
    from repro.core.structure import extract_commuting_structure

    structure = extract_commuting_structure(circuit)
    if (
        structure is not None
        and structure.uniform_gamma() is not None
        and structure.uniform_beta() is not None
    ):
        print("(recognised a commuting QAOA circuit — using the "
              "commuting-gate pipeline)\n")
        points = sweep_commuting(
            structure.graph,
            backend=backend,
            gamma=structure.uniform_gamma(),
            beta=structure.uniform_beta(),
        )
    else:
        points = sweep_regular(circuit, backend=backend)
    rows = []
    for point in points:
        rows.append(
            [
                point.qubits,
                point.logical_depth,
                point.compiled_depth if point.compiled_depth is not None else "-",
                point.swap_count if point.swap_count is not None else "-",
            ]
        )
    print(
        format_table(
            ["qubits", "logical depth", "compiled depth", "swaps"],
            rows,
            title=f"qubit-reuse tradeoff sweep: {args.circuit}",
        )
    )
    report = assess_reuse_benefit(points)
    print(
        f"\nreuse beneficial: {report.beneficial} "
        f"(floor {report.minimum_qubits} qubits, "
        f"max saving {report.saving_fraction:.0%})"
    )
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    print("regular benchmarks:", ", ".join(benchmark_names()))
    print("QASM assets:", ", ".join(qasm_benchmark_names()))
    print("QAOA instances: qaoa<N>-<density>, e.g. qaoa10-0.3")
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    rows = []
    for name in device_names():
        profile = device_profile(name)
        coupling = profile.coupling()
        rows.append(
            [
                name,
                profile.family,
                coupling.num_qubits,
                len(coupling.edges),
                profile.description,
            ]
        )
    print(
        format_table(
            ["name", "family", "qubits", "links", "description"],
            rows,
            title="device registry (see docs/BACKENDS.md)",
        )
    )
    return 0


def _cmd_drift_replay(args: argparse.Namespace) -> int:
    from repro.service.driftreplay import replay_drift

    circuit = _load_circuit(args.circuit)
    backend = _load_backend(args.device)
    if backend is None:
        raise ReproError("drift-replay needs --device")
    result = replay_drift(
        circuit,
        backend,
        steps=args.steps,
        volatility=args.volatility,
        calib_bands=args.bands,
        seed=args.seed,
        mode=args.mode,
        qubit_limit=args.qubit_limit,
    )
    rows = [
        ["steps", result.steps],
        ["calib bands", result.calib_bands],
        ["volatility", result.volatility],
        ["banded hit rate", f"{result.banded_hit_rate:.0%} "
         f"({result.banded_hits}/{result.banded_hits + result.banded_misses})"],
        ["exact hit rate", f"{result.exact_hit_rate:.0%} "
         f"({result.exact_hits}/{result.exact_hits + result.exact_misses})"],
        ["hit uplift", f"{result.hit_uplift:.1f}x"],
        ["decision changes", result.decision_changes],
        ["shards touched (banded)", result.banded_shards],
        ["shards touched (exact)", result.exact_shards],
        ["ESP decay mean", f"{result.mean_esp_gap:.3g}"],
        ["ESP decay max", f"{result.max_esp_gap:.3g}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"drift replay: {args.circuit} on {args.device}",
        )
    )
    return 0


def _cache_directory(args: argparse.Namespace) -> str:
    directory = args.dir or os.environ.get("CAQR_CACHE_DIR")
    if not directory:
        raise ReproError(
            "no cache directory: pass --dir or set CAQR_CACHE_DIR"
        )
    return directory


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.service import SCHEMA_VERSION, DiskCache

    if getattr(args, "server", None):
        from repro.service import RemoteCompileService

        payload = RemoteCompileService(args.server).stats()
        counters = payload.get("stats", {}).get("counters", {})
        rows = [["server", args.server]]
        rows.extend([name, counters[name]] for name in sorted(counters))
        for shard, usage in sorted(payload.get("shards", {}).items()):
            rows.append(
                [f"shard {shard}", f"{usage['entries']} entries, {usage['bytes']} B"]
            )
        print(format_table(["field", "value"], rows, title="compile service"))
        return 0
    store = DiskCache(_cache_directory(args))
    rows = [
        ["directory", store.directory],
        ["entries", len(store)],
        ["bytes", store.total_bytes],
        ["schema version", SCHEMA_VERSION],
    ]
    for shard, usage in sorted(store.shard_stats().items()):
        rows.append(
            [f"shard {shard}", f"{usage['entries']} entries, {usage['bytes']} B"]
        )
    print(format_table(["field", "value"], rows, title="compile cache"))
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    from repro.service import DiskCache

    key = getattr(args, "key", None)
    if getattr(args, "server", None):
        from repro.service import RemoteCompileService

        client = RemoteCompileService(args.server)
        if key:
            removed = client.invalidate(key)
            print(
                f"invalidated {key} on {args.server}"
                if removed
                else f"no entry {key} on {args.server}"
            )
        else:
            client.clear()
            print(f"cleared the cache on {args.server}")
        return 0
    store = DiskCache(_cache_directory(args))
    if key:
        removed = store.invalidate(key)
        print(f"removed {removed} entries for {key} from {store.directory}")
        return 0
    removed = store.clear()
    print(f"removed {removed} cache entries from {store.directory}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import run_server

    return run_server(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir or os.environ.get("CAQR_CACHE_DIR") or None,
        ttl=args.ttl,
        max_workers=args.workers,
        max_concurrency=args.max_concurrency,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        workers_mode=args.workers_mode,
        disk_entries=args.disk_entries,
        disk_bytes=args.disk_bytes,
        request_log=args.request_log,
        auth_token=args.auth_token,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
    )


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.service import run_gateway

    return run_gateway(
        backends=args.backend,
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        mark_down_after=args.mark_down_after,
        probe_interval=args.probe_interval,
        pool_size=args.pool_size,
        request_timeout=args.timeout,
        auth_token=args.auth_token,
        backend_token=args.backend_token,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
        backend_ca=args.backend_ca,
        backend_tls_insecure=args.backend_tls_insecure,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CaQR: compile quantum circuits with qubit reuse "
        "through dynamic circuits",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile one circuit")
    compile_parser.add_argument(
        "circuit", help="OpenQASM 2 file (*.qasm) or bundled benchmark name"
    )
    compile_parser.add_argument(
        "--mode",
        default="min_depth",
        choices=["qubit_budget", "max_reuse", "min_depth", "min_swap"],
    )
    compile_parser.add_argument("--qubit-limit", type=int, default=None)
    compile_parser.add_argument(
        "--backend",
        default=None,
        help='"mumbai" or a backend-JSON file (required for min_swap)',
    )
    compile_parser.add_argument(
        "--reset-style", default="cif", choices=["cif", "builtin"]
    )
    compile_parser.add_argument(
        "--strategy",
        default="auto",
        choices=["auto", "portfolio", "chain"],
        help="'portfolio' races every engine (plus the exact oracle on "
        "small circuits) and keeps the objective-best result; 'chain' "
        "runs the beam-searched chain engine (dual-register trapped-ion "
        "cost model on all-to-all backends)",
    )
    compile_parser.add_argument(
        "--objective",
        default=None,
        choices=["qubits", "depth", "est_error"],
        help="winner criterion (est_error needs --backend); only valid "
        "with --strategy portfolio or chain",
    )
    compile_parser.add_argument("--output", default=None, help="write QASM here")
    compile_parser.add_argument(
        "--draw", action="store_true", help="print the ASCII circuit"
    )
    compile_parser.add_argument(
        "--cache",
        action="store_true",
        help="serve repeat compilations from the content-addressed cache "
        "(persistent when CAQR_CACHE_DIR is set)",
    )
    compile_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist the compile cache under DIR (implies --cache)",
    )
    compile_parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="compile through a running `repro serve` instance "
        "(shared cross-process cache; overrides --cache/--cache-dir)",
    )
    compile_parser.add_argument(
        "--calib-bands",
        type=int,
        default=None,
        metavar="N",
        help="drift tolerance of the cache key: quantise calibration "
        "values into N bands per decade (default: $CAQR_CALIB_BANDS; "
        "0 = exact digests)",
    )
    compile_parser.set_defaults(func=_cmd_compile)

    sweep_parser = sub.add_parser(
        "sweep", help="print the qubit/depth/SWAP tradeoff sweep"
    )
    sweep_parser.add_argument(
        "circuit", help="OpenQASM 2 file (*.qasm) or bundled benchmark name"
    )
    sweep_parser.add_argument(
        "--backend",
        default=None,
        help='"mumbai" or a backend-JSON file (adds compiled depth/SWAP '
        "columns)",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    benchmarks_parser = sub.add_parser("benchmarks", help="list bundled circuits")
    benchmarks_parser.set_defaults(func=_cmd_benchmarks)

    backends_parser = sub.add_parser(
        "backends", help="list the synthetic device registry"
    )
    backends_parser.set_defaults(func=_cmd_backends)

    drift_parser = sub.add_parser(
        "drift-replay",
        help="replay a calibration-drift series through the compile cache "
        "and report hit-rate uplift, decision stability, and ESP decay",
    )
    drift_parser.add_argument(
        "circuit", help="OpenQASM 2 file (*.qasm) or bundled benchmark name"
    )
    drift_parser.add_argument(
        "--device",
        default="ibm_mumbai",
        help="registry device name, \"mumbai\", or a backend-JSON file",
    )
    drift_parser.add_argument(
        "--steps", type=int, default=12, help="snapshots in the drift series"
    )
    drift_parser.add_argument(
        "--volatility", type=float, default=0.01,
        help="per-step stddev of log(value) for the random walk",
    )
    drift_parser.add_argument(
        "--bands", type=int, default=2,
        help="calibration bands per decade for the banded lane",
    )
    drift_parser.add_argument(
        "--seed", type=int, default=7, help="drift random-walk seed"
    )
    drift_parser.add_argument(
        "--mode",
        default="min_depth",
        choices=["qubit_budget", "max_reuse", "min_depth", "min_swap"],
    )
    drift_parser.add_argument("--qubit-limit", type=int, default=None)
    drift_parser.set_defaults(func=_cmd_drift_replay)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the on-disk compile cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count and byte totals of the store"
    )
    cache_stats.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $CAQR_CACHE_DIR)",
    )
    cache_stats.add_argument(
        "--server", default=None, metavar="URL",
        help="read /v1/stats from a running `repro serve` instance instead",
    )
    cache_stats.set_defaults(func=_cmd_cache_stats)
    cache_clear = cache_sub.add_parser(
        "clear", help="remove every entry (or one fingerprint with --key)"
    )
    cache_clear.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $CAQR_CACHE_DIR)",
    )
    cache_clear.add_argument(
        "--key", default=None, metavar="FINGERPRINT",
        help="invalidate one fingerprint instead of the whole store",
    )
    cache_clear.add_argument(
        "--server", default=None, metavar="URL",
        help="invalidate on a running `repro serve` instance instead",
    )
    cache_clear.set_defaults(func=_cmd_cache_clear)

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP compile service (shared cache + dedup)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8787, help="0 picks a free port"
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent cache directory (default: $CAQR_CACHE_DIR, "
        "else memory-only)",
    )
    serve_parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="expire cache entries older than this",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=None,
        help="compile worker threads (default: cpu count, capped at 8)",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=32,
        help="admitted compile requests before answering 429",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-request compile timeout in seconds (answers 504)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve_parser.add_argument(
        "--workers-mode", default=None, choices=["persistent", "ephemeral"],
        help="batch/portfolio process-pool mode (default: $CAQR_WORKERS_MODE, "
        "else persistent)",
    )
    serve_parser.add_argument(
        "--disk-entries", type=int, default=None, metavar="N",
        help="per-shard disk-cache entry cap (LRU eviction past it)",
    )
    serve_parser.add_argument(
        "--disk-bytes", type=int, default=None, metavar="BYTES",
        help="per-shard disk-cache byte cap (LRU eviction past it)",
    )
    serve_parser.add_argument(
        "--request-log", default=None, metavar="PATH",
        help="append one JSON record per request to PATH ('-' for stderr; "
        "default: $CAQR_REQUEST_LOG)",
    )
    serve_parser.add_argument(
        "--auth-token", default=None, metavar="TOKEN",
        help="require `Authorization: Bearer TOKEN` on every route except "
        "/v1/health (default: $CAQR_AUTH_TOKEN)",
    )
    serve_parser.add_argument(
        "--tls-cert", default=None, metavar="PEM",
        help="serve HTTPS with this certificate chain (needs --tls-key)",
    )
    serve_parser.add_argument(
        "--tls-key", default=None, metavar="PEM",
        help="private key for --tls-cert",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    gateway_parser = sub.add_parser(
        "gateway",
        help="front a fleet of `repro serve` backends with consistent-hash "
        "routing, health-driven failover, and peer cache fill",
    )
    gateway_parser.add_argument(
        "--backend", action="append", required=True, metavar="URL",
        help="backend base URL (repeat once per server)",
    )
    gateway_parser.add_argument("--host", default="127.0.0.1")
    gateway_parser.add_argument(
        "--port", type=int, default=8786, help="0 picks a free port"
    )
    gateway_parser.add_argument(
        "--vnodes", type=int, default=64,
        help="virtual nodes per backend on the hash ring",
    )
    gateway_parser.add_argument(
        "--mark-down-after", type=int, default=3,
        help="consecutive failures before a backend leaves the ring",
    )
    gateway_parser.add_argument(
        "--probe-interval", type=float, default=2.0, metavar="SECONDS",
        help="health re-probe cadence (jittered deterministically)",
    )
    gateway_parser.add_argument(
        "--pool-size", type=int, default=16,
        help="keep-alive connections per backend",
    )
    gateway_parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-proxied-request budget in seconds",
    )
    gateway_parser.add_argument(
        "--auth-token", default=None, metavar="TOKEN",
        help="require `Authorization: Bearer TOKEN` from clients "
        "(default: $CAQR_AUTH_TOKEN)",
    )
    gateway_parser.add_argument(
        "--backend-token", default=None, metavar="TOKEN",
        help="bearer token the gateway presents to backends "
        "(default: pass the client's Authorization header through)",
    )
    gateway_parser.add_argument(
        "--tls-cert", default=None, metavar="PEM",
        help="serve HTTPS with this certificate chain (needs --tls-key)",
    )
    gateway_parser.add_argument(
        "--tls-key", default=None, metavar="PEM",
        help="private key for --tls-cert",
    )
    gateway_parser.add_argument(
        "--backend-ca", default=None, metavar="PEM",
        help="CA bundle for verifying https:// backends",
    )
    gateway_parser.add_argument(
        "--backend-tls-insecure", action="store_true",
        help="skip certificate verification toward https:// backends",
    )
    gateway_parser.set_defaults(func=_cmd_gateway)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
