"""Metric extraction and report formatting."""

from repro.analysis.charts import ascii_bar_chart, ascii_line_chart
from repro.analysis.metrics import CircuitMetrics, collect_metrics
from repro.analysis.reporting import format_percent, format_series, format_table

__all__ = [
    "CircuitMetrics",
    "collect_metrics",
    "format_table",
    "format_series",
    "format_percent",
    "ascii_line_chart",
    "ascii_bar_chart",
]
