"""ASCII chart rendering for the experiment reports.

The figure benchmarks archive plain-text results; a small line/bar chart
makes the tradeoff curves readable in a terminal without any plotting
dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["ascii_line_chart", "ascii_bar_chart"]


def ascii_line_chart(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more (name, xs, ys) series on a shared scatter grid.

    Each series gets a marker from ``*+o#@``; the legend maps them back.
    """
    points = [
        (x, y) for _name, xs, ys in series for x, y in zip(xs, ys)
    ]
    if not points:
        return "(no data)"
    x_values = [p[0] for p in points]
    y_values = [p[1] for p in points]
    x_min, x_max = min(x_values), max(x_values)
    y_min, y_max = min(y_values), max(y_values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    markers = "*+o#@"
    for index, (_name, xs, ys) in enumerate(series):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker

    lines = [f"{y_label} ({y_min:g} .. {y_max:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_min:g} .. {x_max:g})")
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {name}" for i, (name, _xs, _ys) in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal bar chart with proportional widths."""
    if not labels:
        return "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar} {value:g}{unit}")
    return "\n".join(lines)
