"""Circuit metric extraction shared by tests, examples, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.calibration import Calibration
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["CircuitMetrics", "collect_metrics"]


@dataclass(frozen=True)
class CircuitMetrics:
    """The metric set the paper reports per compiled circuit (Section 4.1)."""

    qubits_used: int
    depth: int
    duration_dt: int
    swap_count: int
    two_qubit_count: int
    gate_count: int
    reuse_resets: int

    def as_row(self):
        """Row tuple for :func:`repro.analysis.reporting.format_table`."""
        return (
            self.qubits_used,
            self.depth,
            self.duration_dt,
            self.swap_count,
            self.two_qubit_count,
        )


def collect_metrics(
    circuit: QuantumCircuit, calibration: Optional[Calibration] = None
) -> CircuitMetrics:
    """Extract the paper's metric set from a circuit.

    ``reuse_resets`` counts the dynamic-circuit reset idioms present
    (classically conditioned X gates plus built-in resets) — a direct
    measure of how many reuses the compiler inserted.
    """
    resets = sum(
        1
        for instruction in circuit.data
        if instruction.name == "reset"
        or (instruction.name == "x" and instruction.condition is not None)
    )
    return CircuitMetrics(
        qubits_used=circuit.num_used_qubits(),
        depth=circuit.depth(),
        duration_dt=circuit_duration_dt(circuit, calibration),
        swap_count=circuit.swap_count(),
        two_qubit_count=circuit.two_qubit_gate_count(),
        gate_count=circuit.size(),
        reuse_resets=resets,
    )
