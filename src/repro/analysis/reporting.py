"""Plain-text tables and series for the experiment harness.

The benchmark modules print paper-style tables (Tables 1-3) and figure
series (Figs. 3, 13-16) through these helpers so every experiment's output
reads the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "format_percent"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str, y_label: str
) -> str:
    """Render a figure series as aligned (x, y) pairs."""
    lines = [f"{name}  [{x_label} vs {y_label}]"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_cell(x):>10}  {_cell(y)}")
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """0.37 -> '37.0%'."""
    return f"{100 * value:.1f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
