"""Tensored readout-error mitigation.

Real-machine results (the paper's Table 3 / Figs. 15-16 setting) are
normally post-processed with measurement-error mitigation: each qubit's
readout is modelled by a 2x2 confusion matrix and the sampled distribution
is multiplied by the tensored inverse.  This module implements the
independent-qubit (tensored) variant, which matches the noise model the
simulator applies (per-qubit symmetric flips).

The inversion can produce small negative quasi-probabilities; they are
clipped and the result renormalised (the standard least-intrusive fix).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["confusion_matrix", "inverse_confusion", "mitigate_counts"]


def confusion_matrix(flip_probability: float) -> np.ndarray:
    """Symmetric single-bit readout confusion matrix.

    ``M[recorded, actual]``: column *actual* lists the probabilities of
    each recorded value.
    """
    if not 0.0 <= flip_probability < 0.5:
        raise SimulationError(
            f"flip probability must be in [0, 0.5), got {flip_probability}"
        )
    e = flip_probability
    return np.array([[1 - e, e], [e, 1 - e]])


def inverse_confusion(flip_probability: float) -> np.ndarray:
    """Closed-form inverse of :func:`confusion_matrix`."""
    e = flip_probability
    matrix = confusion_matrix(e)  # validates the range
    scale = 1.0 / (1.0 - 2.0 * e)
    return scale * np.array([[1 - e, -e], [-e, 1 - e]])


def mitigate_counts(
    counts: Mapping[str, int],
    flip_probabilities: Sequence[float],
) -> Dict[str, float]:
    """Apply tensored readout mitigation to a counts dictionary.

    Args:
        counts: sampled counts; keys are bitstrings (clbit 0 leftmost).
        flip_probabilities: per-classical-bit readout flip probability, in
            key order (length must match the key width).

    Returns:
        A normalised quasi-probability distribution (negatives clipped).
    """
    if not counts:
        raise SimulationError("empty counts")
    width = len(next(iter(counts)))
    if any(len(key) != width for key in counts):
        raise SimulationError("inconsistent bitstring widths in counts")
    if len(flip_probabilities) != width:
        raise SimulationError(
            f"need {width} flip probabilities, got {len(flip_probabilities)}"
        )
    total = sum(counts.values())
    distribution: Dict[str, float] = {
        key: value / total for key, value in counts.items()
    }
    # apply the per-bit inverse, one bit at a time (sparse-friendly)
    for bit, flip in enumerate(flip_probabilities):
        if flip == 0.0:
            continue
        inverse = inverse_confusion(flip)
        updated: Dict[str, float] = {}
        for key, probability in distribution.items():
            recorded = int(key[bit])
            for actual in (0, 1):
                weight = inverse[actual, recorded]
                if weight == 0.0:
                    continue
                new_key = key[:bit] + str(actual) + key[bit + 1 :]
                updated[new_key] = updated.get(new_key, 0.0) + weight * probability
        distribution = updated
    # clip tiny negatives, renormalise
    clipped = {key: max(p, 0.0) for key, p in distribution.items() if p > 1e-12}
    norm = sum(clipped.values())
    if norm <= 0:
        raise SimulationError("mitigation produced an empty distribution")
    return {key: p / norm for key, p in clipped.items()}
