"""Simulate physical (device-width) circuits under backend noise.

Physical circuits index the device's qubits, so the statevector would be
device-sized; this helper compacts the circuit onto its used wires and
remaps the backend noise model through the same renaming, preserving the
per-link / per-qubit error variability SR-CaQR optimised against.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.backends import Backend
from repro.sim.noise import NoiseModel
from repro.sim.statevector import run_counts

__all__ = ["run_physical_counts", "compacted_with_noise"]


def compacted_with_noise(
    circuit: QuantumCircuit,
    backend: Backend,
    relaxation: bool = True,
):
    """Return ``(compacted circuit, remapped noise model)`` for *circuit*."""
    used = circuit.used_qubits()
    mapping = {q: i for i, q in enumerate(used)}
    noise = NoiseModel.from_backend(backend, relaxation=relaxation)
    return circuit.compacted(), noise.remapped(mapping)


def run_physical_counts(
    circuit: QuantumCircuit,
    backend: Backend,
    shots: int = 1024,
    seed: Optional[int] = None,
    relaxation: bool = True,
    noise: Optional[NoiseModel] = None,
    engine: str = "auto",
) -> Counter:
    """Noisy counts for a physical circuit compiled for *backend*.

    Args:
        circuit: device-width circuit (e.g. from ``transpile`` or SR-CaQR).
        backend: provides the noise model (unless *noise* overrides it).
        relaxation: include T1/T2 decay over busy + idle time.
        noise: pre-built noise model in *device* indexing (remapped here).
        engine: simulation engine (see
            :func:`~repro.sim.statevector.run_counts`); with relaxation
            enabled, ``"auto"`` resolves to the reference loop.
    """
    used = circuit.used_qubits()
    mapping = {q: i for i, q in enumerate(used)}
    model = noise or NoiseModel.from_backend(backend, relaxation=relaxation)
    return run_counts(
        circuit.compacted(),
        shots=shots,
        seed=seed,
        noise=model.remapped(mapping),
        engine=engine,
    )
