"""Fidelity and distribution metrics.

* TVD (total variation distance) — the paper's Table 3 metric.
* success rate — probability mass on the correct answer.
* ESP (estimated success probability) — the analytic fidelity proxy the
  paper uses when ranking compiled circuits ("depending on the fidelity
  metric, for instance, estimated success probability", Section 3.2.1).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.calibration import Calibration
from repro.transpiler.scheduling import schedule_asap

__all__ = [
    "normalize_counts",
    "total_variation_distance",
    "success_rate",
    "hellinger_fidelity",
    "estimated_success_probability",
]


def normalize_counts(counts: Mapping[str, int]) -> Dict[str, float]:
    """Counts -> probability distribution."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty counts")
    return {key: value / total for key, value in counts.items()}


def total_variation_distance(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """TVD = 1/2 * sum |p(x) - q(x)| over the union of supports.

    Accepts raw counts or normalised distributions.
    """
    p_norm = normalize_counts(p) if any(v > 1 for v in p.values()) or abs(sum(p.values()) - 1) > 1e-6 else dict(p)
    q_norm = normalize_counts(q) if any(v > 1 for v in q.values()) or abs(sum(q.values()) - 1) > 1e-6 else dict(q)
    keys = set(p_norm) | set(q_norm)
    tvd = 0.5 * sum(abs(p_norm.get(k, 0.0) - q_norm.get(k, 0.0)) for k in keys)
    # float summation can land a hair outside the mathematical [0, 1] range
    return min(1.0, max(0.0, tvd))


def success_rate(counts: Mapping[str, int], correct: str) -> float:
    """Fraction of shots landing on the *correct* bitstring."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("empty counts")
    return counts.get(correct, 0) / total


def hellinger_fidelity(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Classical fidelity (squared Bhattacharyya coefficient)."""
    p_norm = normalize_counts(p)
    q_norm = normalize_counts(q)
    keys = set(p_norm) | set(q_norm)
    bc = sum(math.sqrt(p_norm.get(k, 0.0) * q_norm.get(k, 0.0)) for k in keys)
    return bc**2


def estimated_success_probability(
    circuit: QuantumCircuit,
    calibration: Calibration,
    include_decoherence: bool = True,
    stats=None,
) -> float:
    """Analytic ESP: product of per-instruction success probabilities.

    ESP = prod_g (1 - err(g)) * prod_m (1 - readout(m)) * exp(-idle/T1)

    Gate errors come from the calibration (CX error per link; single-qubit
    error per qubit; SWAP counted as three CX).  When *include_decoherence*
    is set, each qubit contributes exp(-(busy+idle time)/T1) over its
    active window, which penalises long-duration circuits.

    *stats* is an optional :class:`~repro.sim.stats.SimStats` sink:
    counters ``esp_two_qubit_evals`` / ``esp_readout_evals`` /
    ``esp_single_qubit_evals`` / ``esp_decoherence_qubits``, the ``esp``
    gauge (the returned value), and the ``esp`` time bucket.
    """
    import time as _time

    start = _time.perf_counter()
    two_qubit_evals = readout_evals = single_qubit_evals = decoherence_qubits = 0
    esp = 1.0
    for instruction in circuit.data:
        if instruction.is_directive() or instruction.name == "delay":
            continue
        if instruction.name == "measure":
            esp *= 1.0 - calibration.get_readout_error(instruction.qubits[0])
            readout_evals += 1
        elif instruction.name == "reset":
            continue
        elif len(instruction.qubits) == 2:
            a, b = instruction.qubits
            try:
                error = calibration.get_cx_error(a, b)
            except Exception:
                error = _mean(calibration.cx_error.values())
            if instruction.name == "swap":
                esp *= (1.0 - error) ** 3
            else:
                esp *= 1.0 - error
            two_qubit_evals += 1
        else:
            esp *= 1.0 - calibration.get_sq_error(instruction.qubits[0])
            single_qubit_evals += 1
    if include_decoherence:
        schedule = schedule_asap(circuit, calibration)
        for qubit in circuit.used_qubits():
            window = schedule.qubit_busy_time(qubit) + schedule.qubit_idle_time(qubit)
            t1 = calibration.get_t1(qubit)
            if math.isfinite(t1) and t1 > 0:
                esp *= math.exp(-window / t1)
                decoherence_qubits += 1
    if stats is not None:
        stats.count("esp_two_qubit_evals", two_qubit_evals)
        stats.count("esp_readout_evals", readout_evals)
        stats.count("esp_single_qubit_evals", single_qubit_evals)
        stats.count("esp_decoherence_qubits", decoherence_qubits)
        stats.set_value("esp", esp)
        stats.add_time("esp", _time.perf_counter() - start)
    return esp


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
