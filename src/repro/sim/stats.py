"""Runtime counters, gauges, and wall-time buckets for the simulation engines.

:class:`SimStats` follows the :class:`repro.core.profile.ReuseEvalStats`
pattern: engines report into an optional sink, benchmarks read it back to
print cache hit-rates, branch counts, and per-phase time.  It lives in the
sim layer (rather than reusing the core-layer class) so the simulator does
not grow a dependency on the compiler stack.

Counter names the engines use:

* ``branches_expanded`` — branch-tree nodes materialised (one statevector
  evolution segment each);
* ``suffix_cache_hits`` / ``suffix_cache_misses`` — branch-tree suffix
  states shared across measurement histories vs. freshly evolved;
* ``cap_fallback_shots`` — shots finished by direct per-shot evolution
  because the branch tree hit its node/memory cap;
* ``tree_shots`` / ``batch_shots`` / ``reference_shots`` /
  ``terminal_shots`` — shots routed to each engine;
* ``fused_gates`` — single-qubit gates folded into a neighbour by the
  batch engine's fusion pre-pass;
* ``batch_shards`` — shot shards executed by the batch engine;
* ``parallel_batches`` / ``serial_batches`` — shard sets fanned out to
  the process pool vs. run in-process.

Gauges (floats, ``values``): ``dropped_mass`` — total probability mass
discarded by branch-tree pruning; ``tree_nodes`` — final node count;
``batch_amplitude_bytes`` — peak amplitude-array footprint of one shard.

Time buckets (seconds): ``prefix``, ``expand``, ``walk`` (branch tree);
``compile``, ``execute`` (batch engine).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Counter/gauge/timer sink for one simulation run (or many, merged)."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Add *seconds* to wall-time bucket *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def add_value(self, name: str, amount: float) -> None:
        """Accumulate *amount* into gauge *name* (e.g. dropped mass)."""
        self.values[name] = self.values.get(name, 0.0) + amount

    def set_value(self, name: str, value: float) -> None:
        """Overwrite gauge *name* (e.g. final tree size)."""
        self.values[name] = value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its block into bucket *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    @property
    def suffix_hit_rate(self) -> float:
        """Fraction of branch expansions served from the suffix cache."""
        hits = self.counters.get("suffix_cache_hits", 0)
        total = hits + self.counters.get("suffix_cache_misses", 0)
        return hits / total if total else 0.0

    def merge(self, other: "SimStats") -> None:
        """Fold *other*'s counters, gauges, and timers into this instance."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)
        for name, value in other.values.items():
            self.add_value(name, value)

    def reset(self) -> None:
        """Zero all counters, gauges, and timers."""
        self.counters.clear()
        self.timers.clear()
        self.values.clear()

    def summary(self) -> str:
        """One-line report for benchmark output."""
        parts = [f"{name}={self.counters[name]}" for name in sorted(self.counters)]
        parts.extend(f"{name}={self.values[name]:g}" for name in sorted(self.values))
        parts.extend(
            f"{name}_s={self.timers[name]:.3f}" for name in sorted(self.timers)
        )
        return ", ".join(parts)
