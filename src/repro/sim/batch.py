"""Batched trajectory engine: shots as a leading batch axis.

The reference loop evolves one statevector per shot in pure Python.  This
engine keeps all shots of a shard in a single ``(shots, 2**n)`` complex
array and drives every step through vectorised numpy:

* gate application is one broadcast ``np.matmul`` over the batch axis;
* measurement probabilities, collapse, and renormalisation are computed
  for the whole batch at once;
* stochastic Pauli errors and readout flips are sampled per shot with a
  seeded :class:`numpy.random.Generator`, then applied to the hit subset
  grouped by sampled label;
* a fusion pre-pass folds runs of unconditioned single-qubit gates into
  one matrix per run (their depolarising-style Pauli channels commute
  with any single-qubit unitary, so the folded block keeps each original
  gate's error channel and the output distribution is unchanged).

Shots are split into fixed-size shards (bounded by a per-shard memory
cap); above a workload threshold the shards fan out over a
``ProcessPoolExecutor``, mirroring the serial-fallback pattern of
``core/evaluate.py``.  Sharding and per-shard seeding are independent of
the worker count, so parallel and serial runs return identical counts.

Determinism contract:

* **Noiseless** (``noise`` absent or trivial) with *unconditioned*
  measurements/resets: the engine pre-draws the per-shot uniforms from
  the same seeded ``random.Random`` in the same shot-major order the
  reference loop would consume them, so seeded counts match the
  reference bit-for-bit.
* **Noisy** (Pauli/readout errors): trajectories are sampled with numpy
  generators instead of ``random.Random``, so seeded counts are
  deterministic but not draw-for-draw identical to the reference — the
  distributions agree (pinned by TVD tests).
* **T1/T2 relaxation is unsupported** — the relaxation wire clock is
  outcome-dependent and does not vectorise; :func:`run_batched_counts`
  raises so callers fall back to the reference loop.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim.noise import NoiseModel
from repro.sim.statevector import (
    _PAULI_1Q,
    _PAULI_2Q,
    _PAULIS,
    _fast_path_allowed,
    _sample_terminal,
    OP_DELAY,
    OP_MEASURE,
    OP_RESET,
    OP_SKIP,
    OP_UNITARY,
    classify_instruction,
)
from repro.sim.stats import SimStats

__all__ = [
    "run_batched_counts",
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_PARALLEL_THRESHOLD",
]

DEFAULT_SHARD_SIZE = 1024
# shots * 2**n * ops below this run in-process (pool spawn ~0.5 s/worker)
DEFAULT_PARALLEL_THRESHOLD = 64_000_000
# per-shard amplitude-array cap; shards shrink below shard_size past it
DEFAULT_MAX_SHARD_BYTES = 1 << 28

_AMPLITUDE_BYTES = 16  # complex128


# -- compilation ---------------------------------------------------------------
#
# Compiled ops are plain tuples (picklable for the process pool):
#   ("unitary", matrix, qubits, condition)
#   ("pauli",   qubits, probability, condition)   stochastic Pauli channel
#   ("measure", qubit, clbit, readout_flip, condition)
#   ("reset",   qubit, condition)
# condition is None or (clbit, value), exactly as on Instruction.


def _compile(
    circuit: QuantumCircuit, noise: Optional[NoiseModel], fuse: bool
) -> Tuple[List[tuple], int]:
    """Lower circuit.data to the op tuples above; returns (ops, fused_gates).

    With *fuse*, runs of unconditioned single-qubit unitaries fold into a
    single matrix per qubit; each folded gate's Pauli-error channel is
    emitted after the fused block (valid because the uniform-XYZ channel
    commutes with single-qubit unitaries).  Barriers and delays vanish —
    without relaxation neither affects the state or the classical bits.
    """
    ops: List[tuple] = []
    pending: Dict[int, list] = {}  # qubit -> [folded matrix, [error probs]]
    fused = 0

    def flush(qubit: int) -> None:
        entry = pending.pop(qubit, None)
        if entry is None:
            return
        ops.append(("unitary", entry[0], (qubit,), None))
        for probability in entry[1]:
            ops.append(("pauli", (qubit,), probability, None))

    for instruction in circuit.data:
        kind = classify_instruction(instruction)
        if kind in (OP_SKIP, OP_DELAY):
            continue
        condition = instruction.condition
        if kind == OP_UNITARY:
            matrix = gates.gate_matrix(instruction.name, instruction.params)
            error = (
                noise.gate_error(instruction.name, instruction.qubits)
                if noise is not None
                else 0.0
            )
            if fuse and condition is None and len(instruction.qubits) == 1:
                qubit = instruction.qubits[0]
                entry = pending.get(qubit)
                if entry is None:
                    pending[qubit] = [matrix, [error] if error > 0 else []]
                else:
                    entry[0] = matrix @ entry[0]
                    if error > 0:
                        entry[1].append(error)
                    fused += 1
                continue
            for qubit in instruction.qubits:
                flush(qubit)
            ops.append(("unitary", matrix, instruction.qubits, condition))
            if error > 0:
                ops.append(("pauli", instruction.qubits, error, condition))
        elif kind == OP_MEASURE:
            qubit = instruction.qubits[0]
            flush(qubit)
            flip = noise.readout_error(qubit) if noise is not None else 0.0
            ops.append(
                ("measure", qubit, instruction.clbits[0], flip, condition)
            )
        elif kind == OP_RESET:
            qubit = instruction.qubits[0]
            flush(qubit)
            ops.append(("reset", qubit, condition))
    for qubit in sorted(pending):
        flush(qubit)
    return ops, fused


def _exact_replay_ok(
    circuit: QuantumCircuit, noise: Optional[NoiseModel]
) -> bool:
    """True when seeded counts can match the reference loop bit-for-bit:
    no stochastic noise, and every measure/reset unconditioned (so every
    shot consumes the same number of uniforms in the same program order)."""
    if noise is not None and not noise.is_trivial():
        return False
    for instruction in circuit.data:
        if classify_instruction(instruction) in (OP_MEASURE, OP_RESET):
            if instruction.condition is not None:
                return False
    return True


# -- vectorised primitives -----------------------------------------------------


def _apply_matrix_batch(
    amps: np.ndarray, matrix: np.ndarray, qubits: Tuple[int, ...], n: int
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` unitary to every shot of ``(S, 2^n)`` *amps*."""
    batch = amps.shape[0]
    k = len(qubits)
    tensor = amps.reshape([batch] + [2] * n)
    axes = [qubit + 1 for qubit in qubits]
    tensor = np.moveaxis(tensor, axes, range(1, k + 1))
    shaped = tensor.reshape(batch, 1 << k, -1)
    shaped = np.matmul(matrix, shaped)
    tensor = shaped.reshape([batch] + [2] * n)
    tensor = np.moveaxis(tensor, range(1, k + 1), axes)
    return np.ascontiguousarray(tensor).reshape(batch, 1 << n)


def _probability_of_one(amps: np.ndarray, qubit: int) -> np.ndarray:
    """Per-shot P(|1>) on *qubit* (qubit q = q-th most significant bit)."""
    view = amps.reshape(amps.shape[0], 1 << qubit, 2, -1)
    return (np.abs(view[:, :, 1, :]) ** 2).sum(axis=(1, 2))


def _collapse_batch(
    amps: np.ndarray, qubit: int, outcomes: np.ndarray
) -> None:
    """Project each shot onto its outcome and renormalise, in place."""
    view = amps.reshape(amps.shape[0], 1 << qubit, 2, -1)
    ones = np.nonzero(outcomes)[0]
    zeros = np.nonzero(outcomes == 0)[0]
    if ones.size:
        view[ones, :, 0, :] = 0.0
    if zeros.size:
        view[zeros, :, 1, :] = 0.0
    norms = np.sqrt((np.abs(amps) ** 2).sum(axis=1))
    if np.any(norms < 1e-12):
        raise SimulationError("state collapsed to zero vector")
    amps /= norms[:, None]


def _apply_pauli_batch(
    amps: np.ndarray,
    rows: np.ndarray,
    qubits: Tuple[int, ...],
    probability: float,
    rng: np.random.Generator,
    n: int,
) -> np.ndarray:
    """Sample the stochastic Pauli channel for *rows*, apply to the hits."""
    hits = rows[rng.random(rows.size) < probability]
    if hits.size == 0:
        return amps
    if len(qubits) == 1:
        labels = rng.integers(0, len(_PAULI_1Q), size=hits.size)
        for index, name in enumerate(_PAULI_1Q):
            selected = hits[labels == index]
            if selected.size:
                amps[selected] = _apply_matrix_batch(
                    amps[selected], _PAULIS[name], qubits, n
                )
    else:
        labels = rng.integers(0, len(_PAULI_2Q), size=hits.size)
        for index, label in enumerate(_PAULI_2Q):
            selected = hits[labels == index]
            if selected.size == 0:
                continue
            for pauli, qubit in zip(label, qubits):
                if pauli != "I":
                    amps[selected] = _apply_matrix_batch(
                        amps[selected], _PAULIS[pauli], (qubit,), n
                    )
    return amps


# -- shard execution -----------------------------------------------------------


def _execute_shard(
    ops: List[tuple],
    num_qubits: int,
    num_clbits: int,
    shard_shots: int,
    seed_seq: Optional[np.random.SeedSequence],
    draws: Optional[np.ndarray],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Run one shard; returns (counts, stats counters).

    Exactly one of *seed_seq* (noisy / distributional mode) and *draws*
    (exact-replay mode: this shard's rows of the pre-drawn uniform
    matrix) is provided.
    """
    n = num_qubits
    rng = np.random.default_rng(seed_seq) if seed_seq is not None else None
    amps = np.zeros((shard_shots, 1 << n), dtype=np.complex128)
    amps[:, 0] = 1.0
    clbits = np.zeros((shard_shots, num_clbits), dtype=np.int8)
    all_rows = np.arange(shard_shots)
    draw_col = 0
    for op in ops:
        kind = op[0]
        condition = op[-1]
        if condition is None:
            rows = all_rows
        else:
            rows = np.nonzero(clbits[:, condition[0]] == condition[1])[0]
            if rows.size == 0:
                continue
        if kind == "unitary":
            _, matrix, qubits, _ = op
            if rows is all_rows:
                amps = _apply_matrix_batch(amps, matrix, qubits, n)
            else:
                amps[rows] = _apply_matrix_batch(amps[rows], matrix, qubits, n)
        elif kind == "pauli":
            _, qubits, probability, _ = op
            amps = _apply_pauli_batch(amps, rows, qubits, probability, rng, n)
        elif kind == "measure":
            _, qubit, clbit, flip, _ = op
            sub = amps if rows is all_rows else amps[rows]
            p1 = _probability_of_one(sub, qubit)
            if draws is not None:
                uniforms = draws[:, draw_col]
                draw_col += 1
            else:
                uniforms = rng.random(rows.size)
            outcomes = (uniforms < p1).astype(np.int8)
            _collapse_batch(sub, qubit, outcomes)
            if rows is not all_rows:
                amps[rows] = sub
            if flip > 0:
                flips = rng.random(rows.size) < flip
                outcomes = outcomes ^ flips.astype(np.int8)
            clbits[rows, clbit] = outcomes
        elif kind == "reset":
            _, qubit, _ = op
            sub = amps if rows is all_rows else amps[rows]
            p1 = _probability_of_one(sub, qubit)
            if draws is not None:
                uniforms = draws[:, draw_col]
                draw_col += 1
            else:
                uniforms = rng.random(rows.size)
            outcomes = (uniforms < p1).astype(np.int8)
            _collapse_batch(sub, qubit, outcomes)
            ones = np.nonzero(outcomes)[0]
            if ones.size:
                view = sub.reshape(sub.shape[0], 1 << qubit, 2, -1)
                view[ones, :, 0, :] = view[ones, :, 1, :]
                view[ones, :, 1, :] = 0.0
            if rows is not all_rows:
                amps[rows] = sub
    counts: Dict[str, int] = {}
    if num_clbits:
        keys, tallies = np.unique(clbits, axis=0, return_counts=True)
        for row, tally in zip(keys, tallies):
            counts["".join(map(str, row))] = int(tally)
    else:
        counts[""] = shard_shots
    counters = {
        "batch_shards": 1,
        "batch_shots": shard_shots,
    }
    return counts, counters


def _run_shard_worker(payload: tuple) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Module-level wrapper so ProcessPoolExecutor can pickle the call."""
    return _execute_shard(*payload)


# -- entry point ---------------------------------------------------------------


def run_batched_counts(
    circuit: QuantumCircuit,
    shots: int,
    seed: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    stats: Optional[SimStats] = None,
    fuse: bool = True,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    max_shard_bytes: int = DEFAULT_MAX_SHARD_BYTES,
) -> Counter:
    """Counts via the batched engine (see the module docstring).

    Raises :class:`~repro.exceptions.SimulationError` when the noise
    model enables T1/T2 relaxation — use the reference engine there.
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if circuit.num_clbits == 0:
        raise SimulationError("circuit has no classical bits to sample")
    if noise is not None and noise.relaxation_enabled:
        raise SimulationError(
            "the batch engine does not support T1/T2 relaxation; use "
            "engine='reference'"
        )
    stats = stats if stats is not None else SimStats()
    effective_noise = None if noise is None or noise.is_trivial() else noise
    if _fast_path_allowed(circuit, effective_noise):
        # static noiseless circuit: the terminal sampler (evolve once,
        # sample the final distribution) is already optimal, and using it
        # keeps engine="batch" bit-identical to the reference here too
        stats.count("terminal_shots", shots)
        return _sample_terminal(circuit, shots, random.Random(seed))
    with stats.timed("compile"):
        ops, fused = _compile(circuit, noise, fuse)
    if fused:
        stats.count("fused_gates", fused)
    exact = _exact_replay_ok(circuit, noise)

    n = circuit.num_qubits
    rows_cap = max(1, max_shard_bytes // (_AMPLITUDE_BYTES << n))
    rows_per_shard = max(1, min(shard_size, rows_cap))
    starts = list(range(0, shots, rows_per_shard))
    sizes = [min(rows_per_shard, shots - start) for start in starts]
    stats.set_value(
        "batch_amplitude_bytes", float(max(sizes) * (_AMPLITUDE_BYTES << n))
    )

    if exact:
        # same generator, same shot-major draw order as the reference loop
        num_draws = sum(op[0] in ("measure", "reset") for op in ops)
        base = random.Random(seed)
        matrix = np.array(
            [
                [base.random() for _ in range(num_draws)]
                for _ in range(shots)
            ],
            dtype=np.float64,
        ).reshape(shots, num_draws)
        payloads = [
            (ops, n, circuit.num_clbits, size, None, matrix[start : start + size])
            for start, size in zip(starts, sizes)
        ]
    else:
        sequences = np.random.SeedSequence(seed).spawn(len(starts))
        payloads = [
            (ops, n, circuit.num_clbits, size, sequence, None)
            for size, sequence in zip(sizes, sequences)
        ]

    workload = shots * (1 << n) * max(len(ops), 1)
    use_parallel = (
        parallel and len(payloads) > 1 and workload >= parallel_threshold
    )
    counts: Counter = Counter()
    with stats.timed("execute"):
        if use_parallel:
            stats.count("parallel_batches")
            workers = max_workers or min(os.cpu_count() or 1, 8)
            workers = min(workers, len(payloads))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_run_shard_worker, payloads))
        else:
            stats.count("serial_batches")
            results = [_execute_shard(*payload) for payload in payloads]
    for shard_counts, counters in results:
        counts.update(shard_counts)
        for name, value in counters.items():
            stats.count(name, value)
    return counts
