"""Distribution-level equivalence checking between circuits.

Reuse transformations preserve an application's *output distribution over
the original classical bits* — extra garbage bits (ancilla measurements)
and wire renames are expected.  These helpers make that check a one-liner
for tests, examples, and users validating their own transformations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim.metrics import total_variation_distance
from repro.sim.noise import NoiseModel
from repro.sim.statevector import run_counts

__all__ = ["marginal_counts", "distributions_tvd", "assert_equivalent"]


def marginal_counts(counts: Mapping[str, int], width: int) -> Dict[str, int]:
    """Project counts onto the first *width* classical bits."""
    if width <= 0:
        raise SimulationError("width must be positive")
    out: Dict[str, int] = {}
    for key, value in counts.items():
        prefix = key[:width]
        out[prefix] = out.get(prefix, 0) + value
    return out


def distributions_tvd(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    width: Optional[int] = None,
    shots: int = 4000,
    seed: int = 17,
    noise: Optional[NoiseModel] = None,
    engine: str = "auto",
) -> float:
    """Sampled TVD between two circuits' output distributions.

    Args:
        width: classical bits to compare (default: the smaller clbit count
            of the two circuits — reuse may have appended garbage bits).
        engine: simulation engine for both circuits (see
            :func:`~repro.sim.statevector.run_counts`).
    """
    if width is None:
        width = min(circuit_a.num_clbits, circuit_b.num_clbits)
    counts_a = marginal_counts(
        run_counts(circuit_a, shots, seed, noise, engine=engine), width
    )
    counts_b = marginal_counts(
        run_counts(circuit_b, shots, seed, noise, engine=engine), width
    )
    return total_variation_distance(counts_a, counts_b)


def assert_equivalent(
    circuit_a: QuantumCircuit,
    circuit_b: QuantumCircuit,
    width: Optional[int] = None,
    shots: int = 4000,
    seed: int = 17,
    tolerance: float = 0.05,
    engine: str = "auto",
) -> None:
    """Raise :class:`SimulationError` when the circuits' distributions differ.

    The tolerance should comfortably exceed the sampling noise floor
    (~``sqrt(k / shots)`` for k populated outcomes).
    """
    tvd = distributions_tvd(
        circuit_a, circuit_b, width=width, shots=shots, seed=seed, engine=engine
    )
    if tvd > tolerance:
        raise SimulationError(
            f"circuits are not equivalent: sampled TVD {tvd:.4f} "
            f"exceeds tolerance {tolerance}"
        )
