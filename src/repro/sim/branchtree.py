"""Branch-tree engine for noiseless dynamic circuits.

The reference trajectory loop re-evolves the whole statevector from
``|0…0⟩`` for every shot, even though a noiseless dynamic circuit only
branches at mid-circuit measurements and resets — and reuse circuits have
*few* live measurement outcomes (DeCross et al., arXiv:2210.08039; Fang et
al., arXiv:2310.11021).  This engine evolves the deterministic unitary
prefix once, forks at each measurement/reset into the outcomes' exact Born
probabilities, and memoises shared suffix states, so the expensive
statevector work is paid once per *branch* instead of once per *shot*.

Key properties:

* **Bit-exact vs. the reference.**  Shots are replayed through the tree
  with the same seeded ``random.Random``: each visited branch node
  consumes exactly one uniform draw and compares it against the same
  ``P(1)`` the reference would compute, so seeded noiseless counts are
  identical to ``run_counts(engine="reference")`` — the shot allocation
  over leaves is the same multinomial split, realised draw-by-draw.
* **Lazy growth.**  A branch is only expanded (one statevector collapse +
  evolution to the next branch point) when a shot actually lands on it;
  dead outcomes cost nothing.
* **Suffix sharing.**  Nodes are memoised by ``(instruction index,
  live classical-condition bits, state fingerprint)``: measurement
  histories that converge to the same quantum state — e.g. both outcomes
  of a reuse reset — share one subtree.
* **Bounded memory.**  Tree growth stops at a node/byte cap; shots that
  would expand past it fall back to direct evolution from the capped
  node's cached state (still bit-exact).  Sub-``prune_threshold`` branches
  can optionally be pruned, with the dropped probability mass accumulated
  in ``SimStats.values["dropped_mass"]`` and logged.
"""

from __future__ import annotations

import logging
import random
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim.statevector import (
    OP_DELAY,
    OP_MEASURE,
    OP_RESET,
    OP_SKIP,
    Statevector,
    _fast_path_allowed,
    _sample_terminal,
    classify_instruction,
    condition_blocks,
)
from repro.sim.stats import SimStats

__all__ = ["BranchTreeSimulator", "run_branch_counts", "DEFAULT_MAX_NODES"]

logger = logging.getLogger(__name__)

# growth caps: past either, shots fall back to direct per-shot evolution
DEFAULT_MAX_NODES = 4096
DEFAULT_MAX_STATE_BYTES = 256 * 1024 * 1024

# amplitudes are rounded to this many decimals before fingerprinting, so
# float jitter from different collapse paths still lands on one cache key
_DIGEST_DECIMALS = 12

_TERMINAL = "terminal"


class _BranchNode:
    """One suspension point: a measure/reset about to execute, or the end.

    Branch nodes keep the *pre-collapse* statevector so either child can
    be materialised later; ``rel_bits`` holds the classical bits that any
    downstream condition may still read (the suffix-cache key component).
    """

    __slots__ = ("kind", "op_index", "qubit", "clbit", "p1", "state", "rel_bits", "children")

    def __init__(self, kind, op_index, qubit=None, clbit=None, p1=0.0, state=None, rel_bits=()):
        self.kind = kind  # OP_MEASURE | OP_RESET | _TERMINAL
        self.op_index = op_index
        self.qubit = qubit
        self.clbit = clbit
        self.p1 = p1
        self.state = state
        self.rel_bits = rel_bits  # sorted tuple of (clbit, value)
        self.children: List[Optional["_BranchNode"]] = [None, None]


def _live_condition_reads(circuit: QuantumCircuit) -> List[frozenset]:
    """``live[i]``: clbits a condition at index >= i may read before a write.

    Standard backwards liveness over the instruction list: a measurement
    writing a clbit kills its upstream liveness, a condition reading one
    creates it.  Two measurement histories agreeing on ``live[i]`` evolve
    identically from instruction ``i`` onward (given equal quantum state).
    """
    live: List[frozenset] = [frozenset()] * (len(circuit.data) + 1)
    current: frozenset = frozenset()
    for index in range(len(circuit.data) - 1, -1, -1):
        instruction = circuit.data[index]
        current = current - set(instruction.clbits)
        if instruction.condition is not None:
            current = current | {instruction.condition[0]}
        live[index] = current
    return live


class BranchTreeSimulator:
    """Lazy branch tree over one noiseless dynamic circuit.

    Build once, then :meth:`sample` any number of shot batches; the tree
    (and its suffix cache) persists across calls.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_state_bytes: int = DEFAULT_MAX_STATE_BYTES,
        prune_threshold: float = 0.0,
        stats: Optional[SimStats] = None,
    ):
        if not 0.0 <= prune_threshold < 0.5:
            raise SimulationError("prune_threshold must be in [0, 0.5)")
        self.circuit = circuit
        self.max_nodes = max_nodes
        self.max_state_bytes = max_state_bytes
        self.prune_threshold = prune_threshold
        self.stats = stats if stats is not None else SimStats()
        self.dropped_mass = 0.0
        self._live = _live_condition_reads(circuit)
        self._suffix_cache: Dict[Tuple, _BranchNode] = {}
        self._nodes = 0
        self._state_bytes = 0
        self._pruned_nodes = set()
        with self.stats.timed("prefix"):
            initial = Statevector(circuit.num_qubits)
            root_bits = {c: 0 for c in self._live[0]}
            self.root = self._advance(initial, root_bits, 0)

    # -- tree growth -------------------------------------------------------

    def _advance(self, state: Statevector, bits: Dict[int, int], start: int) -> _BranchNode:
        """Evolve *state* from instruction *start* to the next branch point.

        Returns the (possibly cached) node for that branch point, or the
        shared terminal node when the circuit ends first.  ``bits`` maps
        every clbit a future condition may read to its current value.
        """
        data = self.circuit.data
        for index in range(start, len(data)):
            instruction = data[index]
            kind = classify_instruction(instruction)
            if kind in (OP_SKIP, OP_DELAY):
                continue
            if instruction.condition is not None:
                clbit, value = instruction.condition
                if bits.get(clbit, 0) != value:
                    continue
            if kind in (OP_MEASURE, OP_RESET):
                return self._branch_node(state, bits, index, instruction, kind)
            state.apply_matrix(
                gates.gate_matrix(instruction.name, instruction.params),
                instruction.qubits,
            )
        return _BranchNode(_TERMINAL, len(data))

    def _branch_node(self, state, bits, index, instruction, kind) -> _BranchNode:
        rel = tuple(sorted((c, bits.get(c, 0)) for c in self._live[index]))
        digest = (np.round(state.amplitudes, _DIGEST_DECIMALS) + 0.0).tobytes()
        key = (index, rel, digest)
        cached = self._suffix_cache.get(key)
        if cached is not None:
            self.stats.count("suffix_cache_hits")
            return cached
        self.stats.count("suffix_cache_misses")
        node = _BranchNode(
            kind,
            index,
            qubit=instruction.qubits[0],
            clbit=instruction.clbits[0] if kind == OP_MEASURE else None,
            p1=state.probability_of_one(instruction.qubits[0]),
            state=state,
            rel_bits=rel,
        )
        self._suffix_cache[key] = node
        self._nodes += 1
        self._state_bytes += state.amplitudes.nbytes
        self.stats.count("branches_expanded")
        return node

    def _expand(self, node: _BranchNode, outcome: int) -> Optional[_BranchNode]:
        """Materialise *node*'s child for *outcome*; None when capped."""
        if self._nodes >= self.max_nodes or self._state_bytes >= self.max_state_bytes:
            return None
        with self.stats.timed("expand"):
            state = Statevector.__new__(Statevector)
            state.num_qubits = node.state.num_qubits
            state.amplitudes = node.state.amplitudes.copy()
            state.collapse(node.qubit, outcome)
            if node.kind == OP_RESET and outcome == 1:
                state.apply_matrix(gates.gate_matrix("x"), (node.qubit,))
            bits = dict(node.rel_bits)
            if node.kind == OP_MEASURE:
                bits[node.clbit] = outcome
            child = self._advance(state, bits, node.op_index + 1)
        node.children[outcome] = child
        return child

    # -- sampling ----------------------------------------------------------

    def sample(self, shots: int, rng: random.Random) -> Counter:
        """Draw *shots* trajectories through the (lazily grown) tree.

        Consumes one ``rng.random()`` per executed measurement/reset per
        shot, in program order — exactly the reference loop's draws — so
        seeded counts are bit-identical (with pruning off).
        """
        counts: Counter = Counter()
        num_clbits = self.circuit.num_clbits
        prune = self.prune_threshold
        with self.stats.timed("walk"):
            for _ in range(shots):
                node = self.root
                clbits = [0] * num_clbits
                path_prob = 1.0
                while node.kind != _TERMINAL:
                    outcome = 1 if rng.random() < node.p1 else 0
                    if prune > 0.0:
                        outcome, path_prob = self._pruned_outcome(
                            node, outcome, path_prob
                        )
                    child = node.children[outcome]
                    if child is None:
                        child = self._expand(node, outcome)
                    if node.kind == OP_MEASURE:
                        clbits[node.clbit] = outcome
                    if child is None:  # tree capped: finish directly
                        clbits = self._finish_shot(node, outcome, clbits, rng)
                        break
                    node = child
                counts["".join(map(str, clbits))] += 1
        self.stats.set_value("tree_nodes", float(self._nodes))
        if self.dropped_mass > 0.0:
            self.stats.set_value("dropped_mass", self.dropped_mass)
        return counts

    def _pruned_outcome(self, node, outcome, path_prob) -> Tuple[int, float]:
        """Redirect draws off sub-threshold branches, logging their mass."""
        branch_prob = node.p1 if outcome == 1 else 1.0 - node.p1
        if branch_prob < self.prune_threshold:
            if id(node) not in self._pruned_nodes:
                self._pruned_nodes.add(id(node))
                self.dropped_mass += path_prob * branch_prob
                logger.info(
                    "branch tree pruned outcome %d at instruction %d "
                    "(branch probability %.3g, dropped mass now %.3g)",
                    outcome,
                    node.op_index,
                    branch_prob,
                    self.dropped_mass,
                )
            outcome = 1 - outcome
            branch_prob = 1.0 - branch_prob
        return outcome, path_prob * branch_prob

    def _finish_shot(self, node, outcome, clbits, rng) -> List[int]:
        """Per-shot fallback past the node cap: evolve directly to the end.

        Draws from *rng* exactly as the reference loop would, preserving
        bit-exact seeded counts even when the tree stops growing.
        """
        self.stats.count("cap_fallback_shots")
        state = Statevector.__new__(Statevector)
        state.num_qubits = node.state.num_qubits
        state.amplitudes = node.state.amplitudes.copy()
        state.collapse(node.qubit, outcome)
        if node.kind == OP_RESET and outcome == 1:
            state.apply_matrix(gates.gate_matrix("x"), (node.qubit,))
        data = self.circuit.data
        for index in range(node.op_index + 1, len(data)):
            instruction = data[index]
            kind = classify_instruction(instruction)
            if kind in (OP_SKIP, OP_DELAY):
                continue
            if condition_blocks(instruction, clbits):
                continue
            if kind == OP_MEASURE:
                clbits[instruction.clbits[0]] = state.measure(
                    instruction.qubits[0], rng
                )
            elif kind == OP_RESET:
                state.reset(instruction.qubits[0], rng)
            else:
                state.apply_matrix(
                    gates.gate_matrix(instruction.name, instruction.params),
                    instruction.qubits,
                )
        return clbits


def run_branch_counts(
    circuit: QuantumCircuit,
    shots: int,
    seed: Optional[int] = None,
    stats: Optional[SimStats] = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    max_state_bytes: int = DEFAULT_MAX_STATE_BYTES,
    prune_threshold: float = 0.0,
) -> Counter:
    """Noiseless counts via the branch tree (see the module docstring).

    With ``prune_threshold=0`` (the default) the seeded result is
    bit-identical to ``run_counts(circuit, shots, seed,
    engine="reference")`` for any dynamic circuit.
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if circuit.num_clbits == 0:
        raise SimulationError("circuit has no classical bits to sample")
    if _fast_path_allowed(circuit, None):
        # static circuit: the reference engine would sample the terminal
        # distribution (one draw per shot) rather than run the trajectory
        # loop; delegate so seeded counts stay bit-identical to it
        local_stats = stats if stats is not None else SimStats()
        local_stats.count("terminal_shots", shots)
        return _sample_terminal(circuit, shots, random.Random(seed))
    simulator = BranchTreeSimulator(
        circuit,
        max_nodes=max_nodes,
        max_state_bytes=max_state_bytes,
        prune_threshold=prune_threshold,
        stats=stats,
    )
    simulator.stats.count("tree_shots", shots)
    return simulator.sample(shots, random.Random(seed))
