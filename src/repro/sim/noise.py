"""Noise models for the trajectory simulator.

A :class:`NoiseModel` answers three questions during simulation:

* what stochastic Pauli (depolarizing-style) error probability follows a
  gate on the given *physical* qubits,
* what readout flip probability a measurement on a qubit has, and
* what T1/T2 (in dt) drive relaxation over idle and busy time.

``NoiseModel.from_backend`` pulls all three from a backend calibration so
the simulated "real machine" experiments (paper Table 3, Figs. 15-16) see
the exact error variability SR-CaQR optimised against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.circuit import gates
from repro.hardware.backends import Backend

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Per-qubit / per-link error rates for trajectory simulation."""

    one_qubit_error: Dict[int, float] = field(default_factory=dict)
    two_qubit_error: Dict[FrozenSet[int], float] = field(default_factory=dict)
    readout: Dict[int, float] = field(default_factory=dict)
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    default_one_qubit_error: float = 0.0
    default_two_qubit_error: float = 0.0
    default_readout: float = 0.0
    relaxation_enabled: bool = False
    # error applied to an uncalibrated (non-adjacent) 2Q pair, e.g. when a
    # logical circuit is simulated directly; defaults to the mean link error
    fallback_two_qubit_error: Optional[float] = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A model with no errors (useful to exercise the noisy code path)."""
        return cls()

    @classmethod
    def uniform(
        cls,
        one_qubit_error: float = 0.0005,
        two_qubit_error: float = 0.01,
        readout: float = 0.02,
    ) -> "NoiseModel":
        """Flat error rates everywhere (no variability)."""
        return cls(
            default_one_qubit_error=one_qubit_error,
            default_two_qubit_error=two_qubit_error,
            default_readout=readout,
        )

    @classmethod
    def from_backend(cls, backend: Backend, relaxation: bool = True) -> "NoiseModel":
        """Build from a backend calibration (per-link CX error, readout, T1/T2)."""
        calibration = backend.calibration
        model = cls(relaxation_enabled=relaxation)
        for a, b in backend.coupling.edges:
            model.two_qubit_error[frozenset((a, b))] = calibration.get_cx_error(a, b)
        for q in range(backend.num_qubits):
            model.one_qubit_error[q] = calibration.get_sq_error(q)
            model.readout[q] = calibration.get_readout_error(q)
            model.t1[q] = calibration.get_t1(q)
            model.t2[q] = calibration.get_t2(q)
        if model.two_qubit_error:
            model.fallback_two_qubit_error = sum(
                model.two_qubit_error.values()
            ) / len(model.two_qubit_error)
        return model

    # -- queries --------------------------------------------------------------------

    def gate_error(self, name: str, qubits: Tuple[int, ...]) -> float:
        """Stochastic Pauli probability applied after gate *name*."""
        if gates.is_directive(name) or name in ("measure", "reset", "delay"):
            return 0.0
        if len(qubits) == 1:
            return self.one_qubit_error.get(qubits[0], self.default_one_qubit_error)
        if len(qubits) == 2:
            key = frozenset(qubits)
            if key in self.two_qubit_error:
                error = self.two_qubit_error[key]
            elif self.fallback_two_qubit_error is not None:
                error = self.fallback_two_qubit_error
            else:
                error = self.default_two_qubit_error
            # SWAP costs three CX worth of error
            return min(3 * error, 1.0) if name == "swap" else error
        # wider gates: sum the pairwise default (rare; ccx pre-decomposed)
        return min(self.default_two_qubit_error * len(qubits), 1.0)

    def readout_error(self, qubit: int) -> float:
        return self.readout.get(qubit, self.default_readout)

    def t1_dt(self, qubit: int) -> float:
        return self.t1.get(qubit, float("inf"))

    def t2_dt(self, qubit: int) -> float:
        return self.t2.get(qubit, float("inf"))

    def remapped(self, qubit_map: Dict[int, int]) -> "NoiseModel":
        """Translate qubit indices through *qubit_map* (e.g. compaction).

        Physical circuits are device-wide; simulating them requires
        compacting onto the used wires, and the noise model must follow
        the same renaming so per-link/per-qubit error variability is
        preserved.  Entries whose qubits are absent from the map are
        dropped (those wires are not simulated).
        """
        out = NoiseModel(
            default_one_qubit_error=self.default_one_qubit_error,
            default_two_qubit_error=self.default_two_qubit_error,
            default_readout=self.default_readout,
            relaxation_enabled=self.relaxation_enabled,
            fallback_two_qubit_error=self.fallback_two_qubit_error,
        )
        for q, error in self.one_qubit_error.items():
            if q in qubit_map:
                out.one_qubit_error[qubit_map[q]] = error
        for edge, error in self.two_qubit_error.items():
            a, b = tuple(edge)
            if a in qubit_map and b in qubit_map:
                out.two_qubit_error[frozenset((qubit_map[a], qubit_map[b]))] = error
        for table_in, table_out in (
            (self.readout, out.readout),
            (self.t1, out.t1),
            (self.t2, out.t2),
        ):
            for q, value in table_in.items():
                if q in qubit_map:
                    table_out[qubit_map[q]] = value
        return out

    def is_trivial(self) -> bool:
        """True when the model can never produce an error."""
        return (
            not self.relaxation_enabled
            and self.default_one_qubit_error == 0
            and self.default_two_qubit_error == 0
            and self.default_readout == 0
            and not any(self.one_qubit_error.values())
            and not any(self.two_qubit_error.values())
            and not any(self.readout.values())
        )
