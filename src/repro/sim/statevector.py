"""Trajectory statevector simulator with dynamic-circuit support.

Executes mid-circuit measurement, reset, and classically conditioned gates
— the operations qubit reuse is built from.  Supports optional noise
(stochastic Pauli errors, readout flips, and T1/T2 relaxation driven by a
per-qubit wire clock), in which case every shot is an independent quantum
trajectory.

:func:`run_counts` fronts three engines (see ``docs/SIMULATOR.md``):

* ``"reference"`` — the original per-shot trajectory loop in this module,
  kept bit-for-bit stable for fixed seeds;
* ``"branchtree"`` — :mod:`repro.sim.branchtree`, which evolves each
  distinct measurement history once (noiseless dynamic circuits);
* ``"batch"`` — :mod:`repro.sim.batch`, which vectorises shots as a
  leading batch axis (noisy runs without T1/T2 relaxation).

``engine="auto"`` (the default) routes to the fastest engine that matches
the reference semantics for the given circuit and noise model.

Bit-ordering conventions (documented, deliberate):

* basis index bit of qubit ``q`` is the ``q``-th *most significant* bit of
  the ``2**n`` statevector index;
* counts keys list classical bit 0 leftmost: key ``"01"`` means clbit 0
  read 0 and clbit 1 read 1.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.exceptions import SimulationError
from repro.sim.noise import NoiseModel
from repro.sim.stats import SimStats

__all__ = [
    "Statevector",
    "run_counts",
    "final_statevector",
    "ENGINES",
    "classify_instruction",
    "condition_blocks",
    "OP_SKIP",
    "OP_DELAY",
    "OP_MEASURE",
    "OP_RESET",
    "OP_UNITARY",
]

# the engines run_counts can route to; "auto" picks per circuit/noise
ENGINES = ("auto", "reference", "branchtree", "batch")

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": gates.gate_matrix("x"),
    "Y": gates.gate_matrix("y"),
    "Z": gates.gate_matrix("z"),
}
_PAULI_1Q = ["X", "Y", "Z"]
_PAULI_2Q = [
    a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"
]

# -- shared instruction dispatch ------------------------------------------------
#
# Every interpreter over circuit.data (the trajectory loop, the terminal
# sampler, final_statevector, and the branch-tree / batch engines) must
# agree on what each instruction *is* and on when a classical condition
# blocks it.  Centralising both decisions here keeps the interpreters from
# drifting (e.g. one skipping delays while another treats them as gates).

OP_SKIP = "skip"  # directives: barrier — ordering only, no simulation effect
OP_DELAY = "delay"  # idle time: advances the wire clock, no state change
OP_MEASURE = "measure"
OP_RESET = "reset"
OP_UNITARY = "unitary"


def classify_instruction(instruction: Instruction) -> str:
    """Map an instruction onto the simulator's operation kinds."""
    if instruction.is_directive():
        return OP_SKIP
    name = instruction.name
    if name == "measure":
        return OP_MEASURE
    if name == "reset":
        return OP_RESET
    if name == "delay":
        return OP_DELAY
    return OP_UNITARY


def condition_blocks(instruction: Instruction, clbits: Sequence[int]) -> bool:
    """True when *instruction*'s classical condition forbids executing it."""
    condition = instruction.condition
    if condition is None:
        return False
    clbit, value = condition
    return clbits[clbit] != value


class Statevector:
    """A mutable *n*-qubit pure state."""

    def __init__(self, num_qubits: int):
        if num_qubits < 0 or num_qubits > 26:
            raise SimulationError(f"cannot simulate {num_qubits} qubits")
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2**num_qubits, dtype=np.complex128)
        self.amplitudes[0] = 1.0

    # -- linear algebra ---------------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary to the given qubits (gate order)."""
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError("matrix size does not match qubit count")
        n = self.num_qubits
        tensor = self.amplitudes.reshape([2] * n)
        axes = list(qubits)
        tensor = np.moveaxis(tensor, axes, range(k))
        shaped = tensor.reshape(2**k, -1)
        shaped = matrix @ shaped
        tensor = shaped.reshape([2] * n)
        tensor = np.moveaxis(tensor, range(k), axes)
        self.amplitudes = np.ascontiguousarray(tensor).reshape(2**n)

    def probability_of_one(self, qubit: int) -> float:
        """P(measuring |1>) on *qubit*."""
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        slice_one = np.moveaxis(tensor, qubit, 0)[1]
        return float(np.sum(np.abs(slice_one) ** 2))

    def collapse(self, qubit: int, outcome: int) -> None:
        """Project *qubit* onto *outcome* and renormalise."""
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        moved = np.moveaxis(tensor, qubit, 0)
        moved[1 - outcome] = 0.0
        self.amplitudes = np.ascontiguousarray(
            np.moveaxis(moved, 0, qubit)
        ).reshape(2**self.num_qubits)
        norm = np.linalg.norm(self.amplitudes)
        if norm < 1e-12:
            raise SimulationError("state collapsed to zero vector")
        self.amplitudes /= norm

    def measure(self, qubit: int, rng: random.Random) -> int:
        """Sample a computational-basis outcome and collapse."""
        p1 = self.probability_of_one(qubit)
        outcome = 1 if rng.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def reset(self, qubit: int, rng: random.Random) -> None:
        """Measure-and-discard, then force the wire to |0>."""
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            self.apply_matrix(_PAULIS["X"], (qubit,))

    def apply_kraus(
        self, kraus: Sequence[np.ndarray], qubit: int, rng: random.Random
    ) -> None:
        """Sample one single-qubit Kraus branch and renormalise."""
        draw = rng.random()
        cumulative = 0.0
        for index, operator in enumerate(kraus):
            candidate = self._candidate(operator, qubit)
            weight = float(np.sum(np.abs(candidate) ** 2))
            cumulative += weight
            if draw < cumulative or index == len(kraus) - 1:
                norm = math.sqrt(weight) if weight > 1e-15 else 1.0
                self.amplitudes = candidate / norm
                return

    def _candidate(self, operator: np.ndarray, qubit: int) -> np.ndarray:
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, qubit, 0)
        shaped = tensor.reshape(2, -1)
        shaped = operator @ shaped
        tensor = shaped.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, 0, qubit)
        return np.ascontiguousarray(tensor).reshape(2**self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """The full ``2^n`` probability vector."""
        return np.abs(self.amplitudes) ** 2


def _relax(
    state: Statevector,
    qubit: int,
    elapsed_dt: float,
    t1_dt: float,
    t2_dt: float,
    rng: random.Random,
) -> None:
    """Thermal relaxation over *elapsed_dt* as amplitude damping + dephasing."""
    if elapsed_dt <= 0:
        return
    if math.isfinite(t1_dt) and t1_dt > 0:
        gamma = 1.0 - math.exp(-elapsed_dt / t1_dt)
        if gamma > 0:
            k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=np.complex128)
            k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=np.complex128)
            state.apply_kraus([k0, k1], qubit, rng)
    if math.isfinite(t2_dt) and t2_dt > 0:
        # pure-dephasing rate beyond what T1 already causes
        rate = max(1.0 / t2_dt - 0.5 / t1_dt if math.isfinite(t1_dt) else 1.0 / t2_dt, 0.0)
        p_flip = 0.5 * (1.0 - math.exp(-elapsed_dt * rate))
        if rng.random() < p_flip:
            state.apply_matrix(_PAULIS["Z"], (qubit,))


def _apply_pauli_error(
    state: Statevector,
    qubits: Tuple[int, ...],
    probability: float,
    rng: random.Random,
) -> None:
    """Depolarizing-style stochastic Pauli error on 1 or 2 qubits."""
    if probability <= 0 or rng.random() >= probability:
        return
    if len(qubits) == 1:
        label = rng.choice(_PAULI_1Q)
        state.apply_matrix(_PAULIS[label], qubits)
    else:
        label = rng.choice(_PAULI_2Q)
        for pauli, qubit in zip(label, qubits):
            if pauli != "I":
                state.apply_matrix(_PAULIS[pauli], (qubit,))


def _run_trajectory(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    rng: random.Random,
) -> List[int]:
    """One shot: returns final classical bits."""
    state = Statevector(circuit.num_qubits)
    clbits = [0] * circuit.num_clbits
    clock: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    wall: Dict[int, float] = dict(clock)

    def _advance(qubits: Tuple[int, ...], duration: float) -> None:
        start = max((wall[q] for q in qubits), default=0.0)
        for q in qubits:
            if noise is not None and noise.relaxation_enabled:
                # relax over the idle gap plus this instruction's own window
                elapsed = (start + duration) - wall[q]
                _relax(state, q, elapsed, noise.t1_dt(q), noise.t2_dt(q), rng)
            wall[q] = start + duration

    for instruction in circuit.data:
        kind = classify_instruction(instruction)
        if kind == OP_SKIP:
            continue
        duration = float(instruction.duration_dt())
        if condition_blocks(instruction, clbits):
            continue
        if kind == OP_MEASURE:
            qubit = instruction.qubits[0]
            _advance(instruction.qubits, duration)
            outcome = state.measure(qubit, rng)
            if noise is not None:
                flip = noise.readout_error(qubit)
                if flip > 0 and rng.random() < flip:
                    outcome = 1 - outcome
            clbits[instruction.clbits[0]] = outcome
            continue
        if kind == OP_RESET:
            _advance(instruction.qubits, duration)
            state.reset(instruction.qubits[0], rng)
            continue
        if kind == OP_DELAY:
            _advance(instruction.qubits, float(instruction.params[0]))
            continue
        matrix = gates.gate_matrix(instruction.name, instruction.params)
        _advance(instruction.qubits, duration)
        state.apply_matrix(matrix, instruction.qubits)
        if noise is not None:
            _apply_pauli_error(
                state,
                instruction.qubits,
                noise.gate_error(instruction.name, instruction.qubits),
                rng,
            )
    if noise is not None and noise.relaxation_enabled:
        # relax remaining qubits up to the global end of circuit
        horizon = max(wall.values(), default=0.0)
        for q in range(circuit.num_qubits):
            _relax(state, q, horizon - wall[q], noise.t1_dt(q), noise.t2_dt(q), rng)
    return clbits


def _fast_path_allowed(circuit: QuantumCircuit, noise: Optional[NoiseModel]) -> bool:
    if noise is not None:
        return False
    if circuit.has_dynamic_operations():
        return False
    # each clbit must be written at most once
    written = set()
    for instruction in circuit.data:
        for c in instruction.clbits:
            if c in written:
                return False
            written.add(c)
    return True


def _sample_terminal(
    circuit: QuantumCircuit, shots: int, rng: random.Random
) -> Counter:
    """Noiseless fast path: evolve once, sample the terminal distribution.

    Sampling uses cumulative probabilities + ``np.searchsorted`` rather
    than ``random.choices`` over ``range(2**n)`` — materialising that range
    is 67M entries at the 26-qubit cap.  The draws and the bisection match
    ``random.choices`` exactly (same accumulate/bisect-right arithmetic),
    so seeded results are unchanged.
    """
    state = Statevector(circuit.num_qubits)
    measurements: List[Tuple[int, int]] = []
    for instruction in circuit.data:
        kind = classify_instruction(instruction)
        if kind in (OP_SKIP, OP_DELAY):
            continue
        if kind == OP_MEASURE:
            measurements.append((instruction.qubits[0], instruction.clbits[0]))
            continue
        state.apply_matrix(
            gates.gate_matrix(instruction.name, instruction.params),
            instruction.qubits,
        )
    probabilities = state.probabilities()
    cumulative = np.cumsum(probabilities)
    total = cumulative[-1] + 0.0
    draws = np.array([rng.random() for _ in range(shots)], dtype=np.float64)
    indices = np.minimum(
        np.searchsorted(cumulative, draws * total, side="right"),
        len(cumulative) - 1,
    )
    counts: Counter = Counter()
    n = circuit.num_qubits
    key_cache: Dict[int, str] = {}
    for index in indices:
        index = int(index)
        key = key_cache.get(index)
        if key is None:
            clbits = [0] * circuit.num_clbits
            for qubit, clbit in measurements:
                clbits[clbit] = (index >> (n - 1 - qubit)) & 1
            key = "".join(map(str, clbits))
            key_cache[index] = key
        counts[key] += 1
    return counts


def _resolve_engine(
    circuit: QuantumCircuit, noise: Optional[NoiseModel], engine: str
) -> str:
    """Pick the concrete engine for ``engine="auto"`` (validated elsewhere).

    Routing rules (each engine matches the reference semantics on its
    domain — see ``docs/SIMULATOR.md``):

    * no dynamic operations, no noise → the reference terminal sampler
      (one evolution, direct distribution sampling — already optimal);
    * noiseless (or trivially-noisy) dynamic circuit → branch tree;
    * noise without T1/T2 relaxation → batched trajectories;
    * relaxation enabled → reference loop (the per-shot wire clock is
      outcome-dependent and does not vectorise).
    """
    if engine != "auto":
        return engine
    if _fast_path_allowed(circuit, noise):
        return "reference"
    if noise is None or noise.is_trivial():
        return "branchtree"
    if not noise.relaxation_enabled:
        return "batch"
    return "reference"


def run_counts(
    circuit: QuantumCircuit,
    shots: int = 1024,
    seed: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    engine: str = "auto",
    stats: Optional[SimStats] = None,
) -> Counter:
    """Execute *circuit* for *shots* and return classical-bit counts.

    Keys are classical bitstrings with clbit 0 leftmost.

    Args:
        engine: one of :data:`ENGINES`.  ``"auto"`` (default) picks the
            fastest engine whose semantics match the reference for this
            circuit/noise combination; ``"reference"`` forces the original
            per-shot trajectory loop (bit-for-bit stable for fixed seeds);
            ``"branchtree"`` requires a noiseless (or trivially-noisy) run
            and produces seeded counts identical to the reference;
            ``"batch"`` requires a noise model without T1/T2 relaxation.
        stats: optional :class:`~repro.sim.stats.SimStats` sink for engine
            counters and per-phase timers.
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if circuit.num_clbits == 0:
        raise SimulationError("circuit has no classical bits to sample")
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    resolved = _resolve_engine(circuit, noise, engine)
    if resolved == "branchtree":
        if noise is not None and not noise.is_trivial():
            raise SimulationError(
                "the branch-tree engine is noiseless; use engine='batch' "
                "or engine='reference' for noisy runs"
            )
        from repro.sim.branchtree import run_branch_counts

        return run_branch_counts(circuit, shots, seed=seed, stats=stats)
    if resolved == "batch":
        if noise is not None and noise.relaxation_enabled:
            raise SimulationError(
                "the batch engine does not support T1/T2 relaxation; use "
                "engine='reference'"
            )
        from repro.sim.batch import run_batched_counts

        return run_batched_counts(
            circuit, shots, seed=seed, noise=noise, stats=stats
        )
    # reference: the original path, bit-for-bit
    rng = random.Random(seed)
    if _fast_path_allowed(circuit, noise):
        if stats is not None:
            stats.count("terminal_shots", shots)
        return _sample_terminal(circuit, shots, rng)
    if stats is not None:
        stats.count("reference_shots", shots)
    counts: Counter = Counter()
    for _ in range(shots):
        clbits = _run_trajectory(circuit, noise, rng)
        counts["".join(map(str, clbits))] += 1
    return counts


def final_statevector(circuit: QuantumCircuit, seed: Optional[int] = None) -> np.ndarray:
    """Noiseless final statevector (measurements collapse, sampled by *seed*)."""
    rng = random.Random(seed)
    state = Statevector(circuit.num_qubits)
    clbits = [0] * max(circuit.num_clbits, 1)
    for instruction in circuit.data:
        kind = classify_instruction(instruction)
        if kind in (OP_SKIP, OP_DELAY):
            continue
        if condition_blocks(instruction, clbits):
            continue
        if kind == OP_MEASURE:
            clbits[instruction.clbits[0]] = state.measure(instruction.qubits[0], rng)
        elif kind == OP_RESET:
            state.reset(instruction.qubits[0], rng)
        else:
            state.apply_matrix(
                gates.gate_matrix(instruction.name, instruction.params),
                instruction.qubits,
            )
    return state.amplitudes
