"""Trajectory statevector simulator with dynamic-circuit support.

Executes mid-circuit measurement, reset, and classically conditioned gates
— the operations qubit reuse is built from.  Supports optional noise
(stochastic Pauli errors, readout flips, and T1/T2 relaxation driven by a
per-qubit wire clock), in which case every shot is an independent quantum
trajectory.

Bit-ordering conventions (documented, deliberate):

* basis index bit of qubit ``q`` is the ``q``-th *most significant* bit of
  the ``2**n`` statevector index;
* counts keys list classical bit 0 leftmost: key ``"01"`` means clbit 0
  read 0 and clbit 1 read 1.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim.noise import NoiseModel

__all__ = ["Statevector", "run_counts", "final_statevector"]

_PAULIS = {
    "I": np.eye(2, dtype=np.complex128),
    "X": gates.gate_matrix("x"),
    "Y": gates.gate_matrix("y"),
    "Z": gates.gate_matrix("z"),
}
_PAULI_1Q = ["X", "Y", "Z"]
_PAULI_2Q = [
    a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"
]


class Statevector:
    """A mutable *n*-qubit pure state."""

    def __init__(self, num_qubits: int):
        if num_qubits < 0 or num_qubits > 26:
            raise SimulationError(f"cannot simulate {num_qubits} qubits")
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2**num_qubits, dtype=np.complex128)
        self.amplitudes[0] = 1.0

    # -- linear algebra ---------------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply a ``2^k x 2^k`` unitary to the given qubits (gate order)."""
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError("matrix size does not match qubit count")
        n = self.num_qubits
        tensor = self.amplitudes.reshape([2] * n)
        axes = list(qubits)
        tensor = np.moveaxis(tensor, axes, range(k))
        shaped = tensor.reshape(2**k, -1)
        shaped = matrix @ shaped
        tensor = shaped.reshape([2] * n)
        tensor = np.moveaxis(tensor, range(k), axes)
        self.amplitudes = np.ascontiguousarray(tensor).reshape(2**n)

    def probability_of_one(self, qubit: int) -> float:
        """P(measuring |1>) on *qubit*."""
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        slice_one = np.moveaxis(tensor, qubit, 0)[1]
        return float(np.sum(np.abs(slice_one) ** 2))

    def collapse(self, qubit: int, outcome: int) -> None:
        """Project *qubit* onto *outcome* and renormalise."""
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        moved = np.moveaxis(tensor, qubit, 0)
        moved[1 - outcome] = 0.0
        self.amplitudes = np.ascontiguousarray(
            np.moveaxis(moved, 0, qubit)
        ).reshape(2**self.num_qubits)
        norm = np.linalg.norm(self.amplitudes)
        if norm < 1e-12:
            raise SimulationError("state collapsed to zero vector")
        self.amplitudes /= norm

    def measure(self, qubit: int, rng: random.Random) -> int:
        """Sample a computational-basis outcome and collapse."""
        p1 = self.probability_of_one(qubit)
        outcome = 1 if rng.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def reset(self, qubit: int, rng: random.Random) -> None:
        """Measure-and-discard, then force the wire to |0>."""
        outcome = self.measure(qubit, rng)
        if outcome == 1:
            self.apply_matrix(_PAULIS["X"], (qubit,))

    def apply_kraus(
        self, kraus: Sequence[np.ndarray], qubit: int, rng: random.Random
    ) -> None:
        """Sample one single-qubit Kraus branch and renormalise."""
        draw = rng.random()
        cumulative = 0.0
        for index, operator in enumerate(kraus):
            candidate = self._candidate(operator, qubit)
            weight = float(np.sum(np.abs(candidate) ** 2))
            cumulative += weight
            if draw < cumulative or index == len(kraus) - 1:
                norm = math.sqrt(weight) if weight > 1e-15 else 1.0
                self.amplitudes = candidate / norm
                return

    def _candidate(self, operator: np.ndarray, qubit: int) -> np.ndarray:
        tensor = self.amplitudes.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, qubit, 0)
        shaped = tensor.reshape(2, -1)
        shaped = operator @ shaped
        tensor = shaped.reshape([2] * self.num_qubits)
        tensor = np.moveaxis(tensor, 0, qubit)
        return np.ascontiguousarray(tensor).reshape(2**self.num_qubits)

    def probabilities(self) -> np.ndarray:
        """The full ``2^n`` probability vector."""
        return np.abs(self.amplitudes) ** 2


def _relax(
    state: Statevector,
    qubit: int,
    elapsed_dt: float,
    t1_dt: float,
    t2_dt: float,
    rng: random.Random,
) -> None:
    """Thermal relaxation over *elapsed_dt* as amplitude damping + dephasing."""
    if elapsed_dt <= 0:
        return
    if math.isfinite(t1_dt) and t1_dt > 0:
        gamma = 1.0 - math.exp(-elapsed_dt / t1_dt)
        if gamma > 0:
            k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=np.complex128)
            k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=np.complex128)
            state.apply_kraus([k0, k1], qubit, rng)
    if math.isfinite(t2_dt) and t2_dt > 0:
        # pure-dephasing rate beyond what T1 already causes
        rate = max(1.0 / t2_dt - 0.5 / t1_dt if math.isfinite(t1_dt) else 1.0 / t2_dt, 0.0)
        p_flip = 0.5 * (1.0 - math.exp(-elapsed_dt * rate))
        if rng.random() < p_flip:
            state.apply_matrix(_PAULIS["Z"], (qubit,))


def _apply_pauli_error(
    state: Statevector,
    qubits: Tuple[int, ...],
    probability: float,
    rng: random.Random,
) -> None:
    """Depolarizing-style stochastic Pauli error on 1 or 2 qubits."""
    if probability <= 0 or rng.random() >= probability:
        return
    if len(qubits) == 1:
        label = rng.choice(_PAULI_1Q)
        state.apply_matrix(_PAULIS[label], qubits)
    else:
        label = rng.choice(_PAULI_2Q)
        for pauli, qubit in zip(label, qubits):
            if pauli != "I":
                state.apply_matrix(_PAULIS[pauli], (qubit,))


def _run_trajectory(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    rng: random.Random,
) -> List[int]:
    """One shot: returns final classical bits."""
    state = Statevector(circuit.num_qubits)
    clbits = [0] * circuit.num_clbits
    clock: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    wall: Dict[int, float] = dict(clock)

    def _advance(qubits: Tuple[int, ...], duration: float) -> None:
        start = max((wall[q] for q in qubits), default=0.0)
        for q in qubits:
            if noise is not None and noise.relaxation_enabled:
                # relax over the idle gap plus this instruction's own window
                elapsed = (start + duration) - wall[q]
                _relax(state, q, elapsed, noise.t1_dt(q), noise.t2_dt(q), rng)
            wall[q] = start + duration

    for instruction in circuit.data:
        if instruction.is_directive():
            continue
        duration = float(instruction.duration_dt())
        if instruction.condition is not None:
            clbit, value = instruction.condition
            if clbits[clbit] != value:
                continue
        if instruction.name == "measure":
            qubit = instruction.qubits[0]
            _advance(instruction.qubits, duration)
            outcome = state.measure(qubit, rng)
            if noise is not None:
                flip = noise.readout_error(qubit)
                if flip > 0 and rng.random() < flip:
                    outcome = 1 - outcome
            clbits[instruction.clbits[0]] = outcome
            continue
        if instruction.name == "reset":
            _advance(instruction.qubits, duration)
            state.reset(instruction.qubits[0], rng)
            continue
        if instruction.name == "delay":
            _advance(instruction.qubits, float(instruction.params[0]))
            continue
        matrix = gates.gate_matrix(instruction.name, instruction.params)
        _advance(instruction.qubits, duration)
        state.apply_matrix(matrix, instruction.qubits)
        if noise is not None:
            _apply_pauli_error(
                state,
                instruction.qubits,
                noise.gate_error(instruction.name, instruction.qubits),
                rng,
            )
    if noise is not None and noise.relaxation_enabled:
        # relax remaining qubits up to the global end of circuit
        horizon = max(wall.values(), default=0.0)
        for q in range(circuit.num_qubits):
            _relax(state, q, horizon - wall[q], noise.t1_dt(q), noise.t2_dt(q), rng)
    return clbits


def _fast_path_allowed(circuit: QuantumCircuit, noise: Optional[NoiseModel]) -> bool:
    if noise is not None:
        return False
    if circuit.has_dynamic_operations():
        return False
    # each clbit must be written at most once
    written = set()
    for instruction in circuit.data:
        for c in instruction.clbits:
            if c in written:
                return False
            written.add(c)
    return True


def _sample_terminal(
    circuit: QuantumCircuit, shots: int, rng: random.Random
) -> Counter:
    """Noiseless fast path: evolve once, sample the terminal distribution."""
    state = Statevector(circuit.num_qubits)
    measurements: List[Tuple[int, int]] = []
    for instruction in circuit.data:
        if instruction.is_directive() or instruction.name == "delay":
            continue
        if instruction.name == "measure":
            measurements.append((instruction.qubits[0], instruction.clbits[0]))
            continue
        state.apply_matrix(
            gates.gate_matrix(instruction.name, instruction.params),
            instruction.qubits,
        )
    probabilities = state.probabilities()
    indices = rng.choices(range(len(probabilities)), weights=probabilities, k=shots)
    counts: Counter = Counter()
    n = circuit.num_qubits
    for index in indices:
        clbits = [0] * circuit.num_clbits
        for qubit, clbit in measurements:
            clbits[clbit] = (index >> (n - 1 - qubit)) & 1
        counts["".join(map(str, clbits))] += 1
    return counts


def run_counts(
    circuit: QuantumCircuit,
    shots: int = 1024,
    seed: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
) -> Counter:
    """Execute *circuit* for *shots* and return classical-bit counts.

    Keys are classical bitstrings with clbit 0 leftmost.  With *noise*
    given (or any dynamic operation present) each shot is an independent
    trajectory; otherwise a single evolution is sampled.
    """
    if shots <= 0:
        raise SimulationError("shots must be positive")
    if circuit.num_clbits == 0:
        raise SimulationError("circuit has no classical bits to sample")
    rng = random.Random(seed)
    if _fast_path_allowed(circuit, noise):
        return _sample_terminal(circuit, shots, rng)
    counts: Counter = Counter()
    for _ in range(shots):
        clbits = _run_trajectory(circuit, noise, rng)
        counts["".join(map(str, clbits))] += 1
    return counts


def final_statevector(circuit: QuantumCircuit, seed: Optional[int] = None) -> np.ndarray:
    """Noiseless final statevector (measurements collapse, sampled by *seed*)."""
    rng = random.Random(seed)
    state = Statevector(circuit.num_qubits)
    clbits = [0] * max(circuit.num_clbits, 1)
    for instruction in circuit.data:
        if instruction.is_directive() or instruction.name == "delay":
            continue
        if instruction.condition is not None:
            clbit, value = instruction.condition
            if clbits[clbit] != value:
                continue
        if instruction.name == "measure":
            clbits[instruction.clbits[0]] = state.measure(instruction.qubits[0], rng)
        elif instruction.name == "reset":
            state.reset(instruction.qubits[0], rng)
        else:
            state.apply_matrix(
                gates.gate_matrix(instruction.name, instruction.params),
                instruction.qubits,
            )
    return state.amplitudes
