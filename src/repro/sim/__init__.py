"""Simulation: statevector engines, noise models, fidelity metrics.

Three interchangeable counting engines sit behind :func:`run_counts`'s
``engine=`` knob (``docs/SIMULATOR.md``): the per-shot reference loop,
the branch-tree engine for noiseless dynamic circuits, and the batched
trajectory engine for noisy runs without relaxation.
"""

from repro.sim.metrics import (
    estimated_success_probability,
    hellinger_fidelity,
    normalize_counts,
    success_rate,
    total_variation_distance,
)
from repro.sim.density import DensityMatrix, exact_distribution
from repro.sim.device import compacted_with_noise, run_physical_counts
from repro.sim.noise import NoiseModel
from repro.sim.mitigation import confusion_matrix, inverse_confusion, mitigate_counts
from repro.sim.statevector import ENGINES, Statevector, final_statevector, run_counts
from repro.sim.stats import SimStats
from repro.sim.verify import assert_equivalent, distributions_tvd, marginal_counts

__all__ = [
    "Statevector",
    "run_counts",
    "final_statevector",
    "ENGINES",
    "SimStats",
    "run_physical_counts",
    "compacted_with_noise",
    "DensityMatrix",
    "exact_distribution",
    "assert_equivalent",
    "distributions_tvd",
    "marginal_counts",
    "mitigate_counts",
    "confusion_matrix",
    "inverse_confusion",
    "NoiseModel",
    "normalize_counts",
    "total_variation_distance",
    "success_rate",
    "hellinger_fidelity",
    "estimated_success_probability",
]
