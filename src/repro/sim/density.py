"""Exact density-matrix simulation with classical-outcome branching.

The trajectory simulator (:mod:`repro.sim.statevector`) samples; this
module computes *exact* noisy output distributions for small circuits, so
tests can cross-validate the sampler and experiments can quote noise-floor
numbers without shot noise.

Dynamic circuits entangle quantum state with classical bits, so the
simulator tracks an ensemble ``{classical bitstring -> (probability,
density matrix)}``: a measurement splits every branch in two (weighting by
the Born probabilities and applying the readout-flip confusion), and a
classically conditioned gate applies only on matching branches.

Supported noise (mirroring :class:`repro.sim.noise.NoiseModel`):
depolarizing channels after gates and readout confusion at measurement.
T1/T2 relaxation is trajectory-only (it needs the wire clock); exactness
here refers to the gate/readout error model.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import SimulationError
from repro.sim.noise import NoiseModel

__all__ = ["DensityMatrix", "exact_distribution"]

_MAX_QUBITS = 10


class DensityMatrix:
    """A mutable *n*-qubit mixed state (2^n x 2^n matrix)."""

    def __init__(self, num_qubits: int):
        if num_qubits < 0 or num_qubits > _MAX_QUBITS:
            raise SimulationError(
                f"density-matrix simulation limited to {_MAX_QUBITS} qubits"
            )
        self.num_qubits = num_qubits
        dim = 2**num_qubits
        self.matrix = np.zeros((dim, dim), dtype=np.complex128)
        self.matrix[0, 0] = 1.0

    def copy(self) -> "DensityMatrix":
        out = DensityMatrix.__new__(DensityMatrix)
        out.num_qubits = self.num_qubits
        out.matrix = self.matrix.copy()
        return out

    # -- operator plumbing -----------------------------------------------------

    def _expand(self, operator: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Lift a k-qubit operator onto the full Hilbert space."""
        k = len(qubits)
        n = self.num_qubits
        op = operator.reshape([2] * (2 * k))
        full = np.eye(2**n, dtype=np.complex128).reshape([2] * (2 * n))
        # contract identity with op on the chosen axes
        # simpler: build permutation approach via tensordot on a dense identity
        # for small n this explicit construction is fine
        out = np.zeros((2**n, 2**n), dtype=np.complex128)
        for row in range(2**n):
            row_bits = [(row >> (n - 1 - q)) & 1 for q in range(n)]
            sub_row = 0
            for q in qubits:
                sub_row = (sub_row << 1) | row_bits[q]
            for sub_col in range(2**k):
                if abs(operator[sub_row, sub_col]) < 1e-15:
                    continue
                col_bits = list(row_bits)
                for index, q in enumerate(qubits):
                    col_bits[q] = (sub_col >> (k - 1 - index)) & 1
                col = 0
                for bit in col_bits:
                    col = (col << 1) | bit
                out[row, col] += operator[sub_row, sub_col]
        return out

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        full = self._expand(matrix, qubits)
        self.matrix = full @ self.matrix @ full.conj().T

    def apply_kraus(self, kraus: Sequence[np.ndarray], qubits: Sequence[int]) -> None:
        total = np.zeros_like(self.matrix)
        for operator in kraus:
            full = self._expand(operator, qubits)
            total += full @ self.matrix @ full.conj().T
        self.matrix = total

    def apply_depolarizing(self, probability: float, qubits: Sequence[int]) -> None:
        """Uniform stochastic Pauli channel matching the trajectory model."""
        if probability <= 0:
            return
        paulis = {
            "I": np.eye(2, dtype=np.complex128),
            "X": gates.gate_matrix("x"),
            "Y": gates.gate_matrix("y"),
            "Z": gates.gate_matrix("z"),
        }
        if len(qubits) == 1:
            labels = ["X", "Y", "Z"]
        else:
            labels = [a + b for a in "IXYZ" for b in "IXYZ" if a + b != "II"]
        mixed = (1.0 - probability) * self.matrix
        share = probability / len(labels)
        for label in labels:
            branch = self.matrix
            for pauli, qubit in zip(label, qubits):
                if pauli == "I":
                    continue
                full = self._expand(paulis[pauli], (qubit,))
                branch = full @ branch @ full.conj().T
            mixed = mixed + share * branch
        self.matrix = mixed

    def measurement_probabilities(self, qubit: int) -> Tuple[float, float]:
        """(P(0), P(1)) of measuring *qubit*."""
        n = self.num_qubits
        diag = np.real(np.diag(self.matrix))
        p1 = sum(
            value
            for index, value in enumerate(diag)
            if (index >> (n - 1 - qubit)) & 1
        )
        total = diag.sum()
        return (max(total - p1, 0.0), max(p1, 0.0))

    def project(self, qubit: int, outcome: int) -> float:
        """Project onto |outcome> on *qubit*; return the branch probability.

        The post-projection matrix is renormalised when the probability is
        non-zero.
        """
        n = self.num_qubits
        keep = np.array(
            [((index >> (n - 1 - qubit)) & 1) == outcome for index in range(2**n)]
        )
        projected = self.matrix.copy()
        projected[~keep, :] = 0
        projected[:, ~keep] = 0
        probability = float(np.real(np.trace(projected)))
        if probability > 1e-15:
            self.matrix = projected / probability
        else:
            self.matrix = projected
        return probability

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.matrix)).clip(min=0.0)


def exact_distribution(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel] = None,
    prune_below: float = 1e-12,
) -> Dict[str, float]:
    """Exact classical-bit distribution of *circuit* under gate/readout noise.

    Returns ``{clbit string: probability}`` with clbit 0 leftmost (the
    same convention as :func:`repro.sim.statevector.run_counts`).

    Raises:
        SimulationError: for circuits wider than the density-matrix cap.
    """
    if circuit.num_clbits == 0:
        raise SimulationError("circuit has no classical bits")
    branches: Dict[Tuple[int, ...], Tuple[float, DensityMatrix]] = {
        (0,) * circuit.num_clbits: (1.0, DensityMatrix(circuit.num_qubits))
    }
    for instruction in circuit.data:
        if instruction.is_directive() or instruction.name == "delay":
            continue
        updated: Dict[Tuple[int, ...], Tuple[float, DensityMatrix]] = {}

        def _accumulate(bits: Tuple[int, ...], probability: float, state: DensityMatrix):
            if probability < prune_below:
                return
            if bits in updated:
                old_probability, old_state = updated[bits]
                total = old_probability + probability
                mixed = old_state.copy()
                mixed.matrix = (
                    old_probability * old_state.matrix
                    + probability * state.matrix
                ) / total
                updated[bits] = (total, mixed)
            else:
                updated[bits] = (probability, state)

        for bits, (probability, state) in branches.items():
            if instruction.condition is not None:
                clbit, value = instruction.condition
                if bits[clbit] != value:
                    _accumulate(bits, probability, state)
                    continue
            if instruction.name == "measure":
                qubit = instruction.qubits[0]
                clbit = instruction.clbits[0]
                flip = noise.readout_error(qubit) if noise else 0.0
                for outcome in (0, 1):
                    branch = state.copy()
                    born = branch.project(qubit, outcome)
                    if born < prune_below:
                        continue
                    for recorded in (outcome, 1 - outcome):
                        record_probability = (
                            born * (1 - flip)
                            if recorded == outcome
                            else born * flip
                        )
                        if record_probability < prune_below:
                            continue
                        new_bits = list(bits)
                        new_bits[clbit] = recorded
                        _accumulate(
                            tuple(new_bits),
                            probability * record_probability,
                            branch.copy(),
                        )
                continue
            if instruction.name == "reset":
                qubit = instruction.qubits[0]
                collapsed = state.copy()
                p0 = collapsed.project(qubit, 0)
                one = state.copy()
                p1 = one.project(qubit, 1)
                if p1 > prune_below:
                    one.apply_unitary(gates.gate_matrix("x"), (qubit,))
                    merged = collapsed.copy()
                    merged.matrix = p0 * collapsed.matrix + p1 * one.matrix
                    merged.matrix /= max(p0 + p1, 1e-15)
                    collapsed = merged
                _accumulate(bits, probability, collapsed)
                continue
            # unitary gate
            branch = state.copy()
            branch.apply_unitary(
                gates.gate_matrix(instruction.name, instruction.params),
                instruction.qubits,
            )
            if noise is not None:
                branch.apply_depolarizing(
                    noise.gate_error(instruction.name, instruction.qubits),
                    instruction.qubits,
                )
            _accumulate(bits, probability, branch)
        branches = updated

    distribution: Dict[str, float] = {}
    for bits, (probability, _state) in branches.items():
        key = "".join(map(str, bits))
        distribution[key] = distribution.get(key, 0.0) + probability
    total = sum(distribution.values())
    if total > 0:
        distribution = {k: v / total for k, v in distribution.items()}
    return distribution
