"""ASAP scheduling: assign start times and compute circuit duration in dt.

Duration is the metric the paper reports alongside depth (Table 1):
with real calibration data each physical link has its own CX time, and the
measure/reset operations inserted for qubit reuse are far slower than
gates — which is exactly why the measure + conditional-X optimisation and
the critical-path-aware pair selection matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.hardware.calibration import Calibration

__all__ = ["ScheduledInstruction", "Schedule", "schedule_asap", "circuit_duration_dt"]


@dataclass(frozen=True)
class ScheduledInstruction:
    """One instruction with its assigned start time and duration (dt)."""

    instruction: Instruction
    start: int
    duration: int

    @property
    def finish(self) -> int:
        return self.start + self.duration


@dataclass
class Schedule:
    """A full ASAP schedule.

    Attributes:
        entries: scheduled instructions in input order.
        makespan: total circuit duration in dt.
    """

    entries: List[ScheduledInstruction]
    makespan: int

    def qubit_busy_time(self, qubit: int) -> int:
        """Total time *qubit* spends inside instructions (not idling)."""
        return sum(
            entry.duration
            for entry in self.entries
            if qubit in entry.instruction.qubits
        )

    def qubit_idle_time(self, qubit: int) -> int:
        """Time *qubit* idles between its first and last instruction."""
        touching = [e for e in self.entries if qubit in e.instruction.qubits]
        if not touching:
            return 0
        span = max(e.finish for e in touching) - min(e.start for e in touching)
        return span - sum(e.duration for e in touching)


def _instruction_duration(
    instruction: Instruction, calibration: Optional[Calibration]
) -> int:
    if instruction.is_directive():
        return 0
    if instruction.name == "delay":
        return int(instruction.params[0])
    if calibration is not None:
        base = calibration.instruction_duration(instruction.name, instruction.qubits)
    else:
        base = gates.default_duration(instruction.name)
    if instruction.condition is not None:
        base += gates.CONDITIONAL_LATENCY_DT
    return base


def schedule_asap(
    circuit: QuantumCircuit, calibration: Optional[Calibration] = None
) -> Schedule:
    """As-soon-as-possible schedule respecting wire dependencies.

    Classical bits are wires too: a conditioned gate cannot start before the
    measurement writing its condition bit has finished (feed-forward).
    """
    available: Dict[Tuple[str, int], int] = {}
    entries: List[ScheduledInstruction] = []
    makespan = 0
    for instruction in circuit.data:
        wires: List[Tuple[str, int]] = [("q", q) for q in instruction.qubits]
        wires.extend(("c", c) for c in instruction.clbits)
        if instruction.condition is not None:
            wire = ("c", instruction.condition[0])
            if wire not in wires:
                wires.append(wire)
        start = max((available.get(w, 0) for w in wires), default=0)
        duration = _instruction_duration(instruction, calibration)
        finish = start + duration
        for w in wires:
            available[w] = finish
        entries.append(ScheduledInstruction(instruction, start, duration))
        makespan = max(makespan, finish)
    return Schedule(entries, makespan)


def circuit_duration_dt(
    circuit: QuantumCircuit, calibration: Optional[Calibration] = None
) -> int:
    """Shorthand for ``schedule_asap(circuit, calibration).makespan``."""
    return schedule_asap(circuit, calibration).makespan
