"""Commutation-aware gate reordering and cancellation.

The peephole passes in :mod:`repro.transpiler.optimization` only cancel
gates that are textually adjacent; gates often commute past intervening
operations (an ``rz`` slides through a CX control, diagonal gates commute
with each other).  This pass normalises gate order using a small, sound
commutation relation and re-runs the adjacency-based cancellation, which
catches patterns like::

    cx(0,1) ; rz(0) ; cx(0,1)      ->  rz(0)
    cz(0,1) ; x(2) ; cz(0,1)       ->  x(2)

The commutation relation (conservative — unknown cases assumed
non-commuting):

* gates on disjoint wires always commute;
* diagonal gates (z, s, t, rz, p, cz, cp, crz, rzz) commute with each
  other on any overlap;
* a diagonal 1Q gate commutes with the *control* of cx/cz/cp/crz;
* x / rx commute with the *target* of a cx.
"""

from __future__ import annotations

from typing import List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.transpiler.optimization import (
    cancel_adjacent_self_inverse,
    drop_identity_rotations,
)

__all__ = ["instructions_commute", "commutation_aware_cancel"]

_DIAGONAL = {"z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "crz", "rzz"}
_X_LIKE = {"x", "rx", "sx", "sxdg"}
# control-first two-qubit gates whose control axis is Z (diagonal there)
_Z_CONTROLLED = {"cx", "cz", "cp", "crz"}


def instructions_commute(a: Instruction, b: Instruction) -> bool:
    """Sound (conservative) test: do *a* and *b* commute as operators?

    Classical bits are treated as wires too: operations touching the same
    classical bit never commute (measurement order is observable).
    """
    if a.is_directive() or b.is_directive():
        return False
    a_clbits = set(a.clbits) | ({a.condition[0]} if a.condition else set())
    b_clbits = set(b.clbits) | ({b.condition[0]} if b.condition else set())
    if a_clbits & b_clbits:
        return False
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    if a.name in ("measure", "reset") or b.name in ("measure", "reset"):
        return False
    if a.condition is not None or b.condition is not None:
        return False
    if a.name in _DIAGONAL and b.name in _DIAGONAL:
        return True
    # diagonal single-qubit gate against a Z-controlled gate's control
    for first, second in ((a, b), (b, a)):
        if (
            first.name in _DIAGONAL
            and len(first.qubits) == 1
            and second.name in _Z_CONTROLLED
            and shared == {second.qubits[0]}
        ):
            return True
        # X-like single-qubit gate against a CX target
        if (
            first.name in _X_LIKE
            and len(first.qubits) == 1
            and second.name == "cx"
            and shared == {second.qubits[1]}
        ):
            return True
        # rzz is diagonal on both wires: any diagonal 1Q gate passes
        if (
            first.name in _DIAGONAL
            and len(first.qubits) == 1
            and second.name == "rzz"
        ):
            return True
    return False


def _normalise_order(circuit: QuantumCircuit) -> QuantumCircuit:
    """Stable bubble pass: float each instruction as early as commutation
    allows.  O(n^2) worst case, fine at transpiler sizes."""
    ordered: List[Instruction] = []
    for instruction in circuit.data:
        position = len(ordered)
        while position > 0 and instructions_commute(ordered[position - 1], instruction):
            # keep sorting stable: only hop over a gate when doing so moves
            # this instruction next to a same-name partner or frees wires
            position -= 1
        ordered.insert(position, instruction)
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.extend(instr.copy() for instr in ordered)
    return out


def commutation_aware_cancel(circuit: QuantumCircuit, rounds: int = 2) -> QuantumCircuit:
    """Reorder through commuting neighbours, then cancel; iterate.

    Semantics-preserving by construction: instructions only move past
    neighbours they commute with.
    """
    current = circuit
    for _ in range(max(1, rounds)):
        before = len(current)
        current = _normalise_order(current)
        current = cancel_adjacent_self_inverse(current)
        current = drop_identity_rotations(current)
        if len(current) == before:
            break
    return current
