"""ALAP scheduling and explicit idle-delay insertion.

ASAP (``schedule_asap``) answers "how long does the circuit take"; this
module adds the complementary passes:

* :func:`schedule_alap` — latest-start schedule at the same makespan,
  which pushes gates toward their consumers (useful to shorten the idle
  window before a measurement, a standard decoherence trick);
* :func:`insert_delays` — materialise a schedule's idle gaps as explicit
  ``delay`` instructions, producing a *timed circuit* whose wire-time
  structure the simulator and duration analyses see directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.hardware.calibration import Calibration
from repro.transpiler.scheduling import (
    Schedule,
    ScheduledInstruction,
    _instruction_duration,
    schedule_asap,
)

__all__ = ["schedule_alap", "insert_delays"]


def schedule_alap(
    circuit: QuantumCircuit, calibration: Optional[Calibration] = None
) -> Schedule:
    """As-late-as-possible schedule with the ASAP makespan.

    Every instruction starts as late as its successors allow; the overall
    duration matches :func:`schedule_asap` exactly.
    """
    asap = schedule_asap(circuit, calibration)
    horizon = asap.makespan
    # walk backwards: each wire tracks the earliest start among already
    # placed (later) instructions
    wire_deadline: Dict[Tuple[str, int], int] = {}
    finishes: List[int] = [0] * len(circuit.data)
    durations = [entry.duration for entry in asap.entries]
    for index in range(len(circuit.data) - 1, -1, -1):
        instruction = circuit.data[index]
        wires: List[Tuple[str, int]] = [("q", q) for q in instruction.qubits]
        wires.extend(("c", c) for c in instruction.clbits)
        if instruction.condition is not None:
            wire = ("c", instruction.condition[0])
            if wire not in wires:
                wires.append(wire)
        finish = min((wire_deadline.get(w, horizon) for w in wires), default=horizon)
        finishes[index] = finish
        start = finish - durations[index]
        for w in wires:
            wire_deadline[w] = start
    entries = [
        ScheduledInstruction(instruction, finishes[i] - durations[i], durations[i])
        for i, instruction in enumerate(circuit.data)
    ]
    if any(entry.start < 0 for entry in entries):
        raise TranspilerError("ALAP schedule underflow (internal error)")
    return Schedule(entries, horizon)


def insert_delays(
    circuit: QuantumCircuit,
    calibration: Optional[Calibration] = None,
    policy: str = "asap",
) -> QuantumCircuit:
    """Return a timed copy of *circuit* with idle gaps as ``delay`` ops.

    Args:
        policy: ``"asap"`` or ``"alap"`` — which schedule defines the gaps.

    Every qubit's instruction sequence is preserved; between consecutive
    operations on a wire (and before the first one) a ``delay`` of the
    exact idle duration is inserted, so a wire-collision duration analysis
    of the result equals the schedule's makespan.
    """
    if policy == "asap":
        schedule = schedule_asap(circuit, calibration)
    elif policy == "alap":
        schedule = schedule_alap(circuit, calibration)
    else:
        raise TranspilerError(f"unknown timing policy {policy!r}")

    # entries are in circuit order; emit with per-wire clocks
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    clock: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    order = sorted(range(len(schedule.entries)), key=lambda i: (schedule.entries[i].start, i))
    for index in order:
        entry = schedule.entries[index]
        instruction = entry.instruction
        for q in instruction.qubits:
            gap = entry.start - clock[q]
            if gap > 0:
                out.delay(gap, q)
            clock[q] = entry.finish
        out.append(instruction.copy())
    return out
