"""The baseline transpilation pipeline (Qiskit-L3 equivalent).

``transpile(circuit, backend, optimization_level=3)`` mirrors what the
paper uses as its baseline: decompose to <=2Q gates, find a layout (SABRE
bidirectional search at levels >= 2), route with SABRE swap insertion, and
run peephole optimisation.  The result records the metrics the paper
tables report: qubit usage, depth, duration (dt), SWAP count, 2Q count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.hardware.backends import Backend
from repro.transpiler.basis import decompose_to_two_qubit
from repro.transpiler.layout import Layout, greedy_degree_layout, trivial_layout
from repro.transpiler.optimization import optimize_circuit
from repro.transpiler.sabre import sabre_layout, sabre_route
from repro.transpiler.scheduling import circuit_duration_dt
from repro.transpiler.stats import RouteStats

__all__ = ["TranspileResult", "transpile"]


@dataclass
class TranspileResult:
    """A hardware-compliant circuit plus the metrics the paper reports."""

    circuit: QuantumCircuit
    initial_layout: Layout
    swap_count: int
    depth: int
    duration_dt: int
    two_qubit_count: int
    qubits_used: int

    @classmethod
    def from_circuit(
        cls, circuit: QuantumCircuit, layout: Layout, backend: Backend
    ) -> "TranspileResult":
        return cls(
            circuit=circuit,
            initial_layout=layout,
            swap_count=circuit.swap_count(),
            depth=circuit.depth(),
            duration_dt=circuit_duration_dt(circuit, backend.calibration),
            two_qubit_count=circuit.two_qubit_gate_count(),
            qubits_used=circuit.num_used_qubits(),
        )


def transpile(
    circuit: QuantumCircuit,
    backend: Backend,
    optimization_level: int = 3,
    seed: int = 11,
    initial_layout: Optional[Layout] = None,
    parallel: Optional[bool] = None,
    stats: Optional[RouteStats] = None,
) -> TranspileResult:
    """Compile *circuit* for *backend*.

    Optimisation levels:

    * 0 — trivial layout, SABRE routing, no cleanup.
    * 1 — trivial layout, routing, self-inverse cancellation.
    * 2 — greedy degree layout seed + SABRE layout (small search), routing,
      full peephole.
    * 3 — SABRE bidirectional layout search (larger search), routing, full
      peephole — the paper's Qiskit-level-3 baseline.

    ``parallel`` fans the SABRE layout trials over the routing worker pool
    (``None`` auto-detects; results are bit-identical either way) and
    ``stats`` collects :class:`RouteStats` counters — neither changes the
    emitted circuit.
    """
    if not 0 <= optimization_level <= 3:
        raise TranspilerError(f"bad optimization level {optimization_level}")
    backend.validate_circuit_width(circuit.num_qubits)
    flat = decompose_to_two_qubit(circuit)

    coupling = backend.coupling
    if initial_layout is not None:
        layout = initial_layout
    elif optimization_level == 0 or optimization_level == 1:
        layout = trivial_layout(flat.num_qubits, coupling.num_qubits)
    elif optimization_level == 2:
        degrees = dict(flat.interaction_graph().degree())
        seed_layout = greedy_degree_layout(degrees, coupling, flat.num_qubits)
        routed_seed = sabre_route(flat, coupling, seed_layout, seed=seed, stats=stats)
        layout = (
            seed_layout
            if routed_seed.swap_count == 0
            else sabre_layout(
                flat, coupling, seed=seed, iterations=2, trials=2,
                parallel=parallel, stats=stats,
            )
        )
    else:
        layout = sabre_layout(
            flat, coupling, seed=seed, iterations=3, trials=4,
            parallel=parallel, stats=stats,
        )

    routed = sabre_route(flat, coupling, layout, seed=seed, stats=stats)
    result = routed.circuit
    if optimization_level == 1:
        result = optimize_circuit(result, merge_1q=False)
    elif optimization_level >= 2:
        result = optimize_circuit(result, merge_1q=True)
    return TranspileResult.from_circuit(result, routed.initial_layout, backend)
