"""Baseline transpiler: layout, SABRE routing, scheduling, optimisation."""

from repro.transpiler.basis import decompose_ccx, decompose_swaps, decompose_to_two_qubit
from repro.transpiler.layout import Layout, greedy_degree_layout, trivial_layout
from repro.transpiler.optimization import (
    cancel_adjacent_self_inverse,
    drop_identity_rotations,
    merge_single_qubit_runs,
    optimize_circuit,
    zyz_angles,
)
from repro.transpiler.pipeline import TranspileResult, transpile
from repro.transpiler.commutation import (
    commutation_aware_cancel,
    instructions_commute,
)
from repro.transpiler.timing import insert_delays, schedule_alap
from repro.transpiler.translation import NATIVE_BASIS, is_in_basis, translate_to_basis
from repro.transpiler.sabre import RoutingResult, sabre_layout, sabre_route
from repro.transpiler.stats import RouteStats
from repro.transpiler.scheduling import (
    Schedule,
    ScheduledInstruction,
    circuit_duration_dt,
    schedule_asap,
)

__all__ = [
    "Layout",
    "trivial_layout",
    "greedy_degree_layout",
    "sabre_route",
    "sabre_layout",
    "RoutingResult",
    "RouteStats",
    "Schedule",
    "ScheduledInstruction",
    "schedule_asap",
    "circuit_duration_dt",
    "optimize_circuit",
    "merge_single_qubit_runs",
    "cancel_adjacent_self_inverse",
    "drop_identity_rotations",
    "zyz_angles",
    "decompose_ccx",
    "decompose_swaps",
    "decompose_to_two_qubit",
    "transpile",
    "TranspileResult",
    "translate_to_basis",
    "is_in_basis",
    "NATIVE_BASIS",
    "schedule_alap",
    "insert_delays",
    "commutation_aware_cancel",
    "instructions_commute",
]
