"""Decomposition into two-qubit + one-qubit gates for routing.

Routing needs every unitary to touch at most two qubits; the only wider
gate in the library is ``ccx`` (Toffoli), decomposed here into the textbook
six-CX network.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit

__all__ = ["decompose_ccx", "decompose_to_two_qubit", "decompose_swaps"]


def decompose_ccx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand every Toffoli into 6 CX + 1Q gates (standard decomposition)."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for instruction in circuit.data:
        if instruction.name != "ccx":
            out.append(instruction.copy())
            continue
        a, b, c = instruction.qubits
        out.h(c)
        out.cx(b, c)
        out.tdg(c)
        out.cx(a, c)
        out.t(c)
        out.cx(b, c)
        out.tdg(c)
        out.cx(a, c)
        out.t(b)
        out.t(c)
        out.h(c)
        out.cx(a, b)
        out.t(a)
        out.tdg(b)
        out.cx(a, b)
    return out


def decompose_to_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Ensure all unitaries act on <= 2 qubits (currently: expand ccx)."""
    if any(instruction.name == "ccx" for instruction in circuit.data):
        return decompose_ccx(circuit)
    return circuit


def decompose_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand explicit SWAP gates into three CX gates.

    Useful when counting raw CX gates; the paper reports SWAP counts
    directly, so the pipeline keeps SWAPs intact by default.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for instruction in circuit.data:
        if instruction.name != "swap":
            out.append(instruction.copy())
            continue
        a, b = instruction.qubits
        out.cx(a, b)
        out.cx(b, a)
        out.cx(a, b)
    return out
