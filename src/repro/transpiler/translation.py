"""Translation to the IBM native basis {rz, sx, x, cx} (+ measure/reset).

Falcon-class devices execute exactly this set; the paper's duration and
gate-count numbers are quoted against it (rz is virtual and free, sx/x are
fast, cx dominates).  The pass rewrites every library gate into the basis:

* one-qubit unitaries via the ZYZ decomposition
  ``u(t, p, l) = rz(p) . sx . rz(t + pi) . sx . rz(l + 3*pi)`` (global
  phase dropped),
* two-qubit gates via their textbook CX constructions,
* ``swap`` as three CX, ``ccx`` via :func:`decompose_ccx`.

Classically conditioned X gates (the reuse reset idiom) are already in
basis and pass through untouched — conditioned non-basis gates are
rejected, since splitting them would need multiple conditioned pulses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.transpiler.basis import decompose_ccx
from repro.transpiler.optimization import zyz_angles

__all__ = ["NATIVE_BASIS", "translate_to_basis", "is_in_basis"]

NATIVE_BASIS = frozenset({"rz", "sx", "x", "cx", "measure", "reset", "barrier", "delay", "id"})

_TWO_PI = 2.0 * math.pi


def is_in_basis(circuit: QuantumCircuit) -> bool:
    """True when every instruction is already native."""
    return all(instruction.name in NATIVE_BASIS for instruction in circuit.data)


def _emit_rz(out: QuantumCircuit, angle: float, qubit: int) -> None:
    angle = angle % _TWO_PI
    if min(angle, _TWO_PI - angle) > 1e-12:
        out.rz(angle, qubit)


def _emit_1q(out: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    """u(theta, phi, lam) = rz(phi+pi) . sx . rz(theta+pi) . sx . rz(lam)
    up to global phase (the standard IBM two-sx decomposition)."""
    theta, phi, lam = zyz_angles(matrix)
    if abs(theta % _TWO_PI) < 1e-12:
        _emit_rz(out, phi + lam, qubit)
        return
    _emit_rz(out, lam, qubit)
    out.sx(qubit)
    _emit_rz(out, theta + math.pi, qubit)
    out.sx(qubit)
    _emit_rz(out, phi + math.pi, qubit)


def _emit_cz(out: QuantumCircuit, a: int, b: int) -> None:
    # CZ = H(b) CX H(b)
    _emit_1q(out, gates.gate_matrix("h"), b)
    out.cx(a, b)
    _emit_1q(out, gates.gate_matrix("h"), b)


def _emit_rzz(out: QuantumCircuit, theta: float, a: int, b: int) -> None:
    out.cx(a, b)
    _emit_rz(out, theta, b)
    out.cx(a, b)


def _emit_cp(out: QuantumCircuit, lam: float, a: int, b: int) -> None:
    _emit_rz(out, lam / 2, a)
    out.cx(a, b)
    _emit_rz(out, -lam / 2 % _TWO_PI, b)
    out.cx(a, b)
    _emit_rz(out, lam / 2, b)


def _emit_crz(out: QuantumCircuit, theta: float, a: int, b: int) -> None:
    _emit_rz(out, theta / 2, b)
    out.cx(a, b)
    _emit_rz(out, -theta / 2 % _TWO_PI, b)
    out.cx(a, b)


def _emit_cy(out: QuantumCircuit, a: int, b: int) -> None:
    _emit_1q(out, gates.gate_matrix("sdg"), b)
    out.cx(a, b)
    _emit_1q(out, gates.gate_matrix("s"), b)


def translate_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite *circuit* into the native basis {rz, sx, x, cx}.

    Raises:
        TranspilerError: for conditioned gates outside the basis.
    """
    flat = decompose_ccx(circuit)
    out = QuantumCircuit(flat.num_qubits, flat.num_clbits, flat.name)
    for instruction in flat.data:
        name = instruction.name
        if name in NATIVE_BASIS:
            out.append(instruction.copy())
            continue
        if instruction.condition is not None:
            raise TranspilerError(
                f"cannot translate conditioned {name} to the native basis"
            )
        if instruction.is_unitary() and len(instruction.qubits) == 1:
            _emit_1q(
                out,
                gates.gate_matrix(name, instruction.params),
                instruction.qubits[0],
            )
            continue
        a, b = instruction.qubits
        if name == "cz":
            _emit_cz(out, a, b)
        elif name == "cy":
            _emit_cy(out, a, b)
        elif name == "rzz":
            _emit_rzz(out, instruction.params[0], a, b)
        elif name == "cp":
            _emit_cp(out, instruction.params[0], a, b)
        elif name == "crz":
            _emit_crz(out, instruction.params[0], a, b)
        elif name == "swap":
            out.cx(a, b)
            out.cx(b, a)
            out.cx(a, b)
        else:  # pragma: no cover - registry and cases are in sync
            raise TranspilerError(f"no basis translation for {name}")
    return out
