"""Runtime counters, gauges, and wall-time buckets for the routing stack.

:class:`RouteStats` follows the :class:`repro.core.profile.ReuseEvalStats` /
:class:`repro.sim.stats.SimStats` pattern: the routers report into an
optional sink, benchmarks and :func:`repro.compile_api.caqr_compile` read it
back.  It lives in the transpiler layer because both the SABRE passes here
and the SR-CaQR router in :mod:`repro.core.sr_caqr` feed it, and core
already depends on transpiler (not vice versa).

Counter names the routers use:

* ``route_calls`` — :func:`repro.transpiler.sabre.sabre_route` invocations;
* ``layout_trials`` — SABRE bidirectional layout trials executed;
* ``sr_trials`` — full ``SRCaQR._run_once`` trials executed (candidate ×
  hint-seed grid cells);
* ``serial_trials`` / ``parallel_trials`` — trials run in-process vs.
  fanned out to the worker pool;
* ``swap_candidates_scored`` — hypothetical SWAPs evaluated by the
  vectorised scoring kernels (SABRE + SR lazy mapper);
* ``swaps_inserted`` — SWAPs actually committed;
* ``slack_recomputes`` — scheduling rounds that rebuilt slack via the
  incremental ASAP worklist;
* ``slack_recomputes_avoided`` — rounds served from the cached slack table
  because no node was resolved since the last recompute;
* ``slack_node_updates`` — individual ASAP label updates performed by the
  worklist (the incremental engine's unit of work);
* ``distance_cache_builds`` / ``distance_cache_hits`` — error-weighted
  all-pairs distance matrices computed vs. served from the per-backend
  cache;
* ``hint_fallbacks`` — hint-layout searches abandoned on an expected
  :class:`~repro.exceptions.TranspilerError` (the router then maps without
  hints);
* ``reuses`` — qubit reuses committed by the selected SR trial.

Time buckets (seconds): ``route`` (SABRE swap insertion), ``layout``
(bidirectional layout search), ``sr_run`` (full SR-CaQR candidate sweep),
``slack`` (incremental scheduler state maintenance).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["RouteStats"]


@dataclass
class RouteStats:
    """Counter/gauge/timer sink for one routing run (or many, merged)."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Add *seconds* to wall-time bucket *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def add_value(self, name: str, amount: float) -> None:
        """Accumulate *amount* into gauge *name*."""
        self.values[name] = self.values.get(name, 0.0) + amount

    def set_value(self, name: str, value: float) -> None:
        """Overwrite gauge *name*."""
        self.values[name] = value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its block into bucket *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    @property
    def slack_reuse_rate(self) -> float:
        """Fraction of scheduling rounds served from the cached slack table."""
        avoided = self.counters.get("slack_recomputes_avoided", 0)
        total = avoided + self.counters.get("slack_recomputes", 0)
        return avoided / total if total else 0.0

    @property
    def distance_cache_hit_rate(self) -> float:
        """Fraction of distance-matrix requests served from the cache."""
        hits = self.counters.get("distance_cache_hits", 0)
        total = hits + self.counters.get("distance_cache_builds", 0)
        return hits / total if total else 0.0

    def merge(self, other: "RouteStats") -> None:
        """Fold *other*'s counters, gauges, and timers into this instance."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)
        for name, value in other.values.items():
            self.add_value(name, value)

    def reset(self) -> None:
        """Zero all counters, gauges, and timers."""
        self.counters.clear()
        self.timers.clear()
        self.values.clear()

    def summary(self) -> str:
        """One-line report for benchmark output."""
        parts = [f"{name}={self.counters[name]}" for name in sorted(self.counters)]
        parts.extend(f"{name}={self.values[name]:g}" for name in sorted(self.values))
        parts.extend(
            f"{name}_s={self.timers[name]:.3f}" for name in sorted(self.timers)
        )
        return ", ".join(parts)
