"""Logical-to-physical qubit layouts.

A :class:`Layout` is a partial bijection between logical circuit qubits and
physical device qubits.  SR-CaQR relies on *partial* layouts: logical qubits
are mapped lazily, and physical qubits return to the free pool once their
logical qubit has finished (the paper's ``physicalList``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import TranspilerError
from repro.hardware.coupling import CouplingMap

__all__ = ["Layout", "trivial_layout", "greedy_degree_layout"]


class Layout:
    """Partial bijection logical -> physical."""

    def __init__(self, num_logical: int, num_physical: int):
        # num_logical may exceed num_physical: with qubit reuse (SR-CaQR)
        # only the *concurrently mapped* logical qubits are bounded by the
        # device size, which the assign/free-pool mechanics enforce.
        self.num_logical = num_logical
        self.num_physical = num_physical
        self._l2p: List[Optional[int]] = [None] * num_logical
        self._p2l: List[Optional[int]] = [None] * num_physical

    @classmethod
    def from_mapping(cls, mapping: Dict[int, int], num_logical: int, num_physical: int) -> "Layout":
        """Build from an explicit logical->physical dict."""
        layout = cls(num_logical, num_physical)
        for logical, physical in mapping.items():
            layout.assign(logical, physical)
        return layout

    def assign(self, logical: int, physical: int) -> None:
        """Map *logical* onto *physical*; both must be unassigned."""
        if not 0 <= logical < self.num_logical:
            raise TranspilerError(f"logical qubit {logical} out of range")
        if not 0 <= physical < self.num_physical:
            raise TranspilerError(f"physical qubit {physical} out of range")
        if self._l2p[logical] is not None:
            raise TranspilerError(f"logical qubit {logical} already mapped")
        if self._p2l[physical] is not None:
            raise TranspilerError(f"physical qubit {physical} already occupied")
        self._l2p[logical] = physical
        self._p2l[physical] = logical

    def release(self, logical: int) -> int:
        """Unmap *logical* and return the physical qubit it occupied."""
        physical = self._l2p[logical]
        if physical is None:
            raise TranspilerError(f"logical qubit {logical} is not mapped")
        self._l2p[logical] = None
        self._p2l[physical] = None
        return physical

    def physical(self, logical: int) -> int:
        """The physical qubit *logical* occupies."""
        physical = self._l2p[logical]
        if physical is None:
            raise TranspilerError(f"logical qubit {logical} is not mapped")
        return physical

    def logical(self, physical: int) -> Optional[int]:
        """The logical qubit on *physical*, or ``None`` when free."""
        return self._p2l[physical]

    def is_mapped(self, logical: int) -> bool:
        return self._l2p[logical] is not None

    def free_physical(self) -> List[int]:
        """Unoccupied physical qubits, ascending."""
        return [p for p, logical in enumerate(self._p2l) if logical is None]

    def swap_physical(self, a: int, b: int) -> None:
        """Exchange whatever logical qubits sit on physical *a* and *b*."""
        la, lb = self._p2l[a], self._p2l[b]
        self._p2l[a], self._p2l[b] = lb, la
        if la is not None:
            self._l2p[la] = b
        if lb is not None:
            self._l2p[lb] = a

    def copy(self) -> "Layout":
        out = Layout(self.num_logical, self.num_physical)
        out._l2p = list(self._l2p)
        out._p2l = list(self._p2l)
        return out

    def as_dict(self) -> Dict[int, int]:
        """Logical -> physical mapping for the currently mapped qubits."""
        return {
            logical: physical
            for logical, physical in enumerate(self._l2p)
            if physical is not None
        }

    def __repr__(self) -> str:  # pragma: no cover - display
        return f"<Layout {self.as_dict()}>"


def trivial_layout(num_logical: int, num_physical: int) -> Layout:
    """Identity mapping: logical *i* on physical *i*."""
    if num_logical > num_physical:
        raise TranspilerError(
            f"cannot lay out {num_logical} logical qubits on "
            f"{num_physical} physical qubits"
        )
    layout = Layout(num_logical, num_physical)
    for q in range(num_logical):
        layout.assign(q, q)
    return layout


def greedy_degree_layout(
    interaction_degrees: Dict[int, int],
    coupling: CouplingMap,
    num_logical: int,
) -> Layout:
    """Place high-degree logical qubits on high-degree physical qubits.

    Logical qubits are visited by descending interaction degree; each takes
    the free physical qubit that maximises (adjacent already-placed
    neighbours, degree).  A cheap but effective seed layout.
    """
    layout = Layout(num_logical, coupling.num_qubits)
    order = sorted(
        range(num_logical),
        key=lambda q: interaction_degrees.get(q, 0),
        reverse=True,
    )
    for logical in order:
        free = layout.free_physical()
        if not free:
            raise TranspilerError("ran out of physical qubits")
        placed = [layout.physical(l) for l in range(num_logical) if layout.is_mapped(l)]

        def _score(physical: int) -> tuple:
            adjacency = sum(
                1 for other in placed if coupling.are_adjacent(physical, other)
            )
            near = -min(
                (coupling.distance(physical, other) for other in placed),
                default=0,
            )
            return (adjacency, near, coupling.degree(physical))

        layout.assign(logical, max(free, key=_score))
    return layout
