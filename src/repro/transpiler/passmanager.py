"""A minimal pass-manager framework for composing transpiler pipelines.

``transpile()`` hard-codes the paper's baseline pipeline; the pass manager
exposes the same building blocks as composable passes so downstream users
can build custom flows (e.g. insert CaQR's reuse transformation between
layout and routing, or add the basis translation at the end)::

    pm = PassManager([
        DecomposeToTwoQubit(),
        SabreLayoutPass(seed=7),
        SabreRoutePass(seed=7),
        PeepholeOptimise(),
        TranslateToBasis(),
    ])
    compiled = pm.run(circuit, backend)

Each pass receives the circuit and a shared :class:`PropertySet` (layout,
metrics, free-form annotations) and returns the transformed circuit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import TranspilerError
from repro.hardware.backends import Backend

__all__ = [
    "PropertySet",
    "BasePass",
    "PassManager",
    "DecomposeToTwoQubit",
    "SabreLayoutPass",
    "SabreRoutePass",
    "PeepholeOptimise",
    "CommutationCancelPass",
    "TranslateToBasis",
    "InsertDelaysPass",
    "QubitReusePass",
    "baseline_pass_manager",
]


class PropertySet(dict):
    """Shared state flowing between passes (a dict with attribute sugar)."""

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        self[name] = value


class BasePass:
    """One transformation step.  Subclasses implement :meth:`run`."""

    #: set False for passes that only analyse (circuit returned unchanged)
    is_transformation = True

    def run(
        self,
        circuit: QuantumCircuit,
        backend: Optional[Backend],
        properties: PropertySet,
    ) -> QuantumCircuit:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class PassRecord:
    """Execution record of one pass (for the pipeline report)."""

    name: str
    seconds: float
    size_before: int
    size_after: int


class PassManager:
    """Run a sequence of passes, collecting per-pass timing records."""

    def __init__(self, passes: Sequence[BasePass] = ()):
        self.passes: List[BasePass] = list(passes)
        self.records: List[PassRecord] = []

    def append(self, pass_: BasePass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        backend: Optional[Backend] = None,
        properties: Optional[PropertySet] = None,
    ) -> QuantumCircuit:
        """Apply every pass in order; returns the final circuit.

        The property set (available afterwards as ``self.properties``)
        accumulates whatever the passes publish (layout, reuse pairs, ...).
        """
        props = properties if properties is not None else PropertySet()
        self.properties = props
        self.records = []
        current = circuit
        for pass_ in self.passes:
            before = current.size()
            start = time.perf_counter()
            result = pass_.run(current, backend, props)
            elapsed = time.perf_counter() - start
            if result is None:
                raise TranspilerError(f"pass {pass_.name} returned None")
            current = result
            self.records.append(
                PassRecord(pass_.name, elapsed, before, current.size())
            )
        return current

    def report(self) -> str:
        """Human-readable per-pass execution summary."""
        lines = ["pass                        time(ms)   size"]
        for record in self.records:
            lines.append(
                f"{record.name:<26}  {record.seconds * 1000:>8.2f}   "
                f"{record.size_before} -> {record.size_after}"
            )
        return "\n".join(lines)


# -- concrete passes ------------------------------------------------------------


class DecomposeToTwoQubit(BasePass):
    """Expand >2-qubit gates (Toffoli) into the 2Q+1Q set."""

    def run(self, circuit, backend, properties):
        from repro.transpiler.basis import decompose_to_two_qubit

        return decompose_to_two_qubit(circuit)


class SabreLayoutPass(BasePass):
    """Find an initial layout with SABRE's bidirectional search.

    Publishes ``properties.layout``.
    """

    def __init__(self, seed: int = 11, iterations: int = 3, trials: int = 4):
        self.seed = seed
        self.iterations = iterations
        self.trials = trials

    is_transformation = False

    def run(self, circuit, backend, properties):
        if backend is None:
            raise TranspilerError("SabreLayoutPass needs a backend")
        from repro.transpiler.sabre import sabre_layout

        properties["layout"] = sabre_layout(
            circuit,
            backend.coupling,
            seed=self.seed,
            iterations=self.iterations,
            trials=self.trials,
        )
        return circuit


class SabreRoutePass(BasePass):
    """Insert SWAPs; uses ``properties.layout`` when present.

    Publishes ``properties.final_layout`` and ``properties.swap_count``.
    """

    def __init__(self, seed: int = 11):
        self.seed = seed

    def run(self, circuit, backend, properties):
        if backend is None:
            raise TranspilerError("SabreRoutePass needs a backend")
        from repro.transpiler.sabre import sabre_route

        result = sabre_route(
            circuit,
            backend.coupling,
            initial_layout=properties.get("layout"),
            seed=self.seed,
        )
        properties["final_layout"] = result.final_layout
        properties["swap_count"] = result.swap_count
        return result.circuit


class PeepholeOptimise(BasePass):
    """Identity dropping, self-inverse cancellation, 1Q-run merging."""

    def __init__(self, merge_1q: bool = True):
        self.merge_1q = merge_1q

    def run(self, circuit, backend, properties):
        from repro.transpiler.optimization import optimize_circuit

        return optimize_circuit(circuit, merge_1q=self.merge_1q)


class CommutationCancelPass(BasePass):
    """Commutation-aware reordering + self-inverse cancellation."""

    def __init__(self, rounds: int = 2):
        self.rounds = rounds

    def run(self, circuit, backend, properties):
        from repro.transpiler.commutation import commutation_aware_cancel

        return commutation_aware_cancel(circuit, rounds=self.rounds)


class TranslateToBasis(BasePass):
    """Rewrite into the native {rz, sx, x, cx} basis."""

    def run(self, circuit, backend, properties):
        from repro.transpiler.translation import translate_to_basis

        return translate_to_basis(circuit)


class InsertDelaysPass(BasePass):
    """Materialise idle time as explicit delay instructions."""

    def __init__(self, policy: str = "asap"):
        self.policy = policy

    def run(self, circuit, backend, properties):
        from repro.transpiler.timing import insert_delays

        calibration = backend.calibration if backend is not None else None
        return insert_delays(circuit, calibration, policy=self.policy)


class QubitReusePass(BasePass):
    """QS-CaQR as a pipeline pass: reduce qubit usage before layout.

    Publishes ``properties.reuse_pairs``.
    """

    def __init__(self, qubit_limit: Optional[int] = None, objective: str = "depth"):
        self.qubit_limit = qubit_limit
        self.objective = objective

    def run(self, circuit, backend, properties):
        from repro.core.qs_caqr import QSCaQR

        compiler = QSCaQR(objective=self.objective)
        if self.qubit_limit is None:
            result = compiler.sweep(circuit)[-1]
        else:
            result = compiler.reduce_to(circuit, self.qubit_limit)
            if not result.feasible:
                raise TranspilerError(
                    f"cannot reach {self.qubit_limit} qubits "
                    f"(floor {result.qubits})"
                )
        properties["reuse_pairs"] = result.pairs
        return result.circuit


def baseline_pass_manager(seed: int = 11, native_basis: bool = False) -> PassManager:
    """The paper's Qiskit-L3-equivalent pipeline as a PassManager."""
    passes: List[BasePass] = [
        DecomposeToTwoQubit(),
        SabreLayoutPass(seed=seed),
        SabreRoutePass(seed=seed),
        PeepholeOptimise(),
    ]
    if native_basis:
        passes.append(TranslateToBasis())
    return PassManager(passes)
