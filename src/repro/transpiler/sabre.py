"""SABRE swap routing and layout search (Li, Ding, Xie — ASPLOS 2019).

SABRE is the state-of-the-art mapper the paper uses after QS-CaQR's logical
transformation, and it is what Qiskit's optimisation level 3 runs — so it
doubles as our baseline router.

The implementation follows the published algorithm: a front layer of
unresolved two-qubit gates, a heuristic swap score combining the front
layer's distance sum with a look-ahead window of upcoming gates, and decay
factors that discourage thrashing a single qubit.  A stall-escape fallback
routes the oldest front gate along a shortest path if the heuristic loops.

Swap-candidate scoring is vectorised over the candidate set with numpy
against the shared read-only :meth:`CouplingMap.distance_matrix`, and
:func:`sabre_layout` can fan its independent trials out to a process pool
(``parallel=`` / ``CAQR_ROUTE_WORKERS``).  Both paths are bit-identical to
the serial scalar implementation: candidates are scored in set-iteration
order with the same RNG tie-break stream, and layout trials pre-draw their
RNG material serially so the winning layout never depends on worker timing
(see ``docs/ROUTER.md``).
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import TranspilerError
from repro.hardware.coupling import CouplingMap
from repro.transpiler.layout import Layout, trivial_layout
from repro.transpiler.stats import RouteStats

__all__ = ["sabre_route", "sabre_layout", "RoutingResult"]

_EXTENDED_SET_SIZE = 20
_EXTENDED_SET_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5
_STALL_LIMIT = 100


def _route_workers() -> int:
    """Worker-pool size for parallel layout trials.

    ``CAQR_ROUTE_WORKERS`` overrides; the default caps at 8 processes.
    """
    override = os.environ.get("CAQR_ROUTE_WORKERS")
    if override:
        return max(1, int(override))
    return min(os.cpu_count() or 1, 8)


class RoutingResult:
    """Output of :func:`sabre_route`.

    Attributes:
        circuit: physical circuit (qubit indices are *physical*), with
            inserted SWAP gates.
        initial_layout: layout at circuit start.
        final_layout: layout after all gates (useful for reverse passes).
        swap_count: number of inserted SWAPs.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: int,
    ):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.swap_count = swap_count


def _requires_routing(instruction: Instruction) -> bool:
    return instruction.is_two_qubit() or (
        len(instruction.qubits) == 2 and instruction.name == "swap"
    )


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
    seed: int = 11,
    stats: Optional[RouteStats] = None,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate touches coupled physical qubits.

    Args:
        circuit: logical circuit; gates of arity > 2 must be decomposed first.
        coupling: target connectivity.
        initial_layout: starting placement (trivial when omitted).
        seed: tie-breaking RNG seed.
        stats: optional :class:`RouteStats` sink for counters.

    Returns:
        A :class:`RoutingResult` whose circuit indexes *physical* qubits.
    """
    for instruction in circuit.data:
        if len(instruction.qubits) > 2 and not instruction.is_directive():
            raise TranspilerError(
                f"sabre_route needs <=2-qubit gates, got {instruction.name}"
            )
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"{circuit.num_qubits} logical qubits exceed device size "
            f"{coupling.num_qubits}"
        )
    rng = random.Random(seed)
    layout = (initial_layout or trivial_layout(circuit.num_qubits, coupling.num_qubits)).copy()
    initial = layout.copy()
    dag = DAGCircuit.from_circuit(circuit)
    distance = coupling.distance_matrix()

    in_degree = {node_id: dag.in_degree(node_id) for node_id in dag.nodes}
    front: List[int] = [node_id for node_id, degree in in_degree.items() if degree == 0]
    unresolved = len(in_degree)
    out = QuantumCircuit(coupling.num_qubits, circuit.num_clbits, circuit.name)
    decay = np.ones(coupling.num_qubits, dtype=np.float64)
    swap_count = 0
    stall = 0
    iterations = 0
    candidates_scored = 0

    def _physical_pair(node_id: int) -> Tuple[int, int]:
        a, b = dag.nodes[node_id].instruction.qubits
        return layout.physical(a), layout.physical(b)

    def _emit(node_id: int) -> None:
        instruction = dag.nodes[node_id].instruction
        out.append(instruction.remapped(lambda q: layout.physical(q)))

    def _resolve(node_id: int) -> None:
        nonlocal unresolved
        unresolved -= 1
        for successor in dag.successors(node_id):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                front.append(successor)

    def _extended_set(blocked: List[int]) -> List[int]:
        """Look-ahead window: nearest descendants of the blocked gates."""
        result: List[int] = []
        queue = list(blocked)
        seen: Set[int] = set(queue)
        while queue and len(result) < _EXTENDED_SET_SIZE:
            node_id = queue.pop(0)
            for successor in sorted(dag.successors(node_id)):
                if successor in seen:
                    continue
                seen.add(successor)
                instruction = dag.nodes[successor].instruction
                if instruction is not None and _requires_routing(instruction):
                    result.append(successor)
                queue.append(successor)
        return result

    def _swapped_distance_sums(
        gates: List[int], a_col: np.ndarray, b_col: np.ndarray
    ) -> np.ndarray:
        """Front/look-ahead distance sum per candidate, after hypothetically
        applying each candidate swap.  Integer sums are exact, so the order
        of summation cannot perturb the serial scores."""
        pairs = np.array([_physical_pair(node_id) for node_id in gates], dtype=np.int64)
        pa = pairs[:, 0][None, :]
        pb = pairs[:, 1][None, :]
        pa = np.where(pa == a_col, b_col, np.where(pa == b_col, a_col, pa))
        pb = np.where(pb == a_col, b_col, np.where(pb == b_col, a_col, pb))
        return distance[pa, pb].sum(axis=1)

    while front or unresolved > 0:
        iterations += 1
        # 1. execute everything executable
        progress = True
        while progress:
            progress = False
            for node_id in list(front):
                instruction = dag.nodes[node_id].instruction
                if instruction is None or not _requires_routing(instruction):
                    front.remove(node_id)
                    if instruction is not None:
                        _emit(node_id)
                    _resolve(node_id)
                    progress = True
                    continue
                pa, pb = _physical_pair(node_id)
                if coupling.are_adjacent(pa, pb):
                    front.remove(node_id)
                    _emit(node_id)
                    _resolve(node_id)
                    progress = True
        if not front:
            if unresolved > 0:
                raise TranspilerError("routing stalled with pending gates")
            break

        blocked = [
            node_id
            for node_id in front
            if dag.nodes[node_id].instruction is not None
            and _requires_routing(dag.nodes[node_id].instruction)
        ]
        if not blocked:
            continue

        stall += 1
        if stall > _STALL_LIMIT:
            # escape: route the oldest blocked gate directly
            node_id = blocked[0]
            pa, pb = _physical_pair(node_id)
            path = coupling.shortest_path(pa, pb)
            for step in range(len(path) - 2):
                out.swap(path[step], path[step + 1])
                layout.swap_physical(path[step], path[step + 1])
                swap_count += 1
            stall = 0
            continue

        # 2. score candidate swaps (vectorised over the candidate set, in
        # set-iteration order so the RNG tie-break stream matches the
        # scalar reference implementation element for element)
        extended = _extended_set(blocked)
        candidates: Set[Tuple[int, int]] = set()
        for node_id in blocked:
            for physical in _physical_pair(node_id):
                for neighbor in coupling.neighbors(physical):
                    candidates.add(tuple(sorted((physical, neighbor))))

        cand_list = list(candidates)
        ties = [rng.random() for _ in cand_list]
        cand = np.array(cand_list, dtype=np.int64)
        a_col = cand[:, 0][:, None]
        b_col = cand[:, 1][:, None]
        scores = _swapped_distance_sums(blocked, a_col, b_col) / len(blocked)
        if extended:
            scores = scores + (
                _EXTENDED_SET_WEIGHT
                * _swapped_distance_sums(extended, a_col, b_col)
                / len(extended)
            )
        scores = np.maximum(decay[cand[:, 0]], decay[cand[:, 1]]) * scores
        candidates_scored += len(cand_list)

        best_index = min(
            range(len(cand_list)), key=lambda i: (scores[i], ties[i])
        )
        best = cand_list[best_index]
        out.swap(*best)
        layout.swap_physical(*best)
        swap_count += 1
        decay[best[0]] += _DECAY_INCREMENT
        decay[best[1]] += _DECAY_INCREMENT
        if iterations % _DECAY_RESET_INTERVAL == 0:
            decay.fill(1.0)

    if stats is not None:
        stats.count("route_calls")
        stats.count("swap_candidates_scored", candidates_scored)
        stats.count("swaps_inserted", swap_count)
    return RoutingResult(out, initial, layout, swap_count)


def _layout_trial(
    circuit: QuantumCircuit,
    reverse: QuantumCircuit,
    coupling: CouplingMap,
    iterations: int,
    physical_order: Sequence[int],
    seeds: Sequence[int],
) -> Tuple[Layout, int, RouteStats]:
    """One bidirectional layout trial, a pure function of its pre-drawn RNG
    material (*physical_order* and the routing *seeds*)."""
    stats = RouteStats()
    layout = Layout(circuit.num_qubits, coupling.num_qubits)
    for logical in range(circuit.num_qubits):
        layout.assign(logical, physical_order[logical])
    position = 0
    for _ in range(iterations):
        forward = sabre_route(
            circuit, coupling, layout, seed=seeds[position], stats=stats
        )
        backward = sabre_route(
            reverse, coupling, forward.final_layout, seed=seeds[position + 1], stats=stats
        )
        position += 2
        layout = backward.final_layout
    final = sabre_route(circuit, coupling, layout, seed=seeds[position], stats=stats)
    return layout, final.swap_count, stats


def _layout_trial_worker(payload):
    """Module-level adapter so trials pickle into a process pool."""
    return _layout_trial(*payload)


def sabre_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    seed: int = 11,
    iterations: int = 3,
    trials: int = 4,
    parallel: Optional[bool] = None,
    stats: Optional[RouteStats] = None,
) -> Layout:
    """SABRE's bidirectional layout search.

    Runs forward/backward routing passes so the final layout of one pass
    seeds the next, over several random starting placements; returns the
    layout whose forward pass inserted the fewest SWAPs.

    Each trial's RNG material (initial shuffle + per-pass routing seeds) is
    drawn serially up front, which makes trials pure functions that can run
    on a process pool; the reduction keeps the earliest trial with strictly
    fewer SWAPs, exactly like the serial loop, so serial and parallel
    searches return bit-identical layouts.

    Args:
        parallel: ``True`` forces the process pool, ``False`` forces the
            in-process loop, ``None`` (default) uses the pool only when
            more than one worker (``CAQR_ROUTE_WORKERS``) and more than one
            trial are available.
        stats: optional :class:`RouteStats` sink (worker-side counters are
            merged back in).
    """
    rng = random.Random(seed)
    reverse = QuantumCircuit(circuit.num_qubits, circuit.num_clbits)
    for instruction in reversed(circuit.data):
        reverse.append(instruction.copy())

    # pre-draw every trial's RNG material in the exact serial order
    trial_specs = []
    for _ in range(trials):
        physical_order = list(range(coupling.num_qubits))
        rng.shuffle(physical_order)
        seeds = [rng.randrange(1 << 30) for _ in range(2 * iterations + 1)]
        trial_specs.append((physical_order, seeds))

    workers = _route_workers()
    use_parallel = (
        parallel if parallel is not None else (workers > 1 and trials > 1)
    )
    results: List[Tuple[Layout, int, RouteStats]]
    if use_parallel and trials > 1:
        payloads = [
            (circuit, reverse, coupling, iterations, order, seeds)
            for order, seeds in trial_specs
        ]
        with ProcessPoolExecutor(max_workers=min(workers, trials)) as pool:
            results = list(pool.map(_layout_trial_worker, payloads))
        if stats is not None:
            stats.count("parallel_trials", len(results))
    else:
        results = [
            _layout_trial(circuit, reverse, coupling, iterations, order, seeds)
            for order, seeds in trial_specs
        ]
        if stats is not None:
            stats.count("serial_trials", len(results))

    best_layout: Optional[Layout] = None
    best_swaps = None
    for layout, trial_swaps, trial_stats in results:
        if stats is not None:
            stats.count("layout_trials")
            stats.merge(trial_stats)
        if best_swaps is None or trial_swaps < best_swaps:
            best_swaps = trial_swaps
            best_layout = layout
    assert best_layout is not None
    return best_layout
