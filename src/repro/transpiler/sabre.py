"""SABRE swap routing and layout search (Li, Ding, Xie — ASPLOS 2019).

SABRE is the state-of-the-art mapper the paper uses after QS-CaQR's logical
transformation, and it is what Qiskit's optimisation level 3 runs — so it
doubles as our baseline router.

The implementation follows the published algorithm: a front layer of
unresolved two-qubit gates, a heuristic swap score combining the front
layer's distance sum with a look-ahead window of upcoming gates, and decay
factors that discourage thrashing a single qubit.  A stall-escape fallback
routes the oldest front gate along a shortest path if the heuristic loops.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import TranspilerError
from repro.hardware.coupling import CouplingMap
from repro.transpiler.layout import Layout, trivial_layout

__all__ = ["sabre_route", "sabre_layout", "RoutingResult"]

_EXTENDED_SET_SIZE = 20
_EXTENDED_SET_WEIGHT = 0.5
_DECAY_INCREMENT = 0.001
_DECAY_RESET_INTERVAL = 5
_STALL_LIMIT = 100


class RoutingResult:
    """Output of :func:`sabre_route`.

    Attributes:
        circuit: physical circuit (qubit indices are *physical*), with
            inserted SWAP gates.
        initial_layout: layout at circuit start.
        final_layout: layout after all gates (useful for reverse passes).
        swap_count: number of inserted SWAPs.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: int,
    ):
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.swap_count = swap_count


def _requires_routing(instruction: Instruction) -> bool:
    return instruction.is_two_qubit() or (
        len(instruction.qubits) == 2 and instruction.name == "swap"
    )


def sabre_route(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
    seed: int = 11,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate touches coupled physical qubits.

    Args:
        circuit: logical circuit; gates of arity > 2 must be decomposed first.
        coupling: target connectivity.
        initial_layout: starting placement (trivial when omitted).
        seed: tie-breaking RNG seed.

    Returns:
        A :class:`RoutingResult` whose circuit indexes *physical* qubits.
    """
    for instruction in circuit.data:
        if len(instruction.qubits) > 2 and not instruction.is_directive():
            raise TranspilerError(
                f"sabre_route needs <=2-qubit gates, got {instruction.name}"
            )
    if circuit.num_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"{circuit.num_qubits} logical qubits exceed device size "
            f"{coupling.num_qubits}"
        )
    rng = random.Random(seed)
    layout = (initial_layout or trivial_layout(circuit.num_qubits, coupling.num_qubits)).copy()
    initial = layout.copy()
    dag = DAGCircuit.from_circuit(circuit)
    distance = coupling.distance_matrix()

    in_degree = {node_id: dag.in_degree(node_id) for node_id in dag.nodes}
    front: List[int] = [node_id for node_id, degree in in_degree.items() if degree == 0]
    out = QuantumCircuit(coupling.num_qubits, circuit.num_clbits, circuit.name)
    decay = [1.0] * coupling.num_qubits
    swap_count = 0
    stall = 0
    iterations = 0

    def _physical_pair(node_id: int) -> Tuple[int, int]:
        a, b = dag.nodes[node_id].instruction.qubits
        return layout.physical(a), layout.physical(b)

    def _emit(node_id: int) -> None:
        instruction = dag.nodes[node_id].instruction
        out.append(instruction.remapped(lambda q: layout.physical(q)))

    def _resolve(node_id: int) -> None:
        for successor in dag.successors(node_id):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                front.append(successor)

    def _extended_set(blocked: List[int]) -> List[int]:
        """Look-ahead window: nearest descendants of the blocked gates."""
        result: List[int] = []
        queue = list(blocked)
        seen: Set[int] = set(queue)
        while queue and len(result) < _EXTENDED_SET_SIZE:
            node_id = queue.pop(0)
            for successor in sorted(dag.successors(node_id)):
                if successor in seen:
                    continue
                seen.add(successor)
                instruction = dag.nodes[successor].instruction
                if instruction is not None and _requires_routing(instruction):
                    result.append(successor)
                queue.append(successor)
        return result

    while front or any(degree > 0 for degree in in_degree.values()):
        iterations += 1
        # 1. execute everything executable
        progress = True
        while progress:
            progress = False
            for node_id in list(front):
                instruction = dag.nodes[node_id].instruction
                if instruction is None or not _requires_routing(instruction):
                    front.remove(node_id)
                    if instruction is not None:
                        _emit(node_id)
                    _resolve(node_id)
                    progress = True
                    continue
                pa, pb = _physical_pair(node_id)
                if coupling.are_adjacent(pa, pb):
                    front.remove(node_id)
                    _emit(node_id)
                    _resolve(node_id)
                    progress = True
        if not front:
            if any(degree > 0 for degree in in_degree.values()):
                raise TranspilerError("routing stalled with pending gates")
            break

        blocked = [
            node_id
            for node_id in front
            if dag.nodes[node_id].instruction is not None
            and _requires_routing(dag.nodes[node_id].instruction)
        ]
        if not blocked:
            continue

        stall += 1
        if stall > _STALL_LIMIT:
            # escape: route the oldest blocked gate directly
            node_id = blocked[0]
            pa, pb = _physical_pair(node_id)
            path = coupling.shortest_path(pa, pb)
            for step in range(len(path) - 2):
                out.swap(path[step], path[step + 1])
                layout.swap_physical(path[step], path[step + 1])
                swap_count += 1
            stall = 0
            continue

        # 2. score candidate swaps
        extended = _extended_set(blocked)
        candidates: Set[Tuple[int, int]] = set()
        for node_id in blocked:
            for physical in _physical_pair(node_id):
                for neighbor in coupling.neighbors(physical):
                    candidates.add(tuple(sorted((physical, neighbor))))

        def _score(swap: Tuple[int, int]) -> float:
            a, b = swap

            def _dist(node_id: int) -> int:
                pa, pb = _physical_pair(node_id)
                # apply the hypothetical swap
                pa = b if pa == a else a if pa == b else pa
                pb = b if pb == a else a if pb == b else pb
                return distance[pa][pb]

            front_cost = sum(_dist(node_id) for node_id in blocked) / len(blocked)
            ahead = 0.0
            if extended:
                ahead = (
                    _EXTENDED_SET_WEIGHT
                    * sum(_dist(node_id) for node_id in extended)
                    / len(extended)
                )
            return max(decay[a], decay[b]) * (front_cost + ahead)

        best = min(candidates, key=lambda swap: (_score(swap), rng.random()))
        out.swap(*best)
        layout.swap_physical(*best)
        swap_count += 1
        decay[best[0]] += _DECAY_INCREMENT
        decay[best[1]] += _DECAY_INCREMENT
        if iterations % _DECAY_RESET_INTERVAL == 0:
            decay = [1.0] * coupling.num_qubits

    return RoutingResult(out, initial, layout, swap_count)


def sabre_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    seed: int = 11,
    iterations: int = 3,
    trials: int = 4,
) -> Layout:
    """SABRE's bidirectional layout search.

    Runs forward/backward routing passes so the final layout of one pass
    seeds the next, over several random starting placements; returns the
    layout whose forward pass inserted the fewest SWAPs.
    """
    rng = random.Random(seed)
    reverse = QuantumCircuit(circuit.num_qubits, circuit.num_clbits)
    for instruction in reversed(circuit.data):
        reverse.append(instruction.copy())

    best_layout: Optional[Layout] = None
    best_swaps = None
    for trial in range(trials):
        physical_order = list(range(coupling.num_qubits))
        rng.shuffle(physical_order)
        layout = Layout(circuit.num_qubits, coupling.num_qubits)
        for logical in range(circuit.num_qubits):
            layout.assign(logical, physical_order[logical])
        for _ in range(iterations):
            forward = sabre_route(circuit, coupling, layout, seed=rng.randrange(1 << 30))
            backward = sabre_route(
                reverse, coupling, forward.final_layout, seed=rng.randrange(1 << 30)
            )
            layout = backward.final_layout
        final = sabre_route(circuit, coupling, layout, seed=rng.randrange(1 << 30))
        if best_swaps is None or final.swap_count < best_swaps:
            best_swaps = final.swap_count
            best_layout = layout
    assert best_layout is not None
    return best_layout
