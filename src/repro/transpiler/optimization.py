"""Peephole optimisation passes: 1Q-run merging and self-inverse cancellation.

These give the baseline pipeline parity with "Qiskit optimisation level 3"
at the level that matters for the paper's metrics (2Q gate count, depth,
duration): redundant CX/CZ/SWAP pairs vanish and runs of single-qubit
gates collapse to at most one ``u`` gate.
"""

from __future__ import annotations

import cmath
import math
from typing import List, Optional, Tuple

import numpy as np

from repro.circuit import gates
from repro.circuit.circuit import QuantumCircuit

__all__ = [
    "zyz_angles",
    "merge_single_qubit_runs",
    "cancel_adjacent_self_inverse",
    "drop_identity_rotations",
    "optimize_circuit",
]

_SELF_INVERSE = {"cx", "cz", "cy", "swap", "x", "y", "z", "h"}
_ANGLE_EPS = 1e-9


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Decompose a 1-qubit unitary as ``u(theta, phi, lam)`` up to global phase.

    The library's ``u`` gate follows the OpenQASM convention::

        u(t, p, l) = [[cos(t/2),            -e^{il} sin(t/2)],
                      [e^{ip} sin(t/2),  e^{i(p+l)} cos(t/2)]]
    """
    u00, u01 = matrix[0]
    u10, u11 = matrix[1]
    theta = 2.0 * math.atan2(abs(u10), abs(u00))
    if abs(u00) < 1e-12:
        # theta == pi: only the anti-diagonal is populated
        return math.pi, cmath.phase(u10), cmath.phase(-u01)
    alpha = cmath.phase(u00)
    if abs(u10) < 1e-12:
        # theta == 0: diagonal matrix
        return 0.0, 0.0, cmath.phase(u11) - alpha
    phi = cmath.phase(u10) - alpha
    lam = cmath.phase(-u01) - alpha
    return theta, phi, lam


def _matrices_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> bool:
    """True when a == e^{i alpha} b for some alpha."""
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[index]) < atol:
        return np.allclose(a, b, atol=atol)
    phase = a[index] / b[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return np.allclose(a, phase * b, atol=atol)


def _is_identity_up_to_phase(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    return _matrices_equal_up_to_phase(matrix, np.eye(matrix.shape[0]), atol)


def merge_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Collapse maximal runs of unconditioned 1Q gates into one ``u`` gate.

    Runs ending in the identity are dropped entirely.  Conditioned gates,
    measurements, resets, and barriers break runs (and are kept verbatim).
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    pending: List[Optional[np.ndarray]] = [None] * circuit.num_qubits

    def _flush(qubit: int) -> None:
        matrix = pending[qubit]
        pending[qubit] = None
        if matrix is None or _is_identity_up_to_phase(matrix):
            return
        theta, phi, lam = zyz_angles(matrix)
        out.u(theta, phi, lam, qubit)

    for instruction in circuit.data:
        mergeable = (
            instruction.is_unitary()
            and len(instruction.qubits) == 1
            and instruction.condition is None
        )
        if mergeable:
            qubit = instruction.qubits[0]
            matrix = gates.gate_matrix(instruction.name, instruction.params)
            previous = pending[qubit]
            pending[qubit] = matrix if previous is None else matrix @ previous
            continue
        for qubit in instruction.qubits:
            _flush(qubit)
        if instruction.condition is not None:
            # conditions read a classical wire only; qubit flush above suffices
            pass
        out.append(instruction.copy())
    for qubit in range(circuit.num_qubits):
        _flush(qubit)
    return out


def cancel_adjacent_self_inverse(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical adjacent self-inverse gates.

    Two gates cancel when they have the same name, the same qubits in the
    same order (or any order for ``swap``/``cz``), no condition, and nothing
    touched any of their wires in between.  Iterates to a fixed point.
    """
    data = [instruction.copy() for instruction in circuit.data]
    changed = True
    while changed:
        changed = False
        last_on_wire: dict = {}
        keep = [True] * len(data)
        for index, instruction in enumerate(data):
            wires = list(instruction.qubits)
            cancellable = (
                instruction.name in _SELF_INVERSE
                and instruction.condition is None
                and not instruction.clbits
            )
            if cancellable:
                previous = [last_on_wire.get(q) for q in instruction.qubits]
                candidate = previous[0]
                if (
                    candidate is not None
                    and all(p == candidate for p in previous)
                    and keep[candidate]
                ):
                    other = data[candidate]
                    same_qubits = other.qubits == instruction.qubits or (
                        instruction.name in ("swap", "cz", "rzz")
                        and set(other.qubits) == set(instruction.qubits)
                    )
                    if other.name == instruction.name and same_qubits and other.condition is None:
                        keep[candidate] = False
                        keep[index] = False
                        for q in instruction.qubits:
                            last_on_wire.pop(q, None)
                        changed = True
                        continue
            for q in instruction.qubits:
                last_on_wire[q] = index if cancellable else None
            for c in instruction.clbits:
                last_on_wire[("c", c)] = None
        data = [instruction for index, instruction in enumerate(data) if keep[index]]
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.extend(data)
    return out


def drop_identity_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove rotations whose angle is 0 (mod 2*pi) and ``id`` gates."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for instruction in circuit.data:
        if instruction.condition is None:
            if instruction.name == "id":
                continue
            if instruction.name in ("rz", "rx", "ry", "p", "cp", "crz", "rzz"):
                angle = instruction.params[0] % (2 * math.pi)
                if min(angle, 2 * math.pi - angle) < _ANGLE_EPS:
                    continue
        out.append(instruction.copy())
    return out


def optimize_circuit(circuit: QuantumCircuit, merge_1q: bool = True) -> QuantumCircuit:
    """Full peephole pass: drop identities, cancel pairs, merge 1Q runs."""
    result = drop_identity_rotations(circuit)
    result = cancel_adjacent_self_inverse(result)
    if merge_1q:
        result = merge_single_qubit_runs(result)
    return result
