"""End-to-end QAOA: COBYLA parameter optimisation over the noisy simulator.

Reproduces the paper's Figs. 15-16 setup: a classical COBYLA optimiser
(scipy's implementation — the same algorithm Qiskit wraps) tunes (gamma,
beta) while the quantum side runs either the no-reuse baseline circuit or
the SR-CaQR compiled circuit on the simulated device.  The convergence
trace records the negated expected cut value per objective evaluation.

A circuit factory maps ``(gamma, beta)`` to either a bare circuit (the
runner's global noise model applies) or a ``(circuit, noise)`` pair —
hardware-compiled factories return the latter so the per-link error
variability of the device follows the compiled layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import networkx as nx
from scipy.optimize import minimize

from repro.apps.maxcut import expected_cut_from_counts
from repro.circuit.circuit import QuantumCircuit
from repro.core.sr_commuting import SRCaQRCommuting
from repro.exceptions import WorkloadError
from repro.hardware.backends import Backend
from repro.sim.device import compacted_with_noise
from repro.sim.noise import NoiseModel
from repro.sim.statevector import run_counts
from repro.transpiler.pipeline import transpile
from repro.workloads.qaoa import qaoa_maxcut_circuit

__all__ = [
    "QAOATrace",
    "run_qaoa",
    "CircuitFactory",
    "baseline_factory",
    "transpiled_factory",
    "sr_caqr_factory",
]

# a factory maps (gamma, beta) to a circuit or a (circuit, noise) pair
FactoryOutput = Union[QuantumCircuit, Tuple[QuantumCircuit, Optional[NoiseModel]]]
CircuitFactory = Callable[[float, float], FactoryOutput]


@dataclass
class QAOATrace:
    """Convergence record of one QAOA run.

    Attributes:
        energies: negated expected cut value per objective evaluation
            (lower is better — the paper's y-axis).
        best_energy: minimum over the trace.
        gamma / beta: final optimised angles.
        evaluations: number of objective evaluations.
    """

    energies: List[float] = field(default_factory=list)
    best_energy: float = float("inf")
    gamma: float = 0.0
    beta: float = 0.0

    @property
    def evaluations(self) -> int:
        return len(self.energies)


def baseline_factory(graph: nx.Graph) -> CircuitFactory:
    """Factory for the no-reuse logical QAOA circuit (ideal connectivity)."""

    def build(gamma: float, beta: float) -> QuantumCircuit:
        return qaoa_maxcut_circuit(graph, gammas=[gamma], betas=[beta])

    return build


def transpiled_factory(
    graph: nx.Graph,
    backend: Backend,
    relaxation: bool = True,
    seed: int = 11,
) -> CircuitFactory:
    """The hardware baseline: transpile at level 3, simulate with device
    noise following the compiled layout (SWAP overhead included)."""

    def build(gamma: float, beta: float):
        logical = qaoa_maxcut_circuit(graph, gammas=[gamma], betas=[beta])
        compiled = transpile(logical, backend, optimization_level=3, seed=seed)
        return compacted_with_noise(compiled.circuit, backend, relaxation)

    return build


def sr_caqr_factory(
    graph: nx.Graph,
    backend: Backend,
    qubit_limit: Optional[int] = None,
    relaxation: bool = True,
    objective: str = "esp",
) -> CircuitFactory:
    """Factory compiling with SR-CaQR, with matching device noise.

    Defaults to the ESP objective: when the compiled circuit feeds a
    fidelity-sensitive optimisation loop, estimated success probability is
    the right selection metric (paper Section 3.2.1 / conclusion).
    """
    compiler = SRCaQRCommuting(backend)

    def build(gamma: float, beta: float):
        compiler.gamma = gamma
        compiler.beta = beta
        physical = compiler.run(
            graph, qubit_limit=qubit_limit, objective=objective
        ).circuit
        return compacted_with_noise(physical, backend, relaxation)

    return build


def run_qaoa(
    graph: nx.Graph,
    factory: CircuitFactory,
    noise: Optional[NoiseModel] = None,
    shots: int = 256,
    max_iterations: int = 30,
    initial_gamma: float = 0.8,
    initial_beta: float = 0.4,
    seed: int = 23,
    engine: str = "auto",
) -> QAOATrace:
    """Optimise (gamma, beta) with COBYLA; return the convergence trace.

    Args:
        graph: max-cut problem graph.
        factory: circuit builder (see module docstring for the contract).
        noise: default noise model for factories returning bare circuits.
        shots: samples per objective evaluation.
        max_iterations: COBYLA iteration budget (the paper's x-axis).
        engine: simulation engine for the objective evaluations (see
            :func:`~repro.sim.statevector.run_counts`).
    """
    if graph.number_of_nodes() < 2:
        raise WorkloadError("QAOA needs at least 2 vertices")
    trace = QAOATrace()

    def objective(params) -> float:
        gamma, beta = float(params[0]), float(params[1])
        built = factory(gamma, beta)
        if isinstance(built, tuple):
            circuit, model = built
        else:
            circuit, model = built, noise
        counts = run_counts(
            circuit,
            shots=shots,
            seed=seed + trace.evaluations,
            noise=model,
            engine=engine,
        )
        energy = -expected_cut_from_counts(graph, counts)
        trace.energies.append(energy)
        if energy < trace.best_energy:
            trace.best_energy = energy
            trace.gamma, trace.beta = gamma, beta
        return energy

    minimize(
        objective,
        x0=[initial_gamma, initial_beta],
        method="COBYLA",
        options={"maxiter": max_iterations, "rhobeg": 0.4},
    )
    return trace
