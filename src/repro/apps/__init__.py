"""Applications: max-cut utilities and the end-to-end QAOA runner."""

from repro.apps.maxcut import best_cut_brute_force, cut_value, expected_cut_from_counts
from repro.apps.qaoa_runner import (
    QAOATrace,
    baseline_factory,
    run_qaoa,
    sr_caqr_factory,
    transpiled_factory,
)

__all__ = [
    "cut_value",
    "expected_cut_from_counts",
    "best_cut_brute_force",
    "QAOATrace",
    "run_qaoa",
    "baseline_factory",
    "transpiled_factory",
    "sr_caqr_factory",
]
