"""Max-cut objective utilities for the QAOA experiments.

The paper's Figs. 15-16 plot the *negated expected cut value* against
COBYLA iterations ("the y-axis is the negation of the expected value of
the max-cut value. The smaller is better").
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx

from repro.exceptions import WorkloadError

__all__ = ["cut_value", "expected_cut_from_counts", "best_cut_brute_force"]


def cut_value(graph: nx.Graph, assignment: str) -> int:
    """Cut size of a bitstring assignment (bit *q* = side of vertex *q*).

    Bit ordering matches the simulator's counts keys: character ``q`` of
    the string is vertex ``q``'s side.
    """
    n = graph.number_of_nodes()
    if len(assignment) < n:
        raise WorkloadError(
            f"assignment {assignment!r} shorter than vertex count {n}"
        )
    return sum(1 for a, b in graph.edges if assignment[a] != assignment[b])


def expected_cut_from_counts(graph: nx.Graph, counts: Mapping[str, int]) -> float:
    """Shot-weighted average cut value of a counts dictionary.

    Extra classical bits beyond the vertex count (e.g. garbage bits from
    ancilla reuse) are ignored.
    """
    total = sum(counts.values())
    if total <= 0:
        raise WorkloadError("empty counts")
    return sum(cut_value(graph, key) * value for key, value in counts.items()) / total


def best_cut_brute_force(graph: nx.Graph) -> int:
    """Exact max-cut by enumeration (sanity baseline; n <= 20)."""
    n = graph.number_of_nodes()
    if n > 20:
        raise WorkloadError("brute force limited to 20 vertices")
    best = 0
    for mask in range(1 << (n - 1)):  # fix vertex n-1 on side 0 (symmetry)
        assignment = "".join(
            "1" if (mask >> q) & 1 else "0" for q in range(n - 1)
        ) + "0"
        best = max(best, cut_value(graph, assignment))
    return best
