"""Consistent-hash fleet membership for the compile service.

The gateway (:mod:`repro.service.net.gateway`) spreads compile traffic
across N ``repro serve`` processes.  Everything that decides *where* a
request goes lives here, deliberately free of any I/O so it can be
tested with a fake clock and reused by smoke scripts to predict
placement from outside the gateway process:

* :class:`HashRing` — a sha256 consistent-hash ring with virtual nodes.
  Same members in, same owner out, regardless of insertion order; adding
  or removing one member moves ~1/N of the keyspace and nothing else.
* :func:`ring_key` — the placement key. Requests carrying a backend
  calibration route by their 16-hex shard digest
  (:meth:`repro.service.service.CompileRequest.shard`) so one
  calibration's entries colocate on one server (its DiskCache shard
  directory stays hot). The shard is the *banded* calibration digest
  when drift banding is on (``calib_bands`` / ``$CAQR_CALIB_BANDS``),
  so day-to-day in-band drift keeps routing to the server that holds
  the warm entries instead of re-homing every snapshot. Backend-less
  requests all share :data:`~repro.service.cache.DEFAULT_SHARD`, which
  would pin them to a single server — those route by full fingerprint
  instead.
* :class:`FleetState` — the mark-down / re-probe membership machine.
  ``record_failure`` marks a backend down after ``mark_down_after``
  consecutive health failures; downed backends get re-probed on a
  jittered interval (deterministic jitter: seeded PRNG) and rejoin on
  the first success. Topology changes rebuild the ring and count how
  many tracked keys re-homed (``ring_moves``).

The ring hashes with sha256 rather than :func:`hash` because placement
must agree across processes (``PYTHONHASHSEED`` randomizes ``hash``)
and across runs — the smoke test computes owners out-of-process.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.service.cache import DEFAULT_SHARD

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "ring_key",
    "MemberHealth",
    "FleetState",
]

DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """Position of ``token`` on the ring: first 64 bits of sha256."""
    return int(hashlib.sha256(token.encode("utf-8")).hexdigest()[:16], 16)


def ring_key(shard: str, fingerprint: str) -> str:
    """The consistent-hash key for one compile request.

    Calibration-backed requests route by shard digest so a calibration's
    cache entries colocate; backend-less requests (all sharing
    ``DEFAULT_SHARD``) spread by fingerprint instead of piling onto one
    member.  With drift banding on, the shard is the banded digest
    prefix, so every in-band snapshot of a device maps to the same ring
    owner — the member whose DiskCache already holds the warm entry.
    """
    return shard if shard != DEFAULT_SHARD else fingerprint


class HashRing:
    """Consistent-hash ring with virtual nodes.

    ``members`` is any iterable of opaque member names (the gateway uses
    backend base URLs). Each member contributes ``vnodes`` points at
    ``sha256(f"{member}#{i}")``; a key owned by the first point at or
    after ``sha256(key)`` (wrapping). Construction is a pure function of
    the member *set* — order does not matter.
    """

    def __init__(self, members: Iterable[str], vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.members: Tuple[str, ...] = tuple(sorted(set(members)))
        points: List[Tuple[int, str]] = []
        for member in self.members:
            for index in range(vnodes):
                points.append((_point(f"{member}#{index}"), member))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def __len__(self) -> int:
        return len(self.members)

    def owner(self, key: str) -> Optional[str]:
        """The member owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._hashes, _point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def replicas(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct members in ring order starting at ``key``'s owner.

        The first entry is :meth:`owner`; the rest are the fallback
        order the gateway walks when the owner is unreachable. ``count``
        caps the list (default: every member).
        """
        if not self._points:
            return []
        want = len(self.members) if count is None else min(count, len(self.members))
        found: List[str] = []
        start = bisect.bisect_right(self._hashes, _point(key))
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in found:
                found.append(member)
                if len(found) == want:
                    break
        return found


@dataclass
class MemberHealth:
    """Mutable health record for one fleet member."""

    name: str
    up: bool = True
    consecutive_failures: int = 0
    next_probe: float = 0.0
    marked_down: int = 0  # lifetime mark-down transitions

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "up": self.up,
            "consecutive_failures": self.consecutive_failures,
            "marked_down": self.marked_down,
        }


@dataclass
class FleetState:
    """Sans-I/O membership state machine for a fixed member roster.

    The roster never changes; members flip between *up* and *down*.
    Callers feed in probe outcomes (``record_success`` /
    ``record_failure``) with an explicit ``now`` timestamp and ask
    ``due(now)`` which members want a health probe. Both record methods
    return ``True`` when the up-set changed, at which point the caller
    should rebuild routing state via :meth:`ring`.

    Jitter on the re-probe schedule is deterministic (seeded PRNG keyed
    by ``seed``) so tests replay exactly.
    """

    members: Sequence[str]
    vnodes: int = DEFAULT_VNODES
    mark_down_after: int = 3
    probe_interval: float = 2.0
    probe_jitter: float = 0.5
    seed: int = 2023
    health: Dict[str, MemberHealth] = field(init=False)
    ring_moves: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        names = tuple(sorted(set(self.members)))
        if not names:
            raise ValueError("fleet needs at least one member")
        if self.mark_down_after < 1:
            raise ValueError("mark_down_after must be >= 1")
        self.members = names
        self.health = {name: MemberHealth(name) for name in names}
        self._rng = random.Random(self.seed)
        self._ring = HashRing(names, vnodes=self.vnodes)

    # -- membership -------------------------------------------------

    def up_members(self) -> Tuple[str, ...]:
        return tuple(n for n in self.members if self.health[n].up)

    def ring(self) -> HashRing:
        """The ring over currently-up members (empty ring if none)."""
        return self._ring

    def _member(self, name: str) -> MemberHealth:
        try:
            return self.health[name]
        except KeyError:
            raise ServiceError(f"unknown fleet member {name!r}") from None

    def record_success(self, name: str, now: float) -> bool:
        """A health probe (or proxied request) to ``name`` succeeded."""
        member = self._member(name)
        member.consecutive_failures = 0
        member.next_probe = now + self._jittered(self.probe_interval)
        if not member.up:
            member.up = True
            self._rebuild()
            return True
        return False

    def record_failure(self, name: str, now: float) -> bool:
        """A probe/request to ``name`` failed; maybe mark it down."""
        member = self._member(name)
        member.consecutive_failures += 1
        member.next_probe = now + self._jittered(self.probe_interval)
        if member.up and member.consecutive_failures >= self.mark_down_after:
            member.up = False
            member.marked_down += 1
            self._rebuild()
            return True
        return False

    def due(self, now: float) -> List[str]:
        """Members whose next health probe is due at ``now``."""
        return [n for n in self.members if self.health[n].next_probe <= now]

    # -- introspection ---------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "members": [self.health[n].summary() for n in self.members],
            "up": list(self.up_members()),
            "ring_moves": self.ring_moves,
            "vnodes": self.vnodes,
        }

    # -- internals --------------------------------------------------

    def _jittered(self, base: float) -> float:
        if self.probe_jitter <= 0:
            return base
        return base * (1.0 + self._rng.uniform(-self.probe_jitter, self.probe_jitter))

    def _rebuild(self) -> None:
        """Rebuild the ring after an up-set change, counting key moves.

        The move count samples the keyspace with a fixed probe set
        (cheap, deterministic) rather than tracking live keys — it is a
        telemetry gauge, not a correctness input.
        """
        old = self._ring
        self._ring = HashRing(self.up_members(), vnodes=self.vnodes)
        moved = sum(
            1
            for i in range(_MOVE_PROBES)
            if old.owner(f"probe-{i}") != self._ring.owner(f"probe-{i}")
        )
        self.ring_moves += moved


_MOVE_PROBES = 64
