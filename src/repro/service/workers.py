"""Persistent compile worker pool with fingerprint-keyed request records.

The batch engine and the portfolio race used to spawn a fresh
``ProcessPoolExecutor`` per call and pickle the full circuit into every
task.  :class:`WorkerPool` kills both taxes:

* **Persistent** — one pool per :class:`~repro.service.service.CompileService`
  (or :class:`~repro.service.portfolio.PortfolioCompileService`), spawned
  lazily on first use and reused across calls.  A dead worker breaks the
  pool exactly once: :meth:`WorkerPool.run` detects the broken pool,
  respawns it (``worker_respawns``), and resubmits the interrupted tasks.
* **Zero-copy warm lanes** — tasks carry ``(kind, fingerprint, record,
  extra)`` where *record* is a canonical encoding of the request (the
  wire-protocol record when expressible, the request object otherwise)
  shipped at most once per worker.  Workers cache decoded requests by
  fingerprint, so repeated batch dispatches and the N raced portfolio
  lanes of one request deserialize it once instead of N times.  A worker
  that has never seen a fingerprint and got no record answers
  ``("need_record", fp)`` and the parent resubmits with the record
  attached (``worker_record_misses``).

Task kinds: ``"entry"`` (cold-compile, return the serialized cache
entry), ``"strategy"`` (run one portfolio lane, return its
``StrategyOutcome``), ``"ping"`` (health check), ``"crash"`` (kill the
worker — the respawn drill used by tests).

``workers_mode="ephemeral"`` (or ``CAQR_WORKERS_MODE=ephemeral``) keeps
the old per-call pool; the differential tests pin serial == pooled ==
ephemeral bit-identical either way.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from threading import Lock
from typing import Any, List, Optional, Sequence, Tuple

from repro.exceptions import ServiceError
from repro.service.stats import ServiceStats

__all__ = [
    "DEFAULT_WORKERS_MODE",
    "WORKERS_MODES",
    "WorkerPool",
    "resolve_workers_mode",
]

WORKERS_MODES = ("persistent", "ephemeral")
DEFAULT_WORKERS_MODE = "persistent"

#: A worker task: ``(kind, fingerprint, request-or-record, extra)``.
WorkerTask = Tuple[str, str, Any, Any]


def resolve_workers_mode(mode: Optional[str] = None) -> str:
    """Validate *mode*, falling back to ``$CAQR_WORKERS_MODE`` then default."""
    resolved = mode or os.environ.get("CAQR_WORKERS_MODE") or DEFAULT_WORKERS_MODE
    if resolved not in WORKERS_MODES:
        raise ServiceError(
            f"unknown workers mode {resolved!r}; expected one of {WORKERS_MODES}"
        )
    return resolved


# -- request records -----------------------------------------------------------


def _encode_record(request) -> Tuple[str, Any]:
    """Canonical one-time-shipped form of a :class:`CompileRequest`.

    Prefers the schema-versioned wire record (a plain JSON-compatible
    dict, cheap to pickle and identical to what the HTTP layer ships);
    targets the wire codec cannot express (e.g. graphs with non-integer
    nodes) fall back to the request object itself.
    """
    try:
        from repro.service.net.wire import request_to_wire

        return "wire", request_to_wire(request)
    except Exception:
        return "object", request


def _decode_record(record: Tuple[str, Any]):
    kind, payload = record
    if kind == "wire":
        from repro.service.net.wire import request_from_wire

        return request_from_wire(payload)
    return payload


# -- worker side ---------------------------------------------------------------


@dataclass
class _CachedRequest:
    request: Any
    extracted: Any = None
    extracted_known: bool = False


#: Per-worker decoded-request cache (fingerprint -> request + extracted
#: QAOA structure), LRU-capped so long-lived workers stay bounded.
_DECODED_CAP = 128
_decoded: "OrderedDict[str, _CachedRequest]" = OrderedDict()


def _reset_worker_state() -> None:
    """Drop the decoded-request cache (tests drive ``_worker_task`` in-process)."""
    _decoded.clear()


def _worker_task(task: WorkerTask) -> Tuple[str, Any]:
    """Run one pool task; returns ``(status, payload)``.

    ``("need_record", fp)`` asks the parent to resubmit with the request
    record attached.  Compile errors propagate as exceptions, matching
    the ephemeral ``pool.map`` semantics.
    """
    kind, fingerprint, record, extra = task
    if kind == "ping":
        return "ok", os.getpid()
    if kind == "crash":
        # the respawn drill: die hard enough to break the pool
        os._exit(17)
    cached = _decoded.get(fingerprint)
    if cached is None:
        if record is None:
            return "need_record", fingerprint
        cached = _CachedRequest(request=_decode_record(record))
        _decoded[fingerprint] = cached
        while len(_decoded) > _DECODED_CAP:
            _decoded.popitem(last=False)
    else:
        _decoded.move_to_end(fingerprint)
    if kind == "entry":
        from repro.service.serialization import dumps_entry
        from repro.service.service import _cold_compile

        report = _cold_compile(cached.request, allow_parallel=False)
        return "ok", dumps_entry(fingerprint, report)
    if kind == "strategy":
        from repro.service.portfolio import (
            PortfolioCompileService,
            _run_strategy_worker,
        )

        if not cached.extracted_known:
            cached.extracted = PortfolioCompileService._extract_commuting(
                cached.request
            )
            cached.extracted_known = True
        return "ok", _run_strategy_worker((extra, cached.request, cached.extracted))
    raise ServiceError(f"unknown worker task kind {kind!r}")


# -- parent side ---------------------------------------------------------------


class WorkerPool:
    """A long-lived, health-checked process pool (thread-safe).

    Args:
        max_workers: pool width (fixed at construction).
        stats: optional shared :class:`ServiceStats` sink — counts
            ``worker_pool_spawns`` / ``worker_respawns`` /
            ``worker_tasks`` / ``worker_records_shipped`` /
            ``worker_record_misses``.
        record_cache_entries: parent-side LRU cap on encoded request
            records kept for re-shipping.
        max_respawns: broken-pool respawns tolerated within one
            :meth:`run` call before giving up with :class:`ServiceError`.
    """

    def __init__(
        self,
        max_workers: int,
        stats: Optional[ServiceStats] = None,
        record_cache_entries: int = 256,
        max_respawns: int = 3,
    ):
        self.max_workers = max(1, int(max_workers))
        self.stats = stats if stats is not None else ServiceStats()
        self.record_cache_entries = max(1, int(record_cache_entries))
        self.max_respawns = max(0, int(max_respawns))
        self._lock = Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        # how many times each fingerprint's record has shipped into the
        # *current* pool generation — reset on respawn so fresh workers
        # get the record again without a need_record round-trip
        self._shipped: dict = {}
        self._records: "OrderedDict[str, Tuple[str, Any]]" = OrderedDict()

    @property
    def alive(self) -> bool:
        """Whether a pool is currently spawned (it spawns lazily)."""
        return self._pool is not None

    # -- pool lifecycle --------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # caller holds self._lock
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._shipped = {}
            self.stats.count("worker_pool_spawns")
        return self._pool

    def _discard_pool(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def shutdown(self) -> None:
        """Tear the pool down and drop all cached records."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._records.clear()
            self._shipped = {}

    def ping(self, timeout: float = 60.0) -> bool:
        """Round-trip a health check; respawn-on-next-use if it fails."""
        try:
            with self._lock:
                future = self._ensure_pool().submit(
                    _worker_task, ("ping", "", None, None)
                )
            status, _ = future.result(timeout=timeout)
            return status == "ok"
        except BrokenProcessPool:
            self.stats.count("worker_respawns")
            self._discard_pool()
            return False
        except FuturesTimeoutError:
            return False

    def ensure_healthy(self, timeout: float = 60.0) -> None:
        """Ping; respawn and re-ping once; raise if the pool stays down."""
        if self.ping(timeout=timeout):
            return
        if not self.ping(timeout=timeout):
            raise ServiceError("worker pool failed health check after respawn")

    # -- record shipping -------------------------------------------------------

    def _record_for(self, fingerprint: str, request, force: bool):
        # caller holds self._lock
        record = self._records.get(fingerprint)
        if record is None:
            record = _encode_record(request)
            self._records[fingerprint] = record
            while len(self._records) > self.record_cache_entries:
                self._records.popitem(last=False)
        else:
            self._records.move_to_end(fingerprint)
        shipped = self._shipped.get(fingerprint, 0)
        if force or shipped < self.max_workers:
            # until every worker can have seen it, keep attaching the
            # record; after that the per-worker caches carry it
            self._shipped[fingerprint] = shipped + 1
            self.stats.count("worker_records_shipped")
            return record
        return None

    # -- task execution --------------------------------------------------------

    def run(self, tasks: Sequence[WorkerTask]) -> List[Any]:
        """Execute *tasks*, returning payloads in input order.

        Resubmits tasks that answered ``need_record`` (with the record
        forced on) and tasks interrupted by a worker death (on a fresh
        pool).  The first real task exception propagates, like the
        ephemeral ``pool.map`` it replaces.
        """
        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        force = [False] * len(tasks)
        respawns = 0
        while pending:
            with self._lock:
                pool = self._ensure_pool()
                futures = []
                for i in pending:
                    kind, fingerprint, request, extra = tasks[i]
                    if kind in ("ping", "crash"):
                        record = None
                    else:
                        record = self._record_for(fingerprint, request, force[i])
                    futures.append(
                        pool.submit(
                            _worker_task, (kind, fingerprint, record, extra)
                        )
                    )
                self.stats.count("worker_tasks", len(pending))
            retry: List[int] = []
            broken = False
            failure: Optional[BaseException] = None
            for i, future in zip(pending, futures):
                try:
                    status, payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    retry.append(i)
                    continue
                except BaseException as exc:  # a real task error
                    if failure is None:
                        failure = exc
                    continue
                if status == "need_record":
                    self.stats.count("worker_record_misses")
                    force[i] = True
                    retry.append(i)
                else:
                    results[i] = payload
            if broken:
                self.stats.count("worker_respawns")
                self._discard_pool()
                respawns += 1
                if respawns > self.max_respawns:
                    raise ServiceError(
                        f"worker pool died {respawns} times during one "
                        f"dispatch (max_respawns={self.max_respawns})"
                    )
            if failure is not None:
                raise failure
            pending = retry
        return results
