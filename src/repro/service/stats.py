"""Runtime counters, gauges, and wall-time buckets for the compile service.

:class:`ServiceStats` follows the :class:`repro.core.profile.ReuseEvalStats` /
:class:`repro.sim.stats.SimStats` / :class:`repro.transpiler.stats.RouteStats`
pattern: the cache tiers and the batch engine report into an optional sink,
benchmarks and ``python -m repro cache stats`` read it back.

Counter names the service uses:

* ``requests`` — :meth:`CompileService.compile` calls (batch members count
  individually);
* ``hits`` / ``misses`` — cache lookups served vs. compiled from scratch;
* ``memory_hits`` / ``disk_hits`` — which tier served each hit (a disk hit
  is promoted into the memory tier);
* ``stores`` — fresh reports written into the cache;
* ``evictions`` — memory-tier entries dropped by the LRU byte/entry caps;
* ``corrupt_entries`` — on-disk entries that failed to load (bad JSON,
  schema-version mismatch, truncated write) and were treated as misses;
* ``expired_entries`` — entries past the cache TTL, dropped on lookup;
* ``migrated_entries`` — legacy flat disk entries moved into their
  backend shard on first lookup;
* ``invalidated_entries`` / ``invalidations`` — entries removed by an
  explicit ``invalidate(fingerprint)`` call (CLI ``cache clear --key``
  or ``POST /v1/cache/invalidate``) and the number of such calls;
* ``dedup_folds`` — requests folded onto an identical one instead of
  compiling: duplicate members of one ``compile_batch`` call plus
  concurrent ``compile`` calls that joined an in-flight compilation;
* ``batch_calls`` / ``batch_requests`` / ``batch_unique`` — batch API
  invocations, total members, and distinct fingerprints among them;
* ``parallel_compiles`` / ``serial_compiles`` — batch misses fanned out to
  the process pool vs. compiled in-process.

Gauges (floats, ``values``): ``memory_bytes`` / ``memory_entries`` —
current memory-tier footprint; ``disk_bytes_written`` — cumulative bytes
persisted to the disk tier; ``shard_entries:<id>`` / ``shard_bytes:<id>``
— per-shard disk usage, refreshed by ``DiskCache.refresh_shard_gauges``
(the ``/v1/stats`` endpoint and ``repro cache stats`` trigger a refresh).

The HTTP front-end (:mod:`repro.service.net.server`) adds
``http_requests`` / ``http_errors`` / ``http_rejected`` /
``http_timeouts`` counters and per-endpoint ``http:<path>`` counters.

Time buckets (seconds): ``fingerprint`` (cache-key derivation), ``lookup``
(tier probes), ``compile`` (cold ``caqr_compile`` runs), ``serialize`` /
``deserialize`` (report codec), ``store`` (cache writes).

The persistent worker pool (:mod:`repro.service.workers`) adds
``worker_pool_spawns`` / ``worker_respawns`` / ``worker_tasks`` /
``worker_records_shipped`` / ``worker_record_misses`` counters, and the
HTTP server adds latency *histograms* (``request_latency`` plus
per-endpoint ``request_latency:<path>``) — fixed-bucket
:class:`~repro.service.metrics.LatencyHistogram` objects fed through
:meth:`ServiceStats.observe` and exported by ``GET /v1/metrics``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.service.metrics import LatencyHistogram

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Counter/gauge/timer/histogram sink for one compile service (or many, merged)."""

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Add *seconds* to wall-time bucket *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def add_value(self, name: str, amount: float) -> None:
        """Accumulate *amount* into gauge *name*."""
        self.values[name] = self.values.get(name, 0.0) + amount

    def set_value(self, name: str, value: float) -> None:
        """Overwrite gauge *name*."""
        self.values[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record *seconds* into latency histogram *name*."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        hist.observe(seconds)

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its block into bucket *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either cache tier."""
        hits = self.counters.get("hits", 0)
        total = hits + self.counters.get("misses", 0)
        return hits / total if total else 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of requests folded onto an identical in-flight one."""
        folds = self.counters.get("dedup_folds", 0)
        total = self.counters.get("requests", 0)
        return folds / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot (the ``/v1/stats`` endpoint payload)."""
        payload: Dict[str, object] = {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "values": dict(self.values),
            "hit_rate": self.hit_rate,
            "dedup_rate": self.dedup_rate,
        }
        if self.histograms:
            payload["histograms"] = {
                name: hist.to_dict() for name, hist in self.histograms.items()
            }
        return payload

    def merge(self, other: "ServiceStats") -> None:
        """Fold *other*'s counters, gauges, timers, and histograms in."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)
        for name, value in other.values.items():
            self.add_value(name, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = LatencyHistogram(hist.buckets)
            mine.merge(hist)

    def reset(self) -> None:
        """Zero all counters, gauges, timers, and histograms."""
        self.counters.clear()
        self.timers.clear()
        self.values.clear()
        self.histograms.clear()

    def summary(self) -> str:
        """One-line report for benchmark and CLI output."""
        parts = [f"{name}={self.counters[name]}" for name in sorted(self.counters)]
        parts.extend(f"{name}={self.values[name]:g}" for name in sorted(self.values))
        parts.extend(
            f"{name}_s={self.timers[name]:.3f}" for name in sorted(self.timers)
        )
        return ", ".join(parts)
