"""Two-tier content-addressed store for serialized compile reports.

Both tiers store the *serialized* entry text (see
:mod:`repro.service.serialization`) rather than live report objects:
byte-accurate capacity accounting falls out for free, every hit hands the
caller an independent deserialized report (no aliasing of mutable
circuits between callers), and the memory and disk tiers stay trivially
interchangeable.

* :class:`MemoryCache` — in-process LRU with entry *and* byte caps.
* :class:`DiskCache` — one ``<key>.json`` per entry under a user
  directory (``CAQR_CACHE_DIR``), written atomically (temp file +
  ``os.replace``) so a crashed writer can never leave a half entry under
  the final name; loads are corruption-tolerant — unreadable, truncated,
  or stale-schema files count as misses and are deleted.
* :class:`TieredCache` — memory in front of optional disk, promoting
  disk hits into the memory tier.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from typing import Iterator, Optional

from repro.exceptions import ServiceError
from repro.service.stats import ServiceStats

__all__ = ["MemoryCache", "DiskCache", "TieredCache"]

DEFAULT_MAX_ENTRIES = 256
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

_ENTRY_SUFFIX = ".json"


class MemoryCache:
    """In-process LRU keyed by fingerprint, capped by entries and bytes."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        stats: Optional[ServiceStats] = None,
    ):
        if max_entries < 1:
            raise ServiceError("memory cache needs max_entries >= 1")
        if max_bytes < 1:
            raise ServiceError("memory cache needs max_bytes >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = stats if stats is not None else ServiceStats()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Current footprint of all stored entry texts."""
        return self._bytes

    def get(self, key: str) -> Optional[str]:
        """Return the entry text for *key* (refreshing LRU order) or None."""
        text = self._entries.get(key)
        if text is None:
            return None
        self._entries.move_to_end(key)
        self.stats.count("memory_hits")
        return text

    def put(self, key: str, text: str) -> None:
        """Insert/refresh *key*; evict LRU entries past either cap.

        Entries larger than ``max_bytes`` on their own are not cached
        (evicting the whole tier for one giant report helps nobody).
        """
        size = len(text.encode())
        if size > self.max_bytes:
            return
        if key in self._entries:
            self._bytes -= len(self._entries.pop(key).encode())
        self._entries[key] = text
        self._bytes += size
        while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted.encode())
            self.stats.count("evictions")
        self.stats.set_value("memory_entries", len(self._entries))
        self.stats.set_value("memory_bytes", self._bytes)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._bytes = 0
        self.stats.set_value("memory_entries", 0)
        self.stats.set_value("memory_bytes", 0)


class DiskCache:
    """On-disk entry store: ``<directory>/<key>.json``, atomic writes."""

    def __init__(self, directory: str, stats: Optional[ServiceStats] = None):
        self.directory = os.path.abspath(os.path.expanduser(directory))
        self.stats = stats if stats is not None else ServiceStats()
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _ENTRY_SUFFIX)

    def get(self, key: str) -> Optional[str]:
        """Return the entry text for *key*, dropping unreadable files."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        if not text.strip():
            # zero-length or whitespace file: an interrupted non-atomic
            # writer (or filesystem fault) — purge and recompile
            self._drop_corrupt(path)
            return None
        self.stats.count("disk_hits")
        return text

    def _drop_corrupt(self, path: str) -> None:
        self.stats.count("corrupt_entries")
        try:
            os.remove(path)
        except OSError:
            pass

    def invalidate(self, key: str) -> None:
        """Remove *key*'s file, counting it as corrupt (caller found it bad)."""
        self._drop_corrupt(self._path(key))

    def put(self, key: str, text: str) -> None:
        """Atomically persist *key* (temp file + rename; never half-written)."""
        path = self._path(key)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-" + key[:16] + "-", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stats.add_value("disk_bytes_written", len(text.encode()))

    def keys(self) -> Iterator[str]:
        """Yield every stored fingerprint."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if name.endswith(_ENTRY_SUFFIX) and not name.startswith("."):
                yield name[: -len(_ENTRY_SUFFIX)]

    @property
    def total_bytes(self) -> int:
        """Summed size of every stored entry file."""
        total = 0
        for key in self.keys():
            try:
                total += os.path.getsize(self._path(key))
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry file; return how many were removed."""
        removed = 0
        for key in list(self.keys()):
            try:
                os.remove(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed


class TieredCache:
    """Memory tier in front of an optional disk tier."""

    def __init__(self, memory: MemoryCache, disk: Optional[DiskCache] = None):
        self.memory = memory
        self.disk = disk

    def get(self, key: str) -> Optional[str]:
        """Probe memory then disk; promote disk hits into memory."""
        text = self.memory.get(key)
        if text is not None:
            return text
        if self.disk is not None:
            text = self.disk.get(key)
            if text is not None:
                self.memory.put(key, text)
                return text
        return None

    def invalidate(self, key: str) -> None:
        """Drop *key* from both tiers (used when an entry fails to decode)."""
        if key in self.memory._entries:
            self.memory._bytes -= len(self.memory._entries.pop(key).encode())
        if self.disk is not None:
            self.disk.invalidate(key)

    def put(self, key: str, text: str) -> None:
        """Store into both tiers."""
        self.memory.put(key, text)
        if self.disk is not None:
            self.disk.put(key, text)

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
