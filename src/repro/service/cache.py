"""Two-tier content-addressed store for serialized compile reports.

Both tiers store the *serialized* entry text (see
:mod:`repro.service.serialization`) rather than live report objects:
byte-accurate capacity accounting falls out for free, every hit hands the
caller an independent deserialized report (no aliasing of mutable
circuits between callers), and the memory and disk tiers stay trivially
interchangeable.

* :class:`MemoryCache` — in-process LRU with entry *and* byte caps, and
  an optional TTL (expired entries count as misses and are dropped).
* :class:`DiskCache` — one ``<shard>/<key>.json`` per entry under a user
  directory (``CAQR_CACHE_DIR``), **sharded by backend calibration
  digest**: every calibration snapshot gets its own subdirectory
  (requests without a backend share the :data:`DEFAULT_SHARD` one), so
  multi-device sweeps never contend on one directory and per-device
  eviction/invalidation stays a directory operation.  When drift
  banding is on (``CompileRequest.calib_bands`` /
  ``$CAQR_CALIB_BANDS``), the shard is the *banded* digest prefix
  (:func:`repro.service.fingerprint.banded_backend_digest`), so every
  in-band calibration snapshot of one device lands in one directory —
  and the fleet ring key derived from the shard stays put under drift.  Legacy flat
  ``<key>.json`` entries written before sharding are migrated into
  their shard lazily, on first lookup.  Writes are atomic (temp file +
  ``os.replace``) so a crashed writer can never leave a half entry
  under the final name; loads are corruption-tolerant — unreadable,
  truncated, stale-schema, or TTL-expired files count as misses and
  are deleted.
* :class:`TieredCache` — memory in front of optional disk, promoting
  disk hits into the memory tier.

Explicit invalidation (`invalidate`) and TTL expiry are the groundwork
for calibration-drift policies: a drifted snapshot can be retired by
fingerprint (``POST /v1/cache/invalidate``, ``repro cache clear
--key``) or aged out wholesale without touching other shards.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.stats import ServiceStats

__all__ = ["DEFAULT_SHARD", "MemoryCache", "DiskCache", "TieredCache"]

DEFAULT_MAX_ENTRIES = 256
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Shard for requests with no backend (logical-level compiles).
DEFAULT_SHARD = "nobackend"

_ENTRY_SUFFIX = ".json"


class MemoryCache:
    """In-process LRU keyed by fingerprint, capped by entries and bytes.

    ``ttl`` (seconds) ages entries out on lookup: an entry older than
    the TTL counts as a miss (``expired_entries``) and is dropped.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
        stats: Optional[ServiceStats] = None,
        ttl: Optional[float] = None,
    ):
        if max_entries < 1:
            raise ServiceError("memory cache needs max_entries >= 1")
        if max_bytes < 1:
            raise ServiceError("memory cache needs max_bytes >= 1")
        if ttl is not None and ttl <= 0:
            raise ServiceError("memory cache needs ttl > 0 (or None)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl = ttl
        self.stats = stats if stats is not None else ServiceStats()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._stamps: Dict[str, float] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Current footprint of all stored entry texts."""
        return self._bytes

    def get(self, key: str) -> Optional[str]:
        """Return the entry text for *key* (refreshing LRU order) or None."""
        text = self._entries.get(key)
        if text is None:
            return None
        if (
            self.ttl is not None
            and time.monotonic() - self._stamps.get(key, 0.0) > self.ttl
        ):
            self.invalidate(key)
            self.stats.count("expired_entries")
            return None
        self._entries.move_to_end(key)
        self.stats.count("memory_hits")
        return text

    def put(self, key: str, text: str) -> None:
        """Insert/refresh *key*; evict LRU entries past either cap.

        Entries larger than ``max_bytes`` on their own are not cached
        (evicting the whole tier for one giant report helps nobody).
        """
        size = len(text.encode())
        if size > self.max_bytes:
            return
        if key in self._entries:
            self._bytes -= len(self._entries.pop(key).encode())
        self._entries[key] = text
        self._stamps[key] = time.monotonic()
        self._bytes += size
        while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._stamps.pop(evicted_key, None)
            self._bytes -= len(evicted.encode())
            self.stats.count("evictions")
        self.stats.set_value("memory_entries", len(self._entries))
        self.stats.set_value("memory_bytes", self._bytes)

    def invalidate(self, key: str) -> bool:
        """Drop *key* if present; return whether anything was removed."""
        text = self._entries.pop(key, None)
        self._stamps.pop(key, None)
        if text is None:
            return False
        self._bytes -= len(text.encode())
        self.stats.set_value("memory_entries", len(self._entries))
        self.stats.set_value("memory_bytes", self._bytes)
        return True

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._stamps.clear()
        self._bytes = 0
        self.stats.set_value("memory_entries", 0)
        self.stats.set_value("memory_bytes", 0)


class DiskCache:
    """On-disk entry store: ``<directory>/<shard>/<key>.json``, atomic writes.

    *shard* is the backend calibration digest prefix the service derives
    per request (:meth:`~repro.service.service.CompileRequest.shard`);
    callers that don't track shards (direct tooling, tests) get
    :data:`DEFAULT_SHARD`.  Flat ``<directory>/<key>.json`` entries from
    the pre-shard layout keep working: lookups fall back to the flat
    path and migrate the file into its shard (``migrated_entries``).

    ``max_entries_per_shard`` / ``max_bytes_per_shard`` turn on per-shard
    LRU eviction: after every write the owning shard is trimmed back
    under its caps, oldest entry first (``disk_evictions``).  Recency is
    file mtime — without a TTL, ``get`` touches the file so hot entries
    survive; with a TTL, mtime doubles as the entry's age and is left
    alone, making eviction oldest-written first.  The freshly written
    entry itself is never evicted.

    ``ttl_by_bands`` maps a ``calib_bands`` value (bands per decade; the
    request's drift-banding knob) to its own TTL, overriding ``ttl`` for
    lookups carrying that band count.  The point is a per-band aging
    policy: a coarsely banded entry (fewer bands per decade — each band
    spans *more* calibration drift) keeps serving through larger drifts,
    so it should age out **faster** than an exact-digest entry, e.g.
    ``ttl_by_bands={1: 600.0, 4: 3600.0}`` with ``ttl=None`` keeping
    exact entries immortal.  Lookups with an unmapped or absent band
    count fall back to ``ttl``.
    """

    def __init__(
        self,
        directory: str,
        stats: Optional[ServiceStats] = None,
        ttl: Optional[float] = None,
        max_entries_per_shard: Optional[int] = None,
        max_bytes_per_shard: Optional[int] = None,
        ttl_by_bands: Optional[Mapping[int, float]] = None,
    ):
        if ttl is not None and ttl <= 0:
            raise ServiceError("disk cache needs ttl > 0 (or None)")
        if max_entries_per_shard is not None and max_entries_per_shard < 1:
            raise ServiceError("disk cache needs max_entries_per_shard >= 1")
        if max_bytes_per_shard is not None and max_bytes_per_shard < 1:
            raise ServiceError("disk cache needs max_bytes_per_shard >= 1")
        if ttl_by_bands is not None:
            for bands, band_ttl in ttl_by_bands.items():
                if int(bands) < 0:
                    raise ServiceError("ttl_by_bands needs band counts >= 0")
                if band_ttl <= 0:
                    raise ServiceError("ttl_by_bands needs ttl values > 0")
        self.directory = os.path.abspath(os.path.expanduser(directory))
        self.stats = stats if stats is not None else ServiceStats()
        self.ttl = ttl
        self.ttl_by_bands = (
            {int(b): float(t) for b, t in ttl_by_bands.items()}
            if ttl_by_bands
            else {}
        )
        self.max_entries_per_shard = max_entries_per_shard
        self.max_bytes_per_shard = max_bytes_per_shard
        os.makedirs(self.directory, exist_ok=True)

    def _shard_dir(self, shard: Optional[str]) -> str:
        return os.path.join(self.directory, shard or DEFAULT_SHARD)

    def _path(self, key: str, shard: Optional[str] = None) -> str:
        return os.path.join(self._shard_dir(shard), key + _ENTRY_SUFFIX)

    def _legacy_path(self, key: str) -> str:
        return os.path.join(self.directory, key + _ENTRY_SUFFIX)

    def _read(self, path: str) -> Optional[str]:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        if not text.strip():
            # zero-length or whitespace file: an interrupted non-atomic
            # writer (or filesystem fault) — purge and recompile
            self._drop_corrupt(path)
            return None
        return text

    def effective_ttl(self, bands: Optional[int] = None) -> Optional[float]:
        """The TTL governing a lookup made with *bands* drift banding."""
        if bands is not None:
            band_ttl = self.ttl_by_bands.get(int(bands))
            if band_ttl is not None:
                return band_ttl
        return self.ttl

    def _expired(self, path: str, bands: Optional[int] = None) -> bool:
        ttl = self.effective_ttl(bands)
        if ttl is None:
            return False
        try:
            return time.time() - os.path.getmtime(path) > ttl
        except OSError:
            return False

    def get(
        self,
        key: str,
        shard: Optional[str] = None,
        bands: Optional[int] = None,
    ) -> Optional[str]:
        """Return the entry text for *key*, dropping unreadable files.

        *bands* is the request's resolved ``calib_bands`` value; it
        selects the per-band TTL (see ``ttl_by_bands``) and is otherwise
        inert.
        """
        path = self._path(key, shard)
        text = self._read(path)
        if text is None:
            legacy = self._legacy_path(key)
            text = self._read(legacy)
            if text is None:
                return None
            # lazy migration of a pre-shard flat entry into its shard
            try:
                os.makedirs(self._shard_dir(shard), exist_ok=True)
                os.replace(legacy, path)
                self.stats.count("migrated_entries")
            except OSError:
                path = legacy  # best effort; serve the entry in place
        if self._expired(path, bands):
            self.stats.count("expired_entries")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        if self.effective_ttl(bands) is None and (
            self.max_entries_per_shard or self.max_bytes_per_shard
        ):
            # refresh recency so the evictor is LRU, not oldest-written;
            # with a TTL, mtime is the entry's age and must not move
            try:
                os.utime(path)
            except OSError:
                pass
        self.stats.count("disk_hits")
        return text

    def _drop_corrupt(self, path: str) -> None:
        self.stats.count("corrupt_entries")
        try:
            os.remove(path)
        except OSError:
            pass

    def drop_corrupt(self, key: str, shard: Optional[str] = None) -> None:
        """Remove *key*'s file(s) because the caller found the entry bad."""
        dropped = False
        for path in (self._path(key, shard), self._legacy_path(key)):
            if os.path.exists(path):
                self._drop_corrupt(path)
                dropped = True
        if not dropped:
            # the bad text reached the caller some other way (e.g. an
            # already-promoted memory copy); still account for it
            self.stats.count("corrupt_entries")

    def invalidate(self, key: str, shard: Optional[str] = None) -> int:
        """Explicitly remove *key*; return how many files were deleted.

        With *shard* unknown (``None``) every shard directory is probed —
        the HTTP invalidation endpoint only carries the fingerprint.
        """
        if shard is not None:
            candidates = [self._path(key, shard), self._legacy_path(key)]
        else:
            candidates = [self._legacy_path(key)] + [
                self._path(key, name) for name in self.shards()
            ]
        removed = 0
        for path in candidates:
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        if removed:
            self.stats.count("invalidated_entries", removed)
        return removed

    def put(self, key: str, text: str, shard: Optional[str] = None) -> None:
        """Atomically persist *key* (temp file + rename; never half-written)."""
        shard_dir = self._shard_dir(shard)
        os.makedirs(shard_dir, exist_ok=True)
        path = self._path(key, shard)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".tmp-" + key[:16] + "-", dir=shard_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stats.add_value("disk_bytes_written", len(text.encode()))
        if self.max_entries_per_shard or self.max_bytes_per_shard:
            self._evict_shard(shard_dir, keep=path)

    def _evict_shard(self, shard_dir: str, keep: str) -> None:
        """Trim *shard_dir* under the caps, oldest mtime first.

        *keep* (the entry just written) is exempt so a single oversized
        entry cannot evict itself into a write/evict loop.
        """
        entries = []
        total_bytes = 0
        try:
            names = os.listdir(shard_dir)
        except OSError:
            return
        for name in names:
            if name.startswith(".") or not name.endswith(_ENTRY_SUFFIX):
                continue
            path = os.path.join(shard_dir, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((info.st_mtime, path))
            total_bytes += info.st_size
        entries.sort()
        removed = 0
        for _, path in entries:
            over_entries = (
                self.max_entries_per_shard is not None
                and len(entries) - removed > self.max_entries_per_shard
            )
            over_bytes = (
                self.max_bytes_per_shard is not None
                and total_bytes > self.max_bytes_per_shard
            )
            if not (over_entries or over_bytes):
                break
            if path == keep:
                continue
            try:
                size = os.path.getsize(path)
                os.remove(path)
            except OSError:
                continue
            removed += 1
            total_bytes -= size
            self.stats.count("disk_evictions")

    def shards(self) -> List[str]:
        """Sorted shard directory names currently on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            name
            for name in names
            if not name.startswith(".")
            and os.path.isdir(os.path.join(self.directory, name))
        )

    def _iter_entries(self) -> Iterator[Tuple[Optional[str], str, str]]:
        """Yield ``(shard_or_None, key, path)`` for every stored entry
        (``None`` marks a legacy flat entry)."""
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return
        for name in names:
            if name.startswith("."):
                continue
            path = os.path.join(self.directory, name)
            if name.endswith(_ENTRY_SUFFIX) and os.path.isfile(path):
                yield None, name[: -len(_ENTRY_SUFFIX)], path
        for shard in self.shards():
            shard_dir = os.path.join(self.directory, shard)
            try:
                entries = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in entries:
                if name.endswith(_ENTRY_SUFFIX) and not name.startswith("."):
                    yield shard, name[: -len(_ENTRY_SUFFIX)], os.path.join(
                        shard_dir, name
                    )

    def keys(self) -> Iterator[str]:
        """Yield every stored fingerprint (all shards, deduplicated)."""
        seen = set()
        for _, key, _ in self._iter_entries():
            if key not in seen:
                seen.add(key)
                yield key

    def shard_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard entry/byte usage (legacy flat files under ``"legacy"``)."""
        usage: Dict[str, Dict[str, int]] = {}
        for shard, _, path in self._iter_entries():
            bucket = usage.setdefault(
                shard if shard is not None else "legacy",
                {"entries": 0, "bytes": 0},
            )
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            bucket["entries"] += 1
            bucket["bytes"] += size
        return usage

    def refresh_shard_gauges(self) -> Dict[str, Dict[str, int]]:
        """Scan the store and publish ``shard_entries:<id>`` /
        ``shard_bytes:<id>`` gauges into :attr:`stats`; gauges of shards
        that vanished since the last refresh are removed."""
        usage = self.shard_stats()
        stale = [
            name
            for name in self.stats.values
            if name.startswith(("shard_entries:", "shard_bytes:"))
            and name.split(":", 1)[1] not in usage
        ]
        for name in stale:
            del self.stats.values[name]
        for shard, info in usage.items():
            self.stats.set_value(f"shard_entries:{shard}", info["entries"])
            self.stats.set_value(f"shard_bytes:{shard}", info["bytes"])
        return usage

    @property
    def total_bytes(self) -> int:
        """Summed size of every stored entry file."""
        total = 0
        for _, _, path in self._iter_entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Remove every entry file (all shards); return how many."""
        removed = 0
        for _, _, path in list(self._iter_entries()):
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed


class TieredCache:
    """Memory tier in front of an optional disk tier."""

    def __init__(self, memory: MemoryCache, disk: Optional[DiskCache] = None):
        self.memory = memory
        self.disk = disk

    def get(
        self,
        key: str,
        shard: Optional[str] = None,
        bands: Optional[int] = None,
    ) -> Optional[str]:
        """Probe memory then disk; promote disk hits into memory.

        *bands* selects the disk tier's per-band TTL (``ttl_by_bands``).
        """
        text = self.memory.get(key)
        if text is not None:
            return text
        if self.disk is not None:
            text = self.disk.get(key, shard, bands)
            if text is not None:
                self.memory.put(key, text)
                return text
        return None

    def invalidate(self, key: str, shard: Optional[str] = None) -> bool:
        """Explicitly drop *key* from both tiers; True if anything went."""
        removed = self.memory.invalidate(key)
        if self.disk is not None:
            removed = bool(self.disk.invalidate(key, shard)) or removed
        return removed

    def drop_corrupt(self, key: str, shard: Optional[str] = None) -> None:
        """Drop *key* from both tiers because its entry failed to decode."""
        self.memory.invalidate(key)
        if self.disk is not None:
            self.disk.drop_corrupt(key, shard)
        else:
            self.memory.stats.count("corrupt_entries")

    def put(self, key: str, text: str, shard: Optional[str] = None) -> None:
        """Store into both tiers."""
        self.memory.put(key, text)
        if self.disk is not None:
            self.disk.put(key, text, shard)

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
