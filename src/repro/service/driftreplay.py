"""Band-width validation: replay a calibration drift series through the cache.

The drift-banding contract (``docs/SERVICE.md``) has two halves:

1. **Banding lifts the hit rate** — snapshots that differ only by in-band
   drift must share cache entries, where exact digests would miss on
   every step.
2. **Banding never changes compile decisions** — a banded warm hit must
   serve the same circuit a fresh compile of the drifted snapshot would
   produce.

:func:`replay_drift` measures both: it walks a seeded
:class:`~repro.hardware.drift.DriftSimulator` series, sends every
snapshot through a *banded* :class:`~repro.service.CompileService` and an
*exact-digest* one, and compares the served circuit against the exact
lane's fresh compile step by step.  It also tracks routing-quality
decay: the analytic ESP of the served (possibly band-stale) circuit vs.
the freshly compiled one, both scored under the step's *true*
calibration — the price paid for serving a plan placed against an older
snapshot.

The CI smoke gate (``scripts/drift_replay.py``) and the nightly
benchmark (``benchmarks/bench_drift_replay.py``) assert on the
:class:`DriftReplayResult` this returns.  Uplift is Laplace-smoothed
(``(banded_hits + 1) / (exact_hits + 1)``) because the exact lane's hit
count on a drifting series is legitimately zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import ServiceError
from repro.hardware.backends import Backend
from repro.hardware.drift import drift_series
from repro.service.fingerprint import circuit_digest, resolve_calib_bands
from repro.service.service import CompileRequest, CompileService

__all__ = ["DriftReplayResult", "replay_drift"]


@dataclass
class DriftReplayResult:
    """What one drift replay observed, step by step and in aggregate.

    Attributes:
        steps / calib_bands / volatility / seed: the replay configuration
            (bands as resolved).
        banded_hits / banded_misses: cache outcomes of the banded lane
            (an in-flight join would count as a hit; single-threaded
            replay never produces one).
        exact_hits / exact_misses: same for the exact-digest lane.
        decision_changes: steps where the banded lane served a circuit
            that differs from the exact lane's fresh compile of the same
            snapshot — the "banding changed a compile decision" count the
            smoke gate pins to zero.
        banded_shards / exact_shards: distinct cache shards (= fleet ring
            keys) the series touched per lane; banding keeps this small,
            which is what stops in-band drift re-homing fleet keys.
        esp_gaps: per-step ``esp(fresh) - esp(served)`` under the step's
            true calibration (empty when ESP is unavailable, e.g. no
            hardware mapping).  Zero whenever the decision matched.
    """

    steps: int
    calib_bands: Optional[int]
    volatility: float
    seed: int
    banded_hits: int = 0
    banded_misses: int = 0
    exact_hits: int = 0
    exact_misses: int = 0
    decision_changes: int = 0
    banded_shards: int = 0
    exact_shards: int = 0
    esp_gaps: List[float] = field(default_factory=list)

    @property
    def banded_hit_rate(self) -> float:
        total = self.banded_hits + self.banded_misses
        return self.banded_hits / total if total else 0.0

    @property
    def exact_hit_rate(self) -> float:
        total = self.exact_hits + self.exact_misses
        return self.exact_hits / total if total else 0.0

    @property
    def hit_uplift(self) -> float:
        """Laplace-smoothed banded/exact hit uplift (exact is usually 0)."""
        return (self.banded_hits + 1) / (self.exact_hits + 1)

    @property
    def mean_esp_gap(self) -> float:
        return sum(self.esp_gaps) / len(self.esp_gaps) if self.esp_gaps else 0.0

    @property
    def max_esp_gap(self) -> float:
        return max(self.esp_gaps) if self.esp_gaps else 0.0

    def summary(self) -> str:
        """One-line report for CLI / benchmark output."""
        return (
            f"steps={self.steps} bands={self.calib_bands or 0} "
            f"banded_hits={self.banded_hits}/{self.banded_hits + self.banded_misses} "
            f"exact_hits={self.exact_hits}/{self.exact_hits + self.exact_misses} "
            f"uplift={self.hit_uplift:.1f}x "
            f"decision_changes={self.decision_changes} "
            f"shards banded={self.banded_shards} exact={self.exact_shards} "
            f"esp_gap mean={self.mean_esp_gap:.3g} max={self.max_esp_gap:.3g}"
        )


def _esp_or_none(circuit: QuantumCircuit, backend: Backend) -> Optional[float]:
    from repro.sim.metrics import estimated_success_probability

    try:
        return estimated_success_probability(circuit, backend.calibration)
    except Exception:
        # logical-level circuits (no backend mapping) have no ESP
        return None


def replay_drift(
    circuit: QuantumCircuit,
    backend: Backend,
    steps: int = 12,
    volatility: float = 0.01,
    calib_bands: Optional[int] = 2,
    seed: int = 7,
    mode: str = "min_depth",
    qubit_limit: Optional[int] = None,
    compile_seed: int = 11,
) -> DriftReplayResult:
    """Replay a drift series through banded and exact compile caches.

    Both lanes run in-process with memory-only caches so the result is a
    pure function of the arguments.  The banded lane resolves
    *calib_bands* up front (``None`` defers to ``$CAQR_CALIB_BANDS``) and
    must end up with banding actually on — replaying banding-off against
    banding-off would vacuously pass the decision gate.
    """
    bands = resolve_calib_bands(calib_bands)
    if not bands:
        raise ServiceError("replay_drift needs calib_bands >= 1 for the banded lane")
    snapshots = drift_series(backend, steps, volatility=volatility, seed=seed)
    banded_lane = CompileService()
    exact_lane = CompileService()
    result = DriftReplayResult(
        steps=steps, calib_bands=bands, volatility=volatility, seed=seed
    )
    banded_shards = set()
    exact_shards = set()
    for snapshot in snapshots:
        def request(lane_bands: int) -> CompileRequest:
            return CompileRequest(
                target=circuit,
                backend=snapshot,
                mode=mode,
                qubit_limit=qubit_limit,
                seed=compile_seed,
                calib_bands=lane_bands,
            )

        banded_request = request(bands)
        exact_request = request(0)
        banded_shards.add(banded_request.shard())
        exact_shards.add(exact_request.shard())
        banded_report, _, banded_status = banded_lane.compile_classified(
            banded_request
        )
        exact_report, _, exact_status = exact_lane.compile_classified(
            exact_request
        )
        if banded_status == "miss":
            result.banded_misses += 1
        else:
            result.banded_hits += 1
        if exact_status == "miss":
            result.exact_misses += 1
        else:
            result.exact_hits += 1
        # the exact lane misses every drifted step, so its report is
        # always a fresh compile of *this* snapshot: the decision reference
        if circuit_digest(banded_report.circuit) != circuit_digest(
            exact_report.circuit
        ):
            result.decision_changes += 1
        served_esp = _esp_or_none(banded_report.circuit, snapshot)
        fresh_esp = _esp_or_none(exact_report.circuit, snapshot)
        if served_esp is not None and fresh_esp is not None:
            result.esp_gaps.append(fresh_esp - served_esp)
    result.banded_shards = len(banded_shards)
    result.exact_shards = len(exact_shards)
    return result
