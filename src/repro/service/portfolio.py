"""Portfolio compilation: race every engine, keep the best result.

CaQR's engines embody different heuristics — QS-CaQR's depth-greedy pair
selection, its duration objective, narrow-lookahead variants, SR-CaQR's
trial seeds, the commuting-gate pipeline's degree/lifetime sweeps — and
none dominates on every circuit.  :class:`PortfolioCompileService` runs a
deterministic roster of them concurrently over the repo's process-pool
idiom, adds the **exact tier** (:class:`~repro.core.exact.ExactReuse`,
gated on circuit size and a node budget) when the circuit is small enough
to solve to optimality, and declares a winner under a user-declared
objective:

* ``"qubits"`` — fewest active qubits (ties: depth);
* ``"depth"`` — smallest depth (ties: qubits);
* ``"est_error"`` — lowest estimated error ``1 - ESP`` against the
  backend calibration (requires a backend).

**Determinism.**  The winner is *not* the first strategy to finish — a
wall-clock race would make the result depend on worker count and
machine load.  Every strategy runs to completion (strategies are pure
functions of the request), and the winner is the minimum of a fully
deterministic objective key, so ``workers=1`` and ``workers=N`` — and a
:class:`~repro.service.net.client.RemoteCompileService` on the other
side of a socket — return bit-identical circuits.  Strategy *timings*
are recorded for observability but excluded from that contract, exactly
like the route-stats timers.

**Error channel.**  A strategy raising inside the pool must not sink
the portfolio or silently vanish from the race: the worker catches the
exception and returns it as data, the report's ``strategy_errors`` maps
strategy name to the message, and ``portfolio_errors:<name>`` counts it
in :class:`~repro.service.stats.ServiceStats`.  Only if *every*
strategy fails does the portfolio raise.

**Self-tuning.**  Per-strategy win counts live in ``ServiceStats``
(``portfolio_wins:<name>`` / ``portfolio_compiles``); historically
winning strategies are submitted to the pool first so their results are
available earliest.  Scheduling order never changes the winner — only
how soon the pool converges — so self-tuning cannot break determinism.

See ``docs/PORTFOLIO.md`` for the full contract and
``examples/portfolio_compile.py`` for a tour.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.analysis.metrics import collect_metrics
from repro.circuit.circuit import QuantumCircuit
from repro.compile_api import CompileReport, _all_to_all, caqr_compile
from repro.core.chains import ChainReuse
from repro.core.exact import ExactReuse
from repro.core.profile import ReuseEvalStats
from repro.core.qs_caqr import QSCaQR
from repro.core.sr_caqr import SRCaQR
from repro.core.sr_commuting import SRCaQRCommuting
from repro.core.tradeoff import (
    TradeoffPoint,
    assess_reuse_benefit,
    select_point,
    sweep_commuting,
    sweep_regular,
)
from repro.core.transform import apply_reuse_chain
from repro.exceptions import ReuseError
from repro.hardware.backends import Backend
from repro.service.service import CompileRequest
from repro.service.stats import ServiceStats
from repro.service.workers import WorkerPool, resolve_workers_mode
from repro.sim.metrics import estimated_success_probability
from repro.transpiler.pipeline import transpile
from repro.transpiler.stats import RouteStats

__all__ = [
    "OBJECTIVES",
    "StrategySpec",
    "StrategyOutcome",
    "PortfolioCompileService",
    "default_portfolio_service",
    "peek_default_portfolio_service",
    "reset_default_portfolio_service",
    "set_default_portfolio_state_path",
]

#: The objectives a portfolio compile may optimise.
OBJECTIVES = ("qubits", "depth", "est_error")

#: Default node budget of the exact tier (anytime: past this many search
#: states the oracle reports best-so-far with ``optimal=False``).
DEFAULT_EXACT_MAX_NODES = 200_000

#: Default width gate of the exact tier: circuits wider than this skip
#: the oracle entirely (branch-and-bound cost grows super-exponentially
#: with width; the greedy strategies still race).
DEFAULT_EXACT_MAX_QUBITS = 10


@dataclass(frozen=True)
class StrategySpec:
    """One named entry of the portfolio roster.

    ``kind`` selects the engine family, ``params`` its knob overrides:

    * ``"caqr"`` — the canonical :func:`~repro.compile_api.caqr_compile`
      path (mode may be overridden via ``params["mode"]``);
    * ``"qs"`` — a QS-CaQR sweep variant (``objective``,
      ``lookahead_width``);
    * ``"sr"`` — an SR-CaQR router variant (``trials``, ``objective``);
      requires a backend;
    * ``"commuting"`` — a commuting-pipeline sweep variant
      (``candidate_evaluation``, ``strategy``); graph targets only;
    * ``"chain"`` — the beam-searched chain engine
      (:class:`~repro.core.chains.ChainReuse`; ``dual``, ``beam_width``,
      ``objective``); circuit targets only;
    * ``"exact"`` — the branch-and-bound oracle.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(name: str, kind: str, **params: Any) -> "StrategySpec":
        return StrategySpec(name, kind, tuple(sorted(params.items())))

    def options(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class StrategyOutcome:
    """What one strategy brought back from the race (or how it died)."""

    name: str
    elapsed: float = 0.0
    error: Optional[str] = None
    report: Optional[CompileReport] = None
    circuit: Optional[QuantumCircuit] = None
    route_stats: Optional[RouteStats] = None
    exact_qubits: Optional[int] = None
    exact_optimal: Optional[bool] = None
    chain_stats: Optional[ReuseEvalStats] = None


# -- strategy execution (module-level: runs inside pool workers) ---------------


def _sweep_points(
    results, backend: Optional[Backend], seed: int
) -> List[TradeoffPoint]:
    points = []
    for result in results:
        point = TradeoffPoint(
            qubits=result.qubits,
            logical_depth=result.depth,
            logical_duration_dt=result.duration_dt,
            circuit=result.circuit,
        )
        if backend is not None:
            compiled = transpile(
                point.circuit, backend, optimization_level=3, seed=seed
            )
            point.compiled_depth = compiled.depth
            point.compiled_duration_dt = compiled.duration_dt
            point.swap_count = compiled.swap_count
            point.two_qubit_count = compiled.two_qubit_count
        points.append(point)
    return points


def _pick_budget_point(points: List[TradeoffPoint], qubit_limit: int):
    """Mirror ``reduce_to``: the first sweep point inside the budget."""
    eligible = [p for p in points if p.qubits <= qubit_limit]
    if not eligible:
        raise ReuseError(
            f"cannot compile to {qubit_limit} qubits "
            f"(sweep floor is {min(p.qubits for p in points)})"
        )
    return max(eligible, key=lambda p: p.qubits)


def _finalize_logical(
    logical: QuantumCircuit, backend: Optional[Backend], seed: int
) -> QuantumCircuit:
    if backend is None:
        return logical
    return transpile(logical, backend, optimization_level=3, seed=seed).circuit


def _run_caqr_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    report = caqr_compile(
        request.target,
        backend=request.backend,
        mode=options.get("mode", request.mode),
        qubit_limit=request.qubit_limit,
        reset_style=request.reset_style,
        seed=request.seed,
        auto_commuting=request.auto_commuting,
        incremental=request.incremental,
        parallel=False,
        cache=None,
    )
    return StrategyOutcome(
        name=spec.name,
        report=report,
        circuit=report.circuit,
        route_stats=report.route_stats,
    )


def _run_qs_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    compiler = QSCaQR(
        objective=options.get("objective", "depth"),
        reset_style=request.reset_style,
        lookahead_width=options.get("lookahead_width"),
        incremental=request.incremental,
        parallel=False,
    )
    results = compiler.sweep(request.target)
    if request.mode == "qubit_budget":
        points = _sweep_points(results, None, request.seed)
        point = _pick_budget_point(points, request.qubit_limit)
        circuit = _finalize_logical(point.circuit, request.backend, request.seed)
    else:
        points = _sweep_points(results, request.backend, request.seed)
        point = select_point(points, request.mode)
        # sweep points keep logical circuits (the greedy path's contract);
        # only min_swap reports promise hardware-mapped output
        circuit = (
            _finalize_logical(point.circuit, request.backend, request.seed)
            if request.mode == "min_swap"
            else point.circuit
        )
    return StrategyOutcome(name=spec.name, circuit=circuit)


def _sr_lane_seed_base(request, lane: str) -> int:
    """Per-lane hint-seed anchor, derived from the request fingerprint.

    Each SR lane explores a distinct placement-seed stream (instead of
    varying only trial counts/objectives), yet stays a pure function of
    (request, lane name) — so serial and pooled races, and every replica
    of a fingerprint, derive identical seeds.
    """
    digest = hashlib.sha256(
        f"{request.fingerprint()}:{lane}".encode()
    ).hexdigest()
    return int(digest[:8], 16)


def _run_sr_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    seed_base = _sr_lane_seed_base(request, spec.name)
    if isinstance(request.target, nx.Graph) or extracted is not None:
        graph, gamma, beta = (
            extracted
            if extracted is not None
            else (request.target, None, None)
        )
        kwargs = {}
        if gamma is not None:
            kwargs = {"gamma": gamma, "beta": beta}
        router = SRCaQRCommuting(
            request.backend,
            reset_style=request.reset_style,
            incremental=request.incremental,
            parallel=False,
            **kwargs,
        )
        result = router.run(
            graph,
            qubit_limit=request.qubit_limit,
            trials=options.get("trials", 3),
            seed_base=seed_base,
        )
    else:
        router = SRCaQR(
            request.backend,
            reset_style=request.reset_style,
            incremental=request.incremental,
            parallel=False,
        )
        result = router.run(
            request.target,
            trials=options.get("trials", 3),
            objective=options.get("objective", "swaps"),
            seed_base=seed_base,
        )
    return StrategyOutcome(
        name=spec.name, circuit=result.circuit, route_stats=router.stats
    )


def _run_commuting_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    graph, gamma, beta = (
        extracted if extracted is not None else (request.target, None, None)
    )
    points = sweep_commuting(
        graph,
        backend=None if request.mode == "qubit_budget" else request.backend,
        reset_style=request.reset_style,
        seed=request.seed,
        candidate_evaluation=options.get("candidate_evaluation", "schedule"),
        strategy=options.get("strategy", "greedy"),
        gamma=gamma,
        beta=beta,
        parallel=False,
    )
    if request.mode == "qubit_budget":
        point = _pick_budget_point(points, request.qubit_limit)
        circuit = _finalize_logical(point.circuit, request.backend, request.seed)
    else:
        point = select_point(points, request.mode)
        circuit = (
            _finalize_logical(point.circuit, request.backend, request.seed)
            if request.mode == "min_swap"
            else point.circuit
        )
    return StrategyOutcome(name=spec.name, circuit=circuit)


def _run_chain_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    if isinstance(request.target, nx.Graph):
        raise ReuseError(
            "chain lane needs a QuantumCircuit target "
            "(the commuting lanes cover graph inputs)"
        )
    chain_stats = ReuseEvalStats()
    engine = ChainReuse(
        objective=options.get(
            "objective", "depth" if request.mode == "min_depth" else "qubits"
        ),
        reset_style=request.reset_style,
        beam_width=options.get("beam_width", 8),
        register_budget=(
            request.qubit_limit if request.mode == "qubit_budget" else None
        ),
        dual_register=bool(options.get("dual", False)),
        stats=chain_stats,
    )
    result = engine.run(request.target)
    if request.mode == "qubit_budget":
        if not result.feasible:
            raise ReuseError(
                f"chain lane cannot reach {request.qubit_limit} qubits "
                f"(reached {result.qubits})"
            )
        circuit = _finalize_logical(result.circuit, request.backend, request.seed)
    elif request.mode == "min_swap":
        circuit = _finalize_logical(result.circuit, request.backend, request.seed)
    else:
        # sweep modes report logical circuits, matching the greedy contract
        circuit = result.circuit
    return StrategyOutcome(name=spec.name, circuit=circuit, chain_stats=chain_stats)


def _run_exact_strategy(spec, request, extracted) -> StrategyOutcome:
    options = spec.options()
    solver = ExactReuse(
        reset_style=request.reset_style,
        max_nodes=options.get("max_nodes", DEFAULT_EXACT_MAX_NODES),
    )
    result = solver.run(request.target)
    if request.mode == "qubit_budget":
        width = request.target.num_qubits
        if result.qubits > request.qubit_limit:
            raise ReuseError(
                f"exact tier cannot reach {request.qubit_limit} qubits "
                f"(optimum is {result.qubits})"
                if result.optimal
                else f"exact tier hit its budget above {request.qubit_limit} qubits"
            )
        prefix = result.pairs[: max(0, width - request.qubit_limit)]
        logical = apply_reuse_chain(
            request.target, prefix, reset_style=request.reset_style
        )
        circuit = _finalize_logical(logical, request.backend, request.seed)
    elif request.mode == "min_swap":
        circuit = _finalize_logical(result.circuit, request.backend, request.seed)
    else:
        # sweep modes report logical circuits even under a backend —
        # match the greedy contract so metrics stay comparable
        circuit = result.circuit
    return StrategyOutcome(
        name=spec.name,
        circuit=circuit,
        exact_qubits=result.qubits,
        exact_optimal=result.optimal,
    )


_STRATEGY_RUNNERS = {
    "caqr": _run_caqr_strategy,
    "qs": _run_qs_strategy,
    "sr": _run_sr_strategy,
    "commuting": _run_commuting_strategy,
    "chain": _run_chain_strategy,
    "exact": _run_exact_strategy,
}


def _run_strategy_worker(payload) -> StrategyOutcome:
    """Pool worker: run one strategy, never raise.

    A failing strategy is *data* — the per-strategy error channel the
    poisoned-strategy test pins — so the portfolio loses one lane, not
    the race.  Engines run with ``parallel=False`` in here (workers must
    not nest process pools), and the serial path calls this very
    function, so both paths compute identical results.
    """
    spec, request, extracted = payload
    runner = _STRATEGY_RUNNERS.get(spec.kind)
    start = time.perf_counter()
    if runner is None:
        return StrategyOutcome(
            name=spec.name,
            error=f"ReuseError: unknown strategy kind {spec.kind!r}",
        )
    try:
        outcome = runner(spec, request, extracted)
    except Exception as exc:
        return StrategyOutcome(
            name=spec.name,
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    outcome.elapsed = time.perf_counter() - start
    return outcome


# -- the service ---------------------------------------------------------------


class PortfolioCompileService:
    """Race the engine roster; return the objective-best report.

    Args:
        max_workers: process-pool cap for the strategy fan-out (default:
            the repo-wide ``min(cpu_count, 8)`` idiom).
        stats: optional shared :class:`ServiceStats` sink for win-rate /
            error counters and per-strategy timers.
        exact_max_nodes: anytime node budget handed to the exact tier.
        exact_max_qubits: circuits wider than this skip the exact tier.
        strategies: explicit roster override (a list of
            :class:`StrategySpec`); ``None`` builds the default roster
            per request.  The override replaces the roster wholesale —
            tests use it to inject poisoned strategies.
        workers_mode: ``"persistent"`` (default; ``$CAQR_WORKERS_MODE``)
            races lanes over a long-lived
            :class:`~repro.service.workers.WorkerPool` with the request
            shipped once per worker; ``"ephemeral"`` keeps the per-race
            pool.
        state_path: optional JSON file persisting the win-rate counters
            (the self-tuned submission order) across restarts — loaded
            on construction, rewritten atomically after every race.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        stats: Optional[ServiceStats] = None,
        exact_max_nodes: int = DEFAULT_EXACT_MAX_NODES,
        exact_max_qubits: int = DEFAULT_EXACT_MAX_QUBITS,
        strategies: Optional[List[StrategySpec]] = None,
        workers_mode: Optional[str] = None,
        state_path: Optional[str] = None,
    ):
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.stats = stats if stats is not None else ServiceStats()
        self.exact_max_nodes = exact_max_nodes
        self.exact_max_qubits = exact_max_qubits
        self.strategies = strategies
        self.workers_mode = resolve_workers_mode(workers_mode)
        self.state_path = state_path
        self._worker_pool: Optional[WorkerPool] = None
        self._pool_lock = Lock()
        if state_path:
            self._load_state()

    def worker_pool(self) -> WorkerPool:
        """The lazily spawned persistent race pool (shared stats sink)."""
        with self._pool_lock:
            if self._worker_pool is None:
                self._worker_pool = WorkerPool(self.max_workers, stats=self.stats)
            return self._worker_pool

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        with self._pool_lock:
            if self._worker_pool is not None:
                self._worker_pool.shutdown()
                self._worker_pool = None

    # -- win-rate persistence --------------------------------------------------

    _STATE_SCHEMA = 1

    @staticmethod
    def _is_state_counter(name: str) -> bool:
        return name == "portfolio_compiles" or name.startswith("portfolio_wins:")

    def _load_state(self) -> None:
        """Merge persisted win-rate counters into the stats sink.

        A missing, unreadable, or schema-mismatched file is a clean
        cold start, never an error — state is an optimisation hint.
        """
        try:
            with open(self.state_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self._STATE_SCHEMA
        ):
            return
        counters = payload.get("counters")
        if not isinstance(counters, dict):
            return
        for name, value in counters.items():
            if self._is_state_counter(name) and isinstance(value, int):
                self.stats.count(name, value)
        self.stats.count("portfolio_state_loads")

    def _save_state(self) -> None:
        """Atomically persist the win-rate counters (best-effort)."""
        if not self.state_path:
            return
        counters = {
            name: value
            for name, value in self.stats.counters.items()
            if self._is_state_counter(name)
        }
        payload = {"schema": self._STATE_SCHEMA, "counters": counters}
        directory = os.path.dirname(os.path.abspath(self.state_path))
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".state-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp_path, self.state_path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.count("portfolio_state_errors")

    # -- roster ----------------------------------------------------------------

    def roster(
        self, request: CompileRequest, extracted=None
    ) -> List[StrategySpec]:
        """The deterministic strategy roster for *request*.

        Depends only on request content (target kind/width, backend,
        mode), never on machine state, so every replica of a request —
        local, pooled, or remote — races the same lanes.
        """
        if self.strategies is not None:
            return list(self.strategies)
        commuting = isinstance(request.target, nx.Graph) or extracted is not None
        specs: List[StrategySpec] = [StrategySpec.make("greedy", "caqr")]
        if commuting:
            specs.append(
                StrategySpec.make(
                    "commuting-degree", "commuting", candidate_evaluation="degree"
                )
            )
            specs.append(
                StrategySpec.make(
                    "commuting-lifetime", "commuting", strategy="lifetime"
                )
            )
        else:
            specs.append(StrategySpec.make("qs-duration", "qs", objective="duration"))
            specs.append(StrategySpec.make("qs-narrow", "qs", lookahead_width=1))
            specs.append(StrategySpec.make("chain", "chain"))
            if request.backend is not None and _all_to_all(request.backend):
                # trapped-ion regime: also race the dual-register cost model
                specs.append(StrategySpec.make("chain-dual", "chain", dual=True))
            if request.target.num_qubits <= self.exact_max_qubits:
                specs.append(
                    StrategySpec.make(
                        "exact", "exact", max_nodes=self.exact_max_nodes
                    )
                )
        if request.backend is not None and request.mode == "min_swap":
            specs.append(StrategySpec.make("sr-trials-5", "sr", trials=5))
            if not commuting:
                specs.append(StrategySpec.make("sr-esp", "sr", objective="esp"))
        return specs

    def _win_rate(self, name: str) -> float:
        total = self.stats.counters.get("portfolio_compiles", 0)
        if not total:
            return 0.0
        return self.stats.counters.get(f"portfolio_wins:{name}", 0) / total

    # -- the race --------------------------------------------------------------

    def compile(
        self,
        target: Union[QuantumCircuit, nx.Graph],
        backend: Optional[Backend] = None,
        mode: str = "min_depth",
        qubit_limit: Optional[int] = None,
        reset_style: str = "cif",
        seed: int = 11,
        auto_commuting: bool = True,
        incremental: bool = True,
        parallel: bool = True,
        objective: str = "qubits",
    ) -> CompileReport:
        """Portfolio ``caqr_compile``: race the roster, keep the best.

        Same signature as the single-strategy path plus *objective*; the
        returned report carries the winner's circuit and metrics along
        with the portfolio fields (``strategy``, ``strategy_timings``,
        ``strategy_errors``, ``optimality_gap``, ``exact_optimal``).
        """
        if objective not in OBJECTIVES:
            raise ReuseError(
                f"unknown portfolio objective {objective!r} "
                f"(choose from {', '.join(OBJECTIVES)})"
            )
        if objective == "est_error" and backend is None:
            raise ReuseError("est_error objective needs a backend")
        if mode == "qubit_budget" and qubit_limit is None:
            raise ReuseError("qubit_budget mode needs qubit_limit")
        if mode == "min_swap" and backend is None:
            raise ReuseError("min_swap mode needs a backend")
        request = CompileRequest(
            target=target,
            backend=backend,
            mode=mode,
            qubit_limit=qubit_limit,
            reset_style=reset_style,
            seed=seed,
            auto_commuting=auto_commuting,
            incremental=incremental,
            parallel=parallel,
        )
        extracted = self._extract_commuting(request)
        specs = self.roster(request, extracted)
        if not specs:
            raise ReuseError("empty portfolio roster")
        ordered = sorted(
            specs, key=lambda spec: (-self._win_rate(spec.name), spec.name)
        )
        outcomes = self._run_all(ordered, request, extracted, parallel)
        return self._select(request, extracted, outcomes, objective)

    @staticmethod
    def _extract_commuting(request: CompileRequest):
        """Mirror ``caqr_compile``'s QAOA recognition for the roster.

        Returns ``(graph, gamma, beta)`` when the circuit target is a
        uniform-angle QAOA circuit (the commuting variants then sweep
        the graph), else ``None``.  Graph targets need no extraction.
        """
        if not request.auto_commuting:
            return None
        if isinstance(request.target, nx.Graph):
            return None
        from repro.core.structure import extract_commuting_structure

        structure = extract_commuting_structure(request.target)
        if (
            structure is not None
            and structure.uniform_gamma() is not None
            and structure.uniform_beta() is not None
        ):
            return (
                structure.graph,
                structure.uniform_gamma(),
                structure.uniform_beta(),
            )
        return None

    def _run_all(
        self,
        specs: List[StrategySpec],
        request: CompileRequest,
        extracted,
        parallel: bool,
    ) -> List[StrategyOutcome]:
        payloads = [(spec, request, extracted) for spec in specs]
        workers = min(self.max_workers, len(payloads))
        if parallel and workers > 1 and len(payloads) > 1:
            self.stats.count("portfolio_parallel_races")
            with self.stats.timed("portfolio_race"):
                if self.workers_mode == "persistent":
                    # one fingerprint for the whole race: every lane
                    # shares the request, so warm workers decode it once
                    fingerprint = request.fingerprint()
                    tasks = [
                        ("strategy", fingerprint, request, spec) for spec in specs
                    ]
                    outcomes = self.worker_pool().run(tasks)
                else:
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        outcomes = list(pool.map(_run_strategy_worker, payloads))
        else:
            self.stats.count("portfolio_serial_races")
            with self.stats.timed("portfolio_race"):
                outcomes = [_run_strategy_worker(p) for p in payloads]
        return outcomes

    # -- winner selection ------------------------------------------------------

    def _select(
        self,
        request: CompileRequest,
        extracted,
        outcomes: List[StrategyOutcome],
        objective: str,
    ) -> CompileReport:
        stats = self.stats
        stats.count("portfolio_compiles")
        calibration = (
            request.backend.calibration if request.backend is not None else None
        )
        errors: Dict[str, str] = {}
        timings: Dict[str, float] = {}
        candidates: List[Tuple[tuple, StrategyOutcome, Any]] = []
        for outcome in outcomes:
            timings[outcome.name] = outcome.elapsed
            stats.add_time(f"portfolio_strategy:{outcome.name}", outcome.elapsed)
            if outcome.error is not None or outcome.circuit is None:
                errors[outcome.name] = outcome.error or "strategy returned nothing"
                stats.count(f"portfolio_errors:{outcome.name}")
                continue
            metrics = collect_metrics(outcome.circuit, calibration)
            if (
                request.mode == "qubit_budget"
                and metrics.qubits_used > request.qubit_limit
            ):
                errors[outcome.name] = (
                    f"result uses {metrics.qubits_used} qubits, "
                    f"budget is {request.qubit_limit}"
                )
                stats.count(f"portfolio_errors:{outcome.name}")
                continue
            key = self._objective_key(outcome, metrics, objective, request)
            candidates.append((key, outcome, metrics))
        if not candidates:
            detail = "; ".join(f"{name}: {msg}" for name, msg in sorted(errors.items()))
            raise ReuseError(f"every portfolio strategy failed ({detail})")
        candidates.sort(key=lambda entry: entry[0])
        _, winner, winner_metrics = candidates[0]
        stats.count(f"portfolio_wins:{winner.name}")

        exact = next((o for o in outcomes if o.exact_qubits is not None), None)
        optimality_gap: Optional[int] = None
        exact_optimal: Optional[bool] = None
        if exact is not None:
            exact_optimal = exact.exact_optimal
            stats.count(
                "portfolio_oracle_optimal"
                if exact.exact_optimal
                else "portfolio_oracle_budget_cut"
            )
            if exact.exact_optimal:
                optimality_gap = winner_metrics.qubits_used - exact.exact_qubits

        report = self._assemble_report(
            request, extracted, winner, winner_metrics, outcomes
        )
        if report.chain_stats is None:
            # chain-engine observability survives even when another lane
            # wins the race: the first chain lane's counters ride along
            chain = next((o for o in outcomes if o.chain_stats is not None), None)
            if chain is not None:
                report.chain_stats = chain.chain_stats
        report.strategy = winner.name
        report.strategy_timings = timings
        report.strategy_errors = errors
        report.optimality_gap = optimality_gap
        report.exact_optimal = exact_optimal
        self._save_state()
        return report

    def _objective_key(
        self,
        outcome: StrategyOutcome,
        metrics,
        objective: str,
        request: CompileRequest,
    ) -> tuple:
        if objective == "qubits":
            head: tuple = (metrics.qubits_used, metrics.depth)
        elif objective == "depth":
            head = (metrics.depth, metrics.qubits_used)
        else:  # est_error
            error = 1.0 - estimated_success_probability(
                outcome.circuit, request.backend.calibration
            )
            head = (error, metrics.qubits_used, metrics.depth)
        # the strategy name is the final tie-break: fully deterministic,
        # independent of completion order and worker count
        return head + (outcome.name,)

    def _assemble_report(
        self,
        request: CompileRequest,
        extracted,
        winner: StrategyOutcome,
        winner_metrics,
        outcomes: List[StrategyOutcome],
    ) -> CompileReport:
        if winner.report is not None:
            return winner.report
        # non-canonical winner: rebuild the ancillary fields.  The
        # benefit verdict and baseline metrics are properties of the
        # *input*, so borrow them from the canonical strategy's report
        # when it survived, and recompute only as a fallback.
        canonical = next(
            (o for o in outcomes if o.report is not None), None
        )
        if canonical is not None:
            baseline = canonical.report.baseline_metrics
            beneficial = canonical.report.reuse_beneficial
        else:
            baseline, beneficial = self._ancillary(request, extracted)
        if isinstance(request.target, nx.Graph):
            original_width = request.target.number_of_nodes()
        else:
            original_width = request.target.num_qubits
        return CompileReport(
            circuit=winner.circuit,
            mode=request.mode,
            metrics=winner_metrics,
            baseline_metrics=baseline,
            reuse_beneficial=beneficial,
            qubit_saving=1.0 - winner_metrics.qubits_used / original_width,
            route_stats=winner.route_stats,
        )

    def _ancillary(self, request: CompileRequest, extracted):
        """Recompute baseline metrics + benefit verdict from scratch
        (only reached when the canonical greedy strategy itself died)."""
        if isinstance(request.target, nx.Graph) or extracted is not None:
            graph, gamma, beta = (
                extracted
                if extracted is not None
                else (request.target, None, None)
            )
            points = sweep_commuting(
                graph,
                backend=None,
                reset_style=request.reset_style,
                seed=request.seed,
                gamma=gamma,
                beta=beta,
                parallel=False,
            )
            baseline_circuit = None
            if request.backend is not None:
                from repro.workloads.qaoa import qaoa_maxcut_circuit

                if gamma is not None:
                    baseline_circuit = qaoa_maxcut_circuit(
                        graph, gammas=[gamma], betas=[beta]
                    )
                else:
                    baseline_circuit = qaoa_maxcut_circuit(graph)
        else:
            points = sweep_regular(
                request.target,
                backend=None,
                reset_style=request.reset_style,
                seed=request.seed,
                incremental=request.incremental,
                parallel=False,
            )
            baseline_circuit = (
                request.target if request.backend is not None else None
            )
        baseline = None
        if baseline_circuit is not None:
            compiled = transpile(
                baseline_circuit,
                request.backend,
                optimization_level=3,
                seed=request.seed,
            )
            baseline = collect_metrics(
                compiled.circuit, request.backend.calibration
            )
        return baseline, assess_reuse_benefit(points).beneficial


# -- process-wide default (win-rate history accumulates across calls) ----------

_default_portfolio: Optional[PortfolioCompileService] = None
_default_state_path: Optional[str] = None


def default_portfolio_service() -> PortfolioCompileService:
    """The lazily created process-wide portfolio service.

    ``caqr_compile(strategy="portfolio")`` routes through this instance
    so the win-rate history (and therefore the pool submission order)
    improves over a process's lifetime.  When a state path is configured
    (:func:`set_default_portfolio_state_path`, or implicitly
    ``$CAQR_CACHE_DIR/portfolio_state.json`` when that variable is set)
    the history also survives restarts.
    """
    global _default_portfolio
    if _default_portfolio is None:
        state_path = _default_state_path
        if state_path is None:
            cache_dir = os.environ.get("CAQR_CACHE_DIR") or None
            if cache_dir:
                state_path = os.path.join(
                    os.path.expanduser(cache_dir), "portfolio_state.json"
                )
        _default_portfolio = PortfolioCompileService(state_path=state_path)
    return _default_portfolio


def peek_default_portfolio_service() -> Optional[PortfolioCompileService]:
    """The process-wide service if it exists, without creating one.

    The metrics endpoint uses this to fold portfolio win rates into
    ``GET /v1/metrics`` without forcing an idle service into being.
    """
    return _default_portfolio


def set_default_portfolio_state_path(path: Optional[str]) -> None:
    """Pin where the process-wide service persists win-rate state.

    ``repro serve --cache-dir DIR`` calls this with
    ``DIR/portfolio_state.json`` so self-tuning survives a redeploy.
    Resets the current default service so the next use reloads state.
    """
    global _default_portfolio, _default_state_path
    _default_state_path = path
    _default_portfolio = None


def reset_default_portfolio_service() -> None:
    """Forget the process-wide portfolio service (tests isolate stats)."""
    global _default_portfolio
    _default_portfolio = None
