"""Structured JSON request logs for the HTTP front-end.

One JSONL record per served HTTP request, written behind
``$CAQR_REQUEST_LOG`` (a file path, or ``-`` for stderr).  The schema is
flat and stable so fleet tooling can tail it without a parser:

``ts`` (unix seconds), ``method``, ``path``, ``status`` (HTTP code),
``latency_ms``, ``fingerprint`` (request cache key, ``null`` for
non-compile routes), ``cache`` (``hit|miss|inflight``, ``null`` when not
applicable), ``strategy`` (``auto|portfolio|...``), ``error`` (wire
error code on >=400 responses, else ``null``).

Thread-safe: the server logs from the event loop while compiles run on
worker threads; a lock serializes whole lines so records never
interleave.  Logging failures are swallowed — observability must never
take a request down.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Optional, TextIO, Union

__all__ = ["REQUEST_LOG_ENV", "RequestLog"]

REQUEST_LOG_ENV = "CAQR_REQUEST_LOG"

#: Every record carries exactly these keys (missing values are ``null``).
RECORD_FIELDS = (
    "ts",
    "method",
    "path",
    "status",
    "latency_ms",
    "fingerprint",
    "cache",
    "strategy",
    "error",
)


class RequestLog:
    """Append-only JSONL request log (thread-safe).

    *target* is a path (opened in append mode), ``"-"`` for stderr, or
    an already-open text handle (not closed by :meth:`close`).
    """

    def __init__(self, target: Union[str, TextIO]):
        self._lock = threading.Lock()
        if hasattr(target, "write"):
            self._handle: Optional[TextIO] = target  # type: ignore[assignment]
            self._owns = False
        elif target == "-":
            self._handle = sys.stderr
            self._owns = False
        else:
            path = os.path.abspath(os.path.expanduser(str(target)))
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")
            self._owns = True

    @classmethod
    def from_env(cls) -> Optional["RequestLog"]:
        """A log writing to ``$CAQR_REQUEST_LOG``, or ``None`` if unset."""
        target = os.environ.get(REQUEST_LOG_ENV)
        return cls(target) if target else None

    def log(self, **fields: Any) -> None:
        """Write one record; unknown fields are kept, known ones defaulted."""
        record = {name: None for name in RECORD_FIELDS}
        record["ts"] = round(time.time(), 6)
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str)
        except (TypeError, ValueError):
            return
        handle = self._handle
        if handle is None:
            return
        try:
            with self._lock:
                handle.write(line + "\n")
                handle.flush()
        except (OSError, ValueError):
            pass  # a full disk or closed handle must not fail the request

    def close(self) -> None:
        """Close the underlying file if this log opened it."""
        with self._lock:
            if self._owns and self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None
