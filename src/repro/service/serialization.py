"""Lossless JSON codec for :class:`~repro.compile_api.CompileReport`.

Cache entries must reproduce a cold compile **field for field** (the
property harness in ``tests/property/test_cache_roundtrip.py`` pins this),
so the codec round-trips every structure exactly:

* circuits as explicit instruction records (name, wires, shortest
  round-trip float params, condition, label) — the QASM exporter is
  *lossy* (labels, clbit register layout), so it is only embedded as a
  human-readable ``qasm`` sidecar, never parsed back;
* metrics and router stats as plain dicts (JSON floats round-trip
  exactly via ``repr``-style shortest form);
* a ``schema`` stamp (:data:`SCHEMA_VERSION`): any structural change to
  this codec bumps the version, and loaders treat a mismatched stamp as
  a cache miss rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.analysis.metrics import CircuitMetrics
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.circuit.qasm.exporter import to_qasm
from repro.compile_api import CompileReport
from repro.core.profile import ReuseEvalStats
from repro.exceptions import ServiceError
from repro.sim.stats import SimStats
from repro.transpiler.stats import RouteStats

__all__ = [
    "SCHEMA_VERSION",
    "circuit_to_dict",
    "circuit_from_dict",
    "report_to_dict",
    "report_from_dict",
    "dumps_entry",
    "loads_entry",
]

# v2: portfolio fields (strategy, strategy_timings, strategy_errors,
# optimality_gap, exact_optimal) joined the report record
# v3: engine-observability fields (eval_stats, sim_stats) joined the
# report record (the "stats on the wire" item)
# v4: chain-engine observability (chain_stats) joined the report record
SCHEMA_VERSION = 4


def circuit_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Lossless circuit record (wires, name, full instruction stream)."""
    return {
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "name": circuit.name,
        "instructions": [
            {
                "name": instruction.name,
                "qubits": list(instruction.qubits),
                "clbits": list(instruction.clbits),
                "params": list(instruction.params),
                "condition": (
                    list(instruction.condition)
                    if instruction.condition is not None
                    else None
                ),
                "label": instruction.label,
            }
            for instruction in circuit.data
        ],
    }


def circuit_from_dict(payload: Dict[str, Any]) -> QuantumCircuit:
    """Inverse of :func:`circuit_to_dict`."""
    circuit = QuantumCircuit(
        int(payload["num_qubits"]),
        int(payload["num_clbits"]),
        name=payload.get("name", "circuit"),
    )
    for record in payload["instructions"]:
        condition = record.get("condition")
        circuit.append(
            Instruction(
                name=record["name"],
                qubits=tuple(record["qubits"]),
                clbits=tuple(record["clbits"]),
                params=tuple(record["params"]),
                condition=tuple(condition) if condition is not None else None,
                label=record.get("label"),
            )
        )
    return circuit


def _metrics_to_dict(metrics: Optional[CircuitMetrics]) -> Optional[Dict[str, Any]]:
    if metrics is None:
        return None
    return {
        "qubits_used": metrics.qubits_used,
        "depth": metrics.depth,
        "duration_dt": metrics.duration_dt,
        "swap_count": metrics.swap_count,
        "two_qubit_count": metrics.two_qubit_count,
        "gate_count": metrics.gate_count,
        "reuse_resets": metrics.reuse_resets,
    }


def _metrics_from_dict(payload: Optional[Dict[str, Any]]) -> Optional[CircuitMetrics]:
    if payload is None:
        return None
    return CircuitMetrics(**payload)


def _route_stats_to_dict(stats: Optional[RouteStats]) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {
        "counters": dict(stats.counters),
        "timers": dict(stats.timers),
        "values": dict(stats.values),
    }


def _route_stats_from_dict(payload: Optional[Dict[str, Any]]) -> Optional[RouteStats]:
    if payload is None:
        return None
    return RouteStats(
        counters={k: int(v) for k, v in payload["counters"].items()},
        timers={k: float(v) for k, v in payload["timers"].items()},
        values={k: float(v) for k, v in payload["values"].items()},
    )


def _eval_stats_to_dict(stats: Optional[ReuseEvalStats]) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {"counters": dict(stats.counters), "timers": dict(stats.timers)}


def _eval_stats_from_dict(payload: Optional[Dict[str, Any]]) -> Optional[ReuseEvalStats]:
    if payload is None:
        return None
    return ReuseEvalStats(
        counters={k: int(v) for k, v in payload["counters"].items()},
        timers={k: float(v) for k, v in payload["timers"].items()},
    )


def _sim_stats_to_dict(stats: Optional[SimStats]) -> Optional[Dict[str, Any]]:
    if stats is None:
        return None
    return {
        "counters": dict(stats.counters),
        "timers": dict(stats.timers),
        "values": dict(stats.values),
    }


def _sim_stats_from_dict(payload: Optional[Dict[str, Any]]) -> Optional[SimStats]:
    if payload is None:
        return None
    return SimStats(
        counters={k: int(v) for k, v in payload["counters"].items()},
        timers={k: float(v) for k, v in payload["timers"].items()},
        values={k: float(v) for k, v in payload["values"].items()},
    )


def report_to_dict(report: CompileReport) -> Dict[str, Any]:
    """``CompileReport`` -> JSON-compatible dict (plus a QASM sidecar)."""
    return {
        "circuit": circuit_to_dict(report.circuit),
        "mode": report.mode,
        "metrics": _metrics_to_dict(report.metrics),
        "baseline_metrics": _metrics_to_dict(report.baseline_metrics),
        "reuse_beneficial": report.reuse_beneficial,
        "qubit_saving": report.qubit_saving,
        "route_stats": _route_stats_to_dict(report.route_stats),
        "eval_stats": _eval_stats_to_dict(report.eval_stats),
        "sim_stats": _sim_stats_to_dict(report.sim_stats),
        "strategy": report.strategy,
        "strategy_timings": report.strategy_timings,
        "strategy_errors": report.strategy_errors,
        "optimality_gap": report.optimality_gap,
        "exact_optimal": report.exact_optimal,
        "chain_stats": _eval_stats_to_dict(report.chain_stats),
        # human-readable sidecar only — lossy, never parsed back
        "qasm": to_qasm(report.circuit),
    }


def report_from_dict(payload: Dict[str, Any]) -> CompileReport:
    """Inverse of :func:`report_to_dict` (the loaded report is flagged
    ``from_cache=True``)."""
    return CompileReport(
        circuit=circuit_from_dict(payload["circuit"]),
        mode=payload["mode"],
        metrics=_metrics_from_dict(payload["metrics"]),
        baseline_metrics=_metrics_from_dict(payload["baseline_metrics"]),
        reuse_beneficial=bool(payload["reuse_beneficial"]),
        qubit_saving=float(payload["qubit_saving"]),
        route_stats=_route_stats_from_dict(payload.get("route_stats")),
        eval_stats=_eval_stats_from_dict(payload.get("eval_stats")),
        sim_stats=_sim_stats_from_dict(payload.get("sim_stats")),
        from_cache=True,
        strategy=payload.get("strategy"),
        strategy_timings=(
            {k: float(v) for k, v in payload["strategy_timings"].items()}
            if payload.get("strategy_timings") is not None
            else None
        ),
        strategy_errors=(
            {k: str(v) for k, v in payload["strategy_errors"].items()}
            if payload.get("strategy_errors") is not None
            else None
        ),
        optimality_gap=(
            int(payload["optimality_gap"])
            if payload.get("optimality_gap") is not None
            else None
        ),
        exact_optimal=(
            bool(payload["exact_optimal"])
            if payload.get("exact_optimal") is not None
            else None
        ),
        chain_stats=_eval_stats_from_dict(payload.get("chain_stats")),
    )


def dumps_entry(key: str, report: CompileReport) -> str:
    """Serialize one cache entry (schema stamp + key + report)."""
    return json.dumps(
        {"schema": SCHEMA_VERSION, "key": key, "report": report_to_dict(report)},
        sort_keys=True,
    )


def loads_entry(text: str, key: Optional[str] = None) -> CompileReport:
    """Decode one cache entry; raise :class:`ServiceError` on anything off.

    Cache tiers catch the error and treat the entry as a miss — a corrupt
    or stale-schema entry must never surface to the caller.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"corrupt cache entry: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported cache schema {payload.get('schema') if isinstance(payload, dict) else None!r}"
        )
    if key is not None and payload.get("key") != key:
        raise ServiceError("cache entry key mismatch")
    try:
        return report_from_dict(payload["report"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed cache entry: {exc}") from exc
