"""Latency histograms and the Prometheus text-format exporter.

Two pieces, both stdlib-only:

* :class:`LatencyHistogram` — a fixed-bucket (log-spaced, seconds)
  histogram in the classic Prometheus shape: per-bucket observation
  counts plus a running sum.  Fixed buckets keep ``observe`` O(log B)
  and make merging two histograms a plain element-wise add, which is
  what :meth:`repro.service.stats.ServiceStats.merge` needs.
* :func:`render_prometheus` — serializes a
  :class:`~repro.service.stats.ServiceStats` snapshot into Prometheus
  text exposition format 0.0.4 (the ``GET /v1/metrics`` payload).
  Counters become ``caqr_<name>_total``, timers become
  ``caqr_time_<name>_seconds_total``, gauges stay gauges, histograms
  expand into ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.

The stats objects use ``family:key`` compound names for per-entity
series (``http:/v1/compile``, ``shard_bytes:<digest>``,
``portfolio_wins:<strategy>``).  Prometheus metric names cannot carry a
``:``-suffixed key, so the renderer splits those into a label:
``caqr_http_requests_total{path="/v1/compile"}``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ServiceError

__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram", "render_prometheus"]

#: Upper bucket bounds in seconds: 1ms .. 60s, log-spaced, matching the
#: range a compile request can plausibly take (warm hit to exact-tier race).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram of seconds (Prometheus-classic shape).

    ``counts[i]`` holds observations with ``value <= buckets[i]`` that
    did not fit an earlier bucket; ``counts[-1]`` is the ``+Inf``
    overflow bucket.  ``cumulative()`` produces the monotone
    less-or-equal totals the text format wants.
    """

    __slots__ = ("buckets", "counts", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ServiceError(
                "histogram buckets must be a non-empty strictly "
                f"increasing sequence, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def observe(self, seconds: float) -> None:
        """Record one observation of *seconds*."""
        self.counts[bisect_left(self.buckets, float(seconds))] += 1
        self.sum += float(seconds)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count_le)`` pairs; the last bound is ``inf``."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the *q* quantile (0..1)."""
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            if running >= rank:
                return bound
        return self.buckets[-1]

    def merge(self, other: "LatencyHistogram") -> None:
        """Element-wise add *other* into this histogram (same buckets)."""
        if other.buckets != self.buckets:
            raise ServiceError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.sum += other.sum

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot (``/v1/stats`` payload fragment)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LatencyHistogram":
        hist = cls(payload["buckets"])  # type: ignore[arg-type]
        counts = list(payload["counts"])  # type: ignore[call-overload]
        if len(counts) != len(hist.counts):
            raise ServiceError("histogram snapshot counts/buckets mismatch")
        hist.counts = [int(c) for c in counts]
        hist.sum = float(payload["sum"])  # type: ignore[arg-type]
        return hist


# -- Prometheus text rendering -------------------------------------------------

#: ``family:key`` stats names rendered with this label instead of an
#: inlined key (anything not listed falls back to a generic ``key`` label).
_FAMILY_LABELS = {
    "http": "path",
    "request_latency": "path",
    "portfolio_wins": "strategy",
    "portfolio_errors": "strategy",
    "shard_entries": "shard",
    "shard_bytes": "shard",
    # gateway fleet families (repro.service.net.gateway): one series per
    # backend base URL
    "backend_requests": "backend",
    "backend_errors": "backend",
    "backend_retries": "backend",
    "batch_retries": "backend",
    "backend_latency": "backend",
    "backend_up": "backend",
    "marked_down": "backend",
    "peer_fills": "backend",
    "fleet_requests": "backend",
    "fleet_hits": "backend",
    "fleet_misses": "backend",
}

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _split(name: str) -> Tuple[str, Optional[str], Optional[str]]:
    """``family:key`` -> (family, label_name, label_value)."""
    family, sep, key = name.partition(":")
    if not sep:
        return name, None, None
    return family, _FAMILY_LABELS.get(family, "key"), key


def _metric_name(prefix: str, family: str, suffix: str = "") -> str:
    return f"{prefix}_{_NAME_SANITIZER.sub('_', family)}{suffix}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Iterable[Tuple[str, str]]) -> str:
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return f"{{{body}}}" if body else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else repr(bound)


class _Renderer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def header(self, metric: str, kind: str, help_text: str) -> None:
        if metric not in self._typed:
            self._typed.add(metric)
            self.lines.append(f"# HELP {metric} {help_text}")
            self.lines.append(f"# TYPE {metric} {kind}")

    def sample(
        self, metric: str, labels: Iterable[Tuple[str, str]], value: float
    ) -> None:
        self.lines.append(f"{metric}{_labels(labels)} {_format_value(value)}")


def render_prometheus(
    stats,
    prefix: str = "caqr",
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a :class:`ServiceStats` snapshot as Prometheus text format.

    *extra_gauges* lets the server inject process-level gauges the stats
    sink does not own (``uptime_seconds``, ``inflight``, ``draining``).
    Returns the full exposition body, newline-terminated.
    """
    out = _Renderer()

    for name in sorted(stats.counters):
        family, label, key = _split(name)
        metric = _metric_name(prefix, family, "_total")
        out.header(metric, "counter", f"Cumulative count of {family} events.")
        labels = [(label, key)] if label is not None and key is not None else []
        out.sample(metric, labels, stats.counters[name])

    for name in sorted(stats.timers):
        family, label, key = _split(name)
        metric = _metric_name(prefix, f"time_{family}", "_seconds_total")
        out.header(
            metric, "counter", f"Cumulative wall-clock seconds in {family}."
        )
        labels = [(label, key)] if label is not None and key is not None else []
        out.sample(metric, labels, stats.timers[name])

    for name in sorted(stats.values):
        family, label, key = _split(name)
        metric = _metric_name(prefix, family)
        out.header(metric, "gauge", f"Current value of {family}.")
        labels = [(label, key)] if label is not None and key is not None else []
        out.sample(metric, labels, stats.values[name])

    for name, value in sorted((extra_gauges or {}).items()):
        metric = _metric_name(prefix, name)
        out.header(metric, "gauge", f"Current value of {name}.")
        out.sample(metric, [], value)

    histograms = getattr(stats, "histograms", {})
    for name in sorted(histograms):
        hist = histograms[name]
        family, label, key = _split(name)
        metric = _metric_name(prefix, family, "_seconds")
        out.header(metric, "histogram", f"Latency distribution of {family}.")
        base = [(label, key)] if label is not None and key is not None else []
        for bound, count in hist.cumulative():
            out.sample(
                f"{metric}_bucket", base + [("le", _format_bound(bound))], count
            )
        out.sample(f"{metric}_sum", base, hist.sum)
        out.sample(f"{metric}_count", base, hist.count)

    return "\n".join(out.lines) + "\n"
