"""Compile service: content-addressed caching + batch compilation.

The production front-end for :func:`repro.compile_api.caqr_compile`:
deterministic compilation inputs are fingerprinted
(:mod:`repro.service.fingerprint`), compiled reports are stored losslessly
(:mod:`repro.service.serialization`) in a two-tier LRU/disk cache
(:mod:`repro.service.cache`), and :class:`CompileService`
(:mod:`repro.service.service`) serves single requests, folds concurrent
duplicates, and fans batches over a process pool.  See
``docs/SERVICE.md`` for the cache-key contract and
``docs/ARCHITECTURE.md`` for where this layer sits.
"""

from repro.service.cache import DiskCache, MemoryCache, TieredCache
from repro.service.fingerprint import (
    backend_digest,
    circuit_digest,
    circuit_normal_form,
    graph_digest,
    graph_normal_form,
    request_fingerprint,
)
from repro.service.serialization import (
    SCHEMA_VERSION,
    circuit_from_dict,
    circuit_to_dict,
    dumps_entry,
    loads_entry,
    report_from_dict,
    report_to_dict,
)
from repro.service.service import (
    CompileRequest,
    CompileService,
    default_service,
    reset_default_service,
    resolve_cache,
)
from repro.service.stats import ServiceStats

__all__ = [
    "CompileRequest",
    "CompileService",
    "ServiceStats",
    "MemoryCache",
    "DiskCache",
    "TieredCache",
    "SCHEMA_VERSION",
    "default_service",
    "reset_default_service",
    "resolve_cache",
    "request_fingerprint",
    "circuit_digest",
    "circuit_normal_form",
    "graph_digest",
    "graph_normal_form",
    "backend_digest",
    "circuit_to_dict",
    "circuit_from_dict",
    "report_to_dict",
    "report_from_dict",
    "dumps_entry",
    "loads_entry",
]
