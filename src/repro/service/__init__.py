"""Compile service: content-addressed caching + batch compilation.

The production front-end for :func:`repro.compile_api.caqr_compile`:
deterministic compilation inputs are fingerprinted
(:mod:`repro.service.fingerprint`), compiled reports are stored losslessly
(:mod:`repro.service.serialization`) in a two-tier LRU/disk cache
(:mod:`repro.service.cache`), and :class:`CompileService`
(:mod:`repro.service.service`) serves single requests, folds concurrent
duplicates, and fans batches over a process pool.  The networked
front-end (:mod:`repro.service.net`) shares one such service across
processes over HTTP: :class:`CompileServer` hosts it,
:class:`RemoteCompileService` is the drop-in client twin, and
:class:`GatewayServer` consistent-hashes requests across a fleet of
servers (:mod:`repro.service.fleet`).  See
``docs/SERVICE.md`` for the cache-key and wire contracts and
``docs/ARCHITECTURE.md`` for where this layer sits.
"""

from repro.service.cache import DEFAULT_SHARD, DiskCache, MemoryCache, TieredCache
from repro.service.driftreplay import DriftReplayResult, replay_drift
from repro.service.fingerprint import (
    CALIB_BANDS_ENV,
    backend_digest,
    band_value,
    banded_backend_digest,
    circuit_digest,
    circuit_normal_form,
    graph_digest,
    graph_normal_form,
    request_fingerprint,
    resolve_calib_bands,
)
from repro.service.serialization import (
    SCHEMA_VERSION,
    circuit_from_dict,
    circuit_to_dict,
    dumps_entry,
    loads_entry,
    report_from_dict,
    report_to_dict,
)
from repro.service.service import (
    CompileRequest,
    CompileService,
    default_service,
    reset_default_service,
    resolve_cache,
)
from repro.service.metrics import DEFAULT_BUCKETS, LatencyHistogram, render_prometheus
from repro.service.portfolio import (
    PortfolioCompileService,
    StrategySpec,
    default_portfolio_service,
    peek_default_portfolio_service,
    reset_default_portfolio_service,
    set_default_portfolio_state_path,
)
from repro.service.reqlog import RequestLog
from repro.service.workers import WorkerPool, resolve_workers_mode
from repro.service.fleet import FleetState, HashRing, ring_key
from repro.service.net import (
    CACHE_STATUSES,
    ERROR_CODES,
    WIRE_SCHEMA_VERSION,
    CompileServer,
    GatewayHandle,
    GatewayServer,
    RemoteCompileService,
    ServerHandle,
    WireError,
    run_gateway,
    run_server,
    start_gateway_thread,
    start_server_thread,
)
from repro.service.stats import ServiceStats

__all__ = [
    "CompileRequest",
    "CompileService",
    "PortfolioCompileService",
    "StrategySpec",
    "default_portfolio_service",
    "peek_default_portfolio_service",
    "reset_default_portfolio_service",
    "set_default_portfolio_state_path",
    "WorkerPool",
    "resolve_workers_mode",
    "LatencyHistogram",
    "DEFAULT_BUCKETS",
    "render_prometheus",
    "RequestLog",
    "CompileServer",
    "GatewayServer",
    "GatewayHandle",
    "RemoteCompileService",
    "ServerHandle",
    "WireError",
    "run_server",
    "start_server_thread",
    "run_gateway",
    "start_gateway_thread",
    "HashRing",
    "FleetState",
    "ring_key",
    "ServiceStats",
    "MemoryCache",
    "DiskCache",
    "TieredCache",
    "DEFAULT_SHARD",
    "SCHEMA_VERSION",
    "WIRE_SCHEMA_VERSION",
    "CACHE_STATUSES",
    "ERROR_CODES",
    "default_service",
    "reset_default_service",
    "resolve_cache",
    "request_fingerprint",
    "circuit_digest",
    "circuit_normal_form",
    "graph_digest",
    "graph_normal_form",
    "backend_digest",
    "banded_backend_digest",
    "band_value",
    "resolve_calib_bands",
    "CALIB_BANDS_ENV",
    "DriftReplayResult",
    "replay_drift",
    "circuit_to_dict",
    "circuit_from_dict",
    "report_to_dict",
    "report_from_dict",
    "dumps_entry",
    "loads_entry",
]
