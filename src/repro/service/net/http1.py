"""Minimal HTTP/1.1 primitives shared by the server and the gateway.

:mod:`repro.service.net.server` and :mod:`repro.service.net.gateway`
both speak plain HTTP/1.1 over asyncio streams (keep-alive,
``Content-Length`` bodies, no chunked encoding).  This module holds the
pieces they share so the two never drift:

* :func:`parse_head` — request-line + header block parsing (server side);
* :func:`format_response` — response serialization with the repo's
  keep-alive/Content-Type conventions (server side);
* :func:`send_request` / :func:`read_response` — the *client* half used
  by the gateway's pooled backend connections (and by nothing else: the
  blocking :class:`~repro.service.net.client.RemoteCompileService` rides
  stdlib ``http.client`` instead).

Everything is stdlib only and carries no service semantics — wire
envelopes stay in :mod:`repro.service.net.wire`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "MAX_HEADER_BYTES",
    "REASONS",
    "parse_head",
    "format_response",
    "send_request",
    "read_response",
]

MAX_HEADER_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def parse_head(blob: bytes) -> Optional[Tuple[str, str, Dict[str, str]]]:
    """``b"GET /x HTTP/1.1\\r\\n..."`` -> ``(METHOD, path, headers)``.

    Header names come back lower-cased; the query string is stripped from
    the path.  Returns ``None`` for anything malformed — the caller owes
    the peer a ``400``.
    """
    try:
        request_line, *header_lines = blob.decode("latin-1").split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        return None
    if not version.startswith("HTTP/1."):
        return None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target.split("?", 1)[0], headers


def format_response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Mapping[str, str],
    keep_alive: bool,
) -> bytes:
    """Serialize one response (head + body) ready for ``writer.write``."""
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Error')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: " + ("keep-alive" if keep_alive else "close"),
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def send_request(
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    host: str,
    headers: Mapping[str, str],
    body: Optional[bytes],
) -> None:
    """Write one client-side request onto an open connection."""
    payload = body or b""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Content-Length: {len(payload)}",
        "Connection: keep-alive",
    ]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
    await writer.drain()


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Read one response; returns ``(status, lower-cased headers, body)``.

    Raises ``ConnectionError`` on a malformed or truncated peer answer so
    pooled-connection callers treat every failure mode uniformly (drop
    the connection, try the next replica).
    """
    head = await reader.readuntil(b"\r\n\r\n")
    try:
        status_line, *header_lines = head.decode("latin-1").split("\r\n")
        _, status_text, _ = status_line.split(" ", 2)
        status = int(status_text)
    except ValueError as exc:
        raise ConnectionError(f"malformed response head: {exc}") from exc
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as exc:
        raise ConnectionError("bad Content-Length in response") from exc
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
