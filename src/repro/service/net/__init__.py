"""Networked front-end for the compile service.

Five modules, strictly layered:

* :mod:`repro.service.net.wire` — schema-versioned JSON envelopes and
  typed error codes (shared vocabulary; imports neither peer);
* :mod:`repro.service.net.http1` — minimal HTTP/1.1 framing shared by
  everything asyncio-side (head parsing, response formatting, pooled
  request/response round-trips);
* :mod:`repro.service.net.server` — stdlib asyncio HTTP/1.1 server
  fronting one :class:`~repro.service.service.CompileService`;
* :mod:`repro.service.net.client` — blocking ``http.client`` client
  exposing the same compile surface as the local service;
* :mod:`repro.service.net.gateway` — consistent-hash fleet gateway
  routing the wire protocol across N servers with health-driven
  membership, retry-on-next-replica, and peer cache fill.

``caqr_compile(cache="http://host:port")`` resolves to a
:class:`RemoteCompileService` automatically (``https://`` works too);
``repro serve`` runs the server and ``repro gateway`` the fleet
front-end from the command line.
"""

from repro.service.net.client import RETRYABLE_CODES, RemoteCompileService
from repro.service.net.gateway import (
    DEFAULT_GATEWAY_PORT,
    GatewayHandle,
    GatewayServer,
    run_gateway,
    start_gateway_thread,
)
from repro.service.net.server import (
    DEFAULT_PORT,
    CompileServer,
    ServerHandle,
    run_server,
    start_server_thread,
)
from repro.service.net.wire import (
    CACHE_STATUSES,
    ERROR_CODES,
    WIRE_SCHEMA_VERSION,
    WireError,
    error_from_wire,
    error_to_wire,
    graph_from_dict,
    graph_to_dict,
    request_from_wire,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "CACHE_STATUSES",
    "ERROR_CODES",
    "DEFAULT_PORT",
    "DEFAULT_GATEWAY_PORT",
    "WireError",
    "CompileServer",
    "ServerHandle",
    "GatewayServer",
    "GatewayHandle",
    "RemoteCompileService",
    "RETRYABLE_CODES",
    "run_server",
    "start_server_thread",
    "run_gateway",
    "start_gateway_thread",
    "graph_to_dict",
    "graph_from_dict",
    "request_to_wire",
    "request_from_wire",
    "response_to_wire",
    "response_from_wire",
    "error_to_wire",
    "error_from_wire",
]
