"""Asyncio HTTP/1.1 front-end for :class:`~repro.service.service.CompileService`.

One ``repro serve`` process owns one compile cache and one in-flight
dedup table; any number of client processes
(:class:`~repro.service.net.client.RemoteCompileService`, or anything
speaking the :mod:`repro.service.net.wire` protocol) share them — the
multi-process upgrade of PR 4's in-process service.  Stdlib only: the
server is ``asyncio.start_server`` plus a minimal HTTP/1.1 read loop
(keep-alive, ``Content-Length`` bodies; no chunked encoding).

Endpoints
---------

===========================  ======================================================
``GET  /v1/health``          liveness + ``uptime_s`` / ``inflight`` / ``draining``
                             gauges (always answered, even mid-drain)
``GET  /v1/stats``           :class:`ServiceStats` snapshot + per-shard disk usage
                             + the same process gauges
``GET  /v1/metrics``         Prometheus text format 0.0.4: counters, gauges,
                             timers, and request-latency histograms (answered
                             mid-drain so scrapes survive a rollout)
``POST /v1/compile``         one request envelope -> one response envelope, with
                             ``X-CaQR-Fingerprint``, ``X-CaQR-Cache:
                             hit|miss|inflight`` and ``X-CaQR-Strategy`` headers
``POST /v1/compile_batch``   ``{"requests": [...], "parallel": bool}`` -> results
                             in input order (duplicates folded server-side)
``POST /v1/cache/invalidate``  ``{"fingerprint": ...}`` or ``{"all": true}``
``POST /v1/cache/fill``      replay a peer server's encoded response envelope
                             into this server's cache (gateway peer fill)
===========================  ======================================================

A ``/v1/compile`` carrying the ``X-CaQR-Cache-Only: 1`` header answers
from the cache only (``404 cache_miss`` instead of compiling) — the
gateway's peer-fill probe.  With an ``auth_token`` (or
``$CAQR_AUTH_TOKEN``) every route except ``GET /v1/health`` requires
``Authorization: Bearer <token>`` (``401 unauthorized`` otherwise), and
``tls_cert``/``tls_key`` wrap the listener in stdlib TLS.

Operational behaviour:

* **worker pool** — cold compiles run on a bounded ``ThreadPoolExecutor``
  so the event loop never blocks on QS/SR; the underlying
  ``CompileService`` is thread-safe and folds concurrent identical
  requests onto one compilation regardless of which worker runs it;
* **backpressure** — more than ``max_concurrency`` admitted compiles ->
  ``429 overloaded`` (with ``Retry-After``); bodies past ``max_body`` ->
  ``413 payload_too_large``; requests during drain -> ``503
  shutting_down``;
* **per-request timeout** — a compile past ``request_timeout`` answers
  ``504 timeout``.  The worker thread keeps running (threads cannot be
  killed), so the error code tells clients the request is *still
  executing* and must not be retried — a later identical request will
  join it through the dedup table;
* **graceful drain** — SIGTERM/SIGINT stops accepting connections,
  lets in-flight requests finish (up to ``drain_timeout``), then closes
  remaining keep-alive connections (and the service's persistent worker
  pool) and exits cleanly;
* **encoded-envelope cache** — warm ``/v1/compile`` hits are answered
  from an LRU of pre-serialized response bodies keyed by
  ``(fingerprint, wire schema version)``, skipping ``report_to_dict``
  and JSON encoding entirely (``envelope_hits``); entries drop with the
  underlying cache entry (TTL check on every fast-path hit, explicit
  ``/v1/cache/invalidate``);
* **observability** — every request is timed into fixed-bucket latency
  histograms (``request_latency`` plus per-route), exported by
  ``GET /v1/metrics``, and optionally logged as one JSONL record
  (:mod:`repro.service.reqlog`, ``$CAQR_REQUEST_LOG``).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import ssl
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import ReproError, ServiceError
from repro.service.metrics import render_prometheus
from repro.service.net.http1 import (
    MAX_HEADER_BYTES as _MAX_HEADER_BYTES,
    REASONS as _REASONS,
    parse_head,
)
from repro.service.net.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    error_to_wire,
    request_from_wire,
    response_from_wire,
    response_to_wire,
)
from repro.service.reqlog import RequestLog
from repro.service.serialization import dumps_entry
from repro.service.service import CompileService
from repro.service.stats import ServiceStats

__all__ = [
    "DEFAULT_PORT",
    "CACHE_ONLY_HEADER",
    "CompileServer",
    "ServerHandle",
    "start_server_thread",
    "run_server",
]

DEFAULT_PORT = 8787
DEFAULT_MAX_BODY = 32 * 1024 * 1024
DEFAULT_MAX_CONCURRENCY = 32
DEFAULT_REQUEST_TIMEOUT = 600.0
DEFAULT_DRAIN_TIMEOUT = 30.0
DEFAULT_ENVELOPE_ENTRIES = 1024
_KEEPALIVE_TIMEOUT = 75.0
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Routes that get their own latency histogram (bounding label
#: cardinality: arbitrary 404 paths only feed the overall histogram).
_ROUTES = (
    "/v1/health",
    "/v1/stats",
    "/v1/metrics",
    "/v1/compile",
    "/v1/compile_batch",
    "/v1/cache/invalidate",
    "/v1/cache/fill",
)

#: Gateway peer-fill probe: a ``/v1/compile`` carrying this header must
#: answer from the cache only — a warm envelope or ``404 cache_miss`` —
#: and never start a compile.
CACHE_ONLY_HEADER = "x-caqr-cache-only"

#: ``CompileReport`` fields whose engine stats are folded into their own
#: Prometheus prefix (``caqr_route_*``, ``caqr_sim_*``,
#: ``caqr_reuse_eval_*``) when a server-side cold compile carries them:
#: route stats from ``min_swap`` compiles, QS evaluation stats from every
#: sweep/reduction, analytic-ESP stats from hardware-mapped compiles.
#: getattr-based: a report field a future schema removes simply goes dark
#: instead of crashing the scrape.
_REPORT_STAT_DOMAINS = (
    ("route", "route_stats"),
    ("sim", "sim_stats"),
    ("reuse_eval", "eval_stats"),
    ("chain", "chain_stats"),
)

# dispatch result: (status, JSON payload or pre-encoded body bytes, extra headers)
_Reply = Tuple[int, Union[Dict[str, Any], bytes], Dict[str, str]]


class _EnvelopeCache:
    """Thread-safe LRU of pre-encoded response bodies.

    Keys are ``(fingerprint, WIRE_SCHEMA_VERSION)`` so a schema bump
    can never serve a stale envelope shape from a long-lived process.
    """

    def __init__(self, max_entries: int):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> Optional[bytes]:
        key = (fingerprint, WIRE_SCHEMA_VERSION)
        with self._lock:
            body = self._entries.get(key)
            if body is not None:
                self._entries.move_to_end(key)
            return body

    def put(self, fingerprint: str, body: bytes) -> None:
        key = (fingerprint, WIRE_SCHEMA_VERSION)
        with self._lock:
            self._entries[key] = body
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, fingerprint: str) -> bool:
        with self._lock:
            return (
                self._entries.pop((fingerprint, WIRE_SCHEMA_VERSION), None)
                is not None
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class CompileServer:
    """HTTP/1.1 front-end sharing one :class:`CompileService` across processes.

    Args:
        service: the service to front (default: a fresh memory-only one).
        host / port: bind address; ``port=0`` picks a free port
            (:attr:`port` holds the real one after :meth:`start`).
        max_workers: compile worker threads (default: the service's
            ``max_workers``, i.e. ``os.cpu_count()`` capped at 8).
        max_concurrency: admitted compile requests before ``429``.
        max_body: request body cap in bytes before ``413``.
        request_timeout: seconds before an admitted compile answers
            ``504 timeout`` (the compile keeps running server-side).
        drain_timeout: seconds shutdown waits for in-flight requests.
        envelope_cache_entries: LRU cap of the encoded-envelope cache
            (pre-serialized warm-hit response bodies); ``0`` disables it.
        request_log: structured JSONL request log — a path string, an
            existing :class:`~repro.service.reqlog.RequestLog`, or
            ``None`` to honour ``$CAQR_REQUEST_LOG`` (no logging when
            that is unset too).
        auth_token: bearer token every request except ``GET /v1/health``
            must carry (``Authorization: Bearer <token>``); wrong or
            missing -> ``401 unauthorized``.  ``None`` honours
            ``$CAQR_AUTH_TOKEN``; empty/unset means no auth.
        tls_cert / tls_key: PEM certificate chain + private key; when
            set the listener speaks TLS (stdlib ``ssl``) and the
            handle's URL scheme is ``https``.
    """

    def __init__(
        self,
        service: Optional[CompileService] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_workers: Optional[int] = None,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        max_body: int = DEFAULT_MAX_BODY,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        envelope_cache_entries: int = DEFAULT_ENVELOPE_ENTRIES,
        request_log: Union[None, str, RequestLog] = None,
        auth_token: Optional[str] = None,
        tls_cert: Optional[str] = None,
        tls_key: Optional[str] = None,
    ):
        if max_concurrency < 1:
            raise ServiceError("server needs max_concurrency >= 1")
        if max_body < 1:
            raise ServiceError("server needs max_body >= 1")
        if envelope_cache_entries < 0:
            raise ServiceError("server needs envelope_cache_entries >= 0")
        if bool(tls_cert) != bool(tls_key):
            raise ServiceError("TLS needs both tls_cert and tls_key")
        self.auth_token = (
            auth_token
            if auth_token is not None
            else os.environ.get("CAQR_AUTH_TOKEN") or None
        )
        self.tls_cert = tls_cert
        self.tls_key = tls_key
        self.service = service if service is not None else CompileService()
        self.stats = self.service.stats
        self.host = host
        self.port = port
        self.max_workers = max_workers or self.service.max_workers
        self.max_concurrency = max_concurrency
        self.max_body = max_body
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self._envelope = (
            _EnvelopeCache(envelope_cache_entries)
            if envelope_cache_entries
            else None
        )
        if isinstance(request_log, RequestLog):
            self._request_log: Optional[RequestLog] = request_log
            self._owns_log = False
        elif isinstance(request_log, str):
            self._request_log = RequestLog(request_log)
            self._owns_log = True
        else:
            self._request_log = RequestLog.from_env()
            self._owns_log = self._request_log is not None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._idle_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._inflight = 0
        self._active_compiles = 0
        self._draining = False
        self._started_monotonic: Optional[float] = None
        self._domain_stats: Dict[str, ServiceStats] = {}
        self._domain_lock = threading.Lock()

    @property
    def scheme(self) -> str:
        return "https" if self.tls_cert else "http"

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "CompileServer":
        """Bind the listening socket (resolving ``port=0``) and the pool."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._idle_event = asyncio.Event()
        self._idle_event.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="caqr-compile"
        )
        sslctx = None
        if self.tls_cert:
            sslctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            sslctx.load_cert_chain(self.tls_cert, self.tls_key)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=_MAX_HEADER_BYTES,
            ssl=sslctx,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        return self

    def uptime_s(self) -> float:
        """Seconds since the listening socket bound (0.0 before start)."""
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    async def serve(self, install_signal_handlers: bool = True) -> None:
        """Serve until :meth:`request_shutdown` fires, then drain and stop."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix event loops
        await self._stop_event.wait()
        await self.drain()

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (call from the loop thread / a signal)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def request_shutdown_threadsafe(self) -> None:
        """Thread-safe :meth:`request_shutdown` (for embedding threads)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, close everything."""
        if self._draining:
            return
        self._draining = True
        self.stats.count("drains")
        if self._server is not None:
            self._server.close()
        try:
            await asyncio.wait_for(self._idle_event.wait(), self.drain_timeout)
        except asyncio.TimeoutError:
            self.stats.count("drain_timeouts")
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            try:
                # 3.12+ wait_closed also waits for connection handlers;
                # the writers above are closed, so this is quick — but
                # never let a stuck handler wedge the shutdown
                await asyncio.wait_for(self._server.wait_closed(), 2.0)
            except asyncio.TimeoutError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False)
        self.service.close()
        if self._owns_log and self._request_log is not None:
            self._request_log.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self.stats.count("http_connections")
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), _KEEPALIVE_TIMEOUT
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    asyncio.TimeoutError,
                    ConnectionError,
                ):
                    break
                parsed = self._parse_head(head)
                if parsed is None:
                    await self._write(
                        writer,
                        400,
                        error_to_wire("bad_request", "malformed HTTP request"),
                        {},
                        keep_alive=False,
                    )
                    break
                method, path, headers = parsed
                try:
                    content_length = int(headers.get("content-length", "0"))
                except ValueError:
                    content_length = -1
                if content_length < 0:
                    await self._write(
                        writer,
                        400,
                        error_to_wire("bad_request", "bad Content-Length"),
                        {},
                        keep_alive=False,
                    )
                    break
                if content_length > self.max_body:
                    self.stats.count("http_rejected")
                    await self._write(
                        writer,
                        413,
                        error_to_wire(
                            "payload_too_large",
                            f"body of {content_length} bytes exceeds the "
                            f"{self.max_body}-byte limit",
                        ),
                        {},
                        keep_alive=False,
                    )
                    break
                body = b""
                if content_length:
                    try:
                        body = await reader.readexactly(content_length)
                    except (asyncio.IncompleteReadError, ConnectionError):
                        break
                status, payload, extra = await self._dispatch(
                    method, path, headers, body
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                    and not self._draining
                )
                try:
                    await self._write(writer, status, payload, extra, keep_alive)
                except ConnectionError:
                    break
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    # shared with the gateway (repro.service.net.http1)
    _parse_head = staticmethod(parse_head)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], bytes],
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        # payload is either a JSON-compatible dict or a pre-encoded body
        # (the envelope fast path and the Prometheus text endpoint)
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = json.dumps(payload).encode()
        content_type = "application/json"
        passthrough = []
        for name, value in extra_headers.items():
            if name.lower() == "content-type":
                content_type = value
            else:
                passthrough.append((name, value))
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: " + ("keep-alive" if keep_alive else "close"),
        ]
        lines.extend(f"{name}: {value}" for name, value in passthrough)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        start = time.perf_counter()
        self._inflight += 1
        self._idle_event.clear()
        self.stats.count("http_requests")
        self.stats.count(f"http:{path}")
        try:
            reply = await self._route(method, path, headers, body)
        except WireError as exc:
            self.stats.count("http_errors")
            reply = 400, error_to_wire("bad_request", str(exc)), {}
        except Exception as exc:  # never leak a traceback as a hung socket
            self.stats.count("http_errors")
            reply = (
                500,
                error_to_wire("internal", f"{type(exc).__name__}: {exc}"),
                {},
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle_event.set()
        if reply[0] >= 400:
            self.stats.count("http_errors")
        elapsed = time.perf_counter() - start
        self.stats.observe("request_latency", elapsed)
        if path in _ROUTES:
            self.stats.observe(f"request_latency:{path}", elapsed)
        self._log_request(method, path, reply, elapsed)
        return reply

    def _log_request(
        self, method: str, path: str, reply: _Reply, elapsed: float
    ) -> None:
        log = self._request_log
        if log is None:
            return
        status, payload, extra = reply
        error = None
        if status >= 400 and isinstance(payload, dict):
            detail = payload.get("error")
            if isinstance(detail, dict):
                error = detail.get("code")
        log.log(
            method=method,
            path=path,
            status=status,
            latency_ms=round(elapsed * 1000.0, 3),
            fingerprint=extra.get("X-CaQR-Fingerprint"),
            cache=extra.get("X-CaQR-Cache"),
            strategy=extra.get("X-CaQR-Strategy"),
            error=error,
        )

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        if path == "/v1/health":
            # auth-exempt: load balancers and the gateway's membership
            # prober must see liveness without holding credentials
            if method != "GET":
                return self._method_not_allowed(method, path)
            return (
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "status": "draining" if self._draining else "ok",
                    "draining": self._draining,
                    "uptime_s": self.uptime_s(),
                    "inflight": self._inflight,
                },
                {},
            )
        if self.auth_token is not None:
            supplied = headers.get("authorization", "")
            if supplied != f"Bearer {self.auth_token}":
                self.stats.count("http_unauthorized")
                return (
                    401,
                    error_to_wire(
                        "unauthorized", "missing or invalid bearer token"
                    ),
                    {},
                )
        if path == "/v1/metrics":
            # answered mid-drain too: scrapes must survive a rollout
            if method != "GET":
                return self._method_not_allowed(method, path)
            return (
                200,
                self._metrics_body(),
                {"Content-Type": _PROMETHEUS_CONTENT_TYPE},
            )
        if self._draining:
            self.stats.count("http_rejected")
            return (
                503,
                error_to_wire("shutting_down", "server is draining"),
                {},
            )
        if path == "/v1/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, self._stats_payload(), {}
        if path == "/v1/compile":
            if method != "POST":
                return self._method_not_allowed(method, path)
            cache_only = headers.get(CACHE_ONLY_HEADER, "") not in ("", "0")
            return await self._handle_compile(body, cache_only=cache_only)
        if path == "/v1/compile_batch":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._handle_batch(body)
        if path == "/v1/cache/invalidate":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return self._handle_invalidate(body)
        if path == "/v1/cache/fill":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._handle_fill(body)
        return 404, error_to_wire("not_found", f"no route {method} {path}"), {}

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> _Reply:
        return (
            405,
            error_to_wire("method_not_allowed", f"{method} not allowed on {path}"),
            {},
        )

    def _stats_payload(self) -> Dict[str, Any]:
        disk = self.service.cache.disk
        shards = disk.refresh_shard_gauges() if disk is not None else {}
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "stats": self.stats.to_dict(),
            "shards": shards,
            "uptime_s": self.uptime_s(),
            "inflight": self._inflight,
            "draining": self._draining,
        }

    def _metrics_body(self) -> bytes:
        """The ``GET /v1/metrics`` Prometheus exposition body."""
        disk = self.service.cache.disk
        if disk is not None:
            disk.refresh_shard_gauges()
        snapshot = ServiceStats()
        snapshot.merge(self.stats)
        # fold in the process-wide portfolio service's win rates (the
        # strategy="portfolio" lanes report there) without creating it
        from repro.service.portfolio import peek_default_portfolio_service

        portfolio = peek_default_portfolio_service()
        if portfolio is not None and portfolio.stats is not self.stats:
            snapshot.merge(portfolio.stats)
        extra = {
            "uptime_seconds": self.uptime_s(),
            "inflight": float(self._inflight),
            "draining": 1.0 if self._draining else 0.0,
        }
        if self._envelope is not None:
            extra["envelope_entries"] = float(len(self._envelope))
        body = render_prometheus(snapshot, extra_gauges=extra)
        # engine stats carried by server-side cold compiles, one prefix
        # per domain (caqr_route_*, caqr_sim_*, caqr_reuse_eval_*)
        with self._domain_lock:
            domains = {
                domain: self._snapshot_domain(sink)
                for domain, sink in self._domain_stats.items()
            }
        for domain in sorted(domains):
            body += render_prometheus(domains[domain], prefix=f"caqr_{domain}")
        return body.encode()

    @staticmethod
    def _snapshot_domain(sink: ServiceStats) -> ServiceStats:
        copy = ServiceStats()
        copy.merge(sink)
        return copy

    @staticmethod
    def _json_body(body: bytes) -> Any:
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not JSON: {exc}") from exc

    # -- compile endpoints -----------------------------------------------------

    async def _handle_compile(self, body: bytes, cache_only: bool = False) -> _Reply:
        request = request_from_wire(self._json_body(body))
        if cache_only:
            # gateway peer-fill probe: warm envelope or 404, never a
            # compile (and never an admission slot — this is a lookup)
            outcome, reply = await self._offload(self._cache_only_encoded, request)
            if outcome is None:
                return reply
            encoded, key = outcome
            if encoded is None:
                self.stats.count("cache_only_misses")
                return (
                    404,
                    error_to_wire("cache_miss", f"no cached entry for {key}"),
                    {"X-CaQR-Fingerprint": key},
                )
            self.stats.count("cache_only_hits")
            return (
                200,
                encoded,
                {
                    "X-CaQR-Fingerprint": key,
                    "X-CaQR-Cache": "hit",
                    "X-CaQR-Strategy": request.strategy,
                },
            )
        admitted, reply = self._admit()
        if not admitted:
            return reply
        try:
            outcome, reply = await self._offload(self._compile_encoded, request)
            if outcome is None:
                return reply
            encoded, key, status = outcome
        finally:
            self._active_compiles -= 1
        headers = {
            "X-CaQR-Fingerprint": key,
            "X-CaQR-Cache": status,
            "X-CaQR-Strategy": request.strategy,
        }
        return 200, encoded, headers

    def _cache_only_encoded(self, request) -> Tuple[Optional[bytes], str]:
        """Worker-thread cache probe: ``(encoded hit body | None, key)``."""
        with self.stats.timed("fingerprint"):
            key = request.fingerprint()
        shard = request.shard()
        envelope = self._envelope
        if envelope is not None:
            body = envelope.get(key)
            if body is not None:
                if self.service.cache.get(key, shard) is not None:
                    return body, key
                envelope.invalidate(key)
        entry = self.service._lookup_entry(key, shard)
        if entry is None:
            return None, key
        _, report = entry
        with self.stats.timed("serialize"):
            body = json.dumps(response_to_wire(key, "hit", report)).encode()
        if envelope is not None:
            envelope.put(key, body)
        return body, key

    def _compile_encoded(self, request) -> Tuple[bytes, str, str]:
        """Worker-thread compile returning the encoded response body.

        Warm path: a cached envelope whose underlying cache entry still
        exists is returned as raw bytes — no ``report_to_dict``, no JSON
        encoding, no report deserialization at all (``envelope_hits``).
        Otherwise the request runs through ``compile_classified`` and a
        genuine hit's body is stored for the next repeat.
        """
        envelope = self._envelope
        key: Optional[str] = None
        if envelope is not None:
            with self.stats.timed("fingerprint"):
                key = request.fingerprint()
            body = envelope.get(key)
            if body is not None:
                # the envelope is only as alive as the cache entry
                # behind it (TTL expiry, invalidation, clear)
                if self.service.cache.get(key, request.shard()) is not None:
                    self.stats.count("requests")
                    self.stats.count("hits")
                    self.stats.count("envelope_hits")
                    return body, key, "hit"
                envelope.invalidate(key)
        report, key, status = self.service.compile_classified(
            request, fingerprint=key
        )
        if status == "miss":
            self._absorb_report_stats(report)
        with self.stats.timed("serialize"):
            body = json.dumps(response_to_wire(key, status, report)).encode()
        if envelope is not None and status == "hit":
            # store only genuine-hit bodies: they are exactly what the
            # fast path must replay, from_cache flag included
            envelope.put(key, body)
            self.stats.count("envelope_stores")
        return body, key, status

    async def _handle_batch(self, body: bytes) -> _Reply:
        payload = self._json_body(body)
        if not isinstance(payload, dict):
            raise WireError("batch envelope must be a JSON object")
        if payload.get("schema") != WIRE_SCHEMA_VERSION:
            raise WireError(
                f"unsupported wire schema {payload.get('schema')!r}"
            )
        members = payload.get("requests")
        if not isinstance(members, list):
            raise WireError("batch envelope needs a requests list")
        requests = [request_from_wire(member) for member in members]
        parallel = bool(payload.get("parallel", True))
        admitted, reply = self._admit()
        if not admitted:
            return reply
        try:
            outcome, reply = await self._offload(
                self.service.compile_batch, requests, parallel
            )
            if outcome is None:
                return reply
        finally:
            self._active_compiles -= 1
        results = []
        for request, report in zip(requests, outcome):
            status = "hit" if report.from_cache else "miss"
            if status == "miss":
                self._absorb_report_stats(report)
            results.append(
                response_to_wire(request.fingerprint(), status, report)
            )
        return 200, {"schema": WIRE_SCHEMA_VERSION, "results": results}, {}

    def _admit(self) -> Tuple[bool, Optional[_Reply]]:
        """Admission control: one slot per compile/batch request."""
        if self._active_compiles >= self.max_concurrency:
            self.stats.count("http_rejected")
            return False, (
                429,
                error_to_wire(
                    "overloaded",
                    f"{self._active_compiles} compiles already admitted "
                    f"(max_concurrency={self.max_concurrency})",
                ),
                {"Retry-After": "1"},
            )
        self._active_compiles += 1
        return True, None

    async def _offload(self, func, *args) -> Tuple[Optional[Any], Optional[_Reply]]:
        """Run *func* on the worker pool under the request timeout."""
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, func, *args)
        try:
            return await asyncio.wait_for(future, self.request_timeout), None
        except asyncio.TimeoutError:
            self.stats.count("http_timeouts")
            # the worker thread cannot be killed; keep its eventual
            # outcome retrieved so the loop never logs a stray error
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            return None, (
                504,
                error_to_wire(
                    "timeout",
                    f"compile exceeded {self.request_timeout:.0f}s and is "
                    "still executing server-side; do not retry",
                ),
                {},
            )
        except ReproError as exc:
            # deterministic compiler rejection (e.g. infeasible budget)
            return None, (422, error_to_wire("compile_error", str(exc)), {})

    async def _handle_fill(self, body: bytes) -> _Reply:
        """``POST /v1/cache/fill``: replay a peer's encoded envelope.

        The gateway calls this after a peer-fill so the entry's *new*
        ring owner holds it warm without ever compiling.  The payload is
        ``{"schema", "shard", "envelope": <response envelope>}`` — the
        envelope is validated through the normal response codec, so a
        corrupt peer body is a ``bad_request``, never a poisoned cache.
        """
        payload = self._json_body(body)
        if not isinstance(payload, dict):
            raise WireError("fill envelope must be a JSON object")
        if payload.get("schema") != WIRE_SCHEMA_VERSION:
            raise WireError(f"unsupported wire schema {payload.get('schema')!r}")
        shard = payload.get("shard")
        if not isinstance(shard, str) or not shard:
            raise WireError("fill envelope needs the entry's shard")
        report, fingerprint, _ = response_from_wire(payload.get("envelope"))
        outcome, reply = await self._offload(
            self._store_fill, fingerprint, shard, report, payload["envelope"]
        )
        if outcome is None:
            return reply
        return (
            200,
            {"schema": WIRE_SCHEMA_VERSION, "fingerprint": fingerprint, "filled": True},
            {"X-CaQR-Fingerprint": fingerprint},
        )

    def _store_fill(self, fingerprint, shard, report, envelope) -> bool:
        with self.stats.timed("serialize"):
            text = dumps_entry(fingerprint, report)
        with self.stats.timed("store"):
            self.service.cache.put(fingerprint, text, shard)
        if self._envelope is not None:
            # the peer served a hit envelope: exactly what the warm fast
            # path must replay for the next repeat of this fingerprint
            hit_envelope = dict(envelope)
            hit_envelope["cache_status"] = "hit"
            self._envelope.put(
                fingerprint, json.dumps(hit_envelope).encode()
            )
        self.stats.count("cache_fills")
        return True

    def _absorb_report_stats(self, report) -> None:
        """Fold a cold compile's engine stats into the metrics export."""
        for domain, attr in _REPORT_STAT_DOMAINS:
            source = getattr(report, attr, None)
            if source is None:
                continue
            with self._domain_lock:
                sink = self._domain_stats.get(domain)
                if sink is None:
                    sink = self._domain_stats[domain] = ServiceStats()
                for name, value in getattr(source, "counters", {}).items():
                    sink.count(name, value)
                for name, value in getattr(source, "timers", {}).items():
                    sink.add_time(name, value)
                for name, value in getattr(source, "values", {}).items():
                    sink.add_value(name, value)

    def _handle_invalidate(self, body: bytes) -> _Reply:
        payload = self._json_body(body)
        if not isinstance(payload, dict):
            raise WireError("invalidate envelope must be a JSON object")
        if payload.get("all"):
            self.service.clear()
            if self._envelope is not None:
                self._envelope.clear()
            self.stats.count("invalidations")
            return 200, {"schema": WIRE_SCHEMA_VERSION, "cleared": True}, {}
        fingerprint = payload.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise WireError("invalidate envelope needs a fingerprint (or all)")
        removed = self.service.invalidate(fingerprint)
        if self._envelope is not None and self._envelope.invalidate(fingerprint):
            self.stats.count("envelope_invalidations")
        return (
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "invalidated": bool(removed),
            },
            {},
        )


class ServerHandle:
    """A :class:`CompileServer` running on a daemon thread (tests, benches)."""

    def __init__(self, server: CompileServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def url(self) -> str:
        return f"{self.server.scheme}://{self.server.host}:{self.server.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join its thread."""
        self.server.request_shutdown_threadsafe()
        self.thread.join(timeout)


def start_server_thread(ready_timeout: float = 30.0, **kwargs) -> ServerHandle:
    """Run a :class:`CompileServer` on a background thread; wait until bound.

    Keyword arguments go to the :class:`CompileServer` constructor.  Pass
    ``port=0`` to grab a free port (the handle's :attr:`~ServerHandle.url`
    reflects the real one).
    """
    kwargs.setdefault("port", 0)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            server = CompileServer(**kwargs)
            await server.start()
            box["server"] = server
            ready.set()
            await server.serve(install_signal_handlers=False)

        try:
            asyncio.run(_main())
        except BaseException as exc:  # surface startup failures to the caller
            box.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=_run, daemon=True, name="caqr-server")
    thread.start()
    if not ready.wait(ready_timeout):
        raise ServiceError("compile server did not start in time")
    if "error" in box:
        raise ServiceError(f"compile server failed to start: {box['error']}")
    return ServerHandle(box["server"], thread)


def run_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    ttl: Optional[float] = None,
    max_workers: Optional[int] = None,
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
    max_body: int = DEFAULT_MAX_BODY,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    workers_mode: Optional[str] = None,
    disk_entries: Optional[int] = None,
    disk_bytes: Optional[int] = None,
    request_log: Optional[str] = None,
    auth_token: Optional[str] = None,
    tls_cert: Optional[str] = None,
    tls_key: Optional[str] = None,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Prints ``serving on <host>:<port>`` once bound (machine-parseable —
    the CI smoke script and process supervisors key on it), then runs
    until SIGTERM/SIGINT, drains, and returns 0.  With a ``cache_dir``
    the portfolio win-rate state persists next to the disk cache
    (``portfolio_state.json``) so self-tuning survives restarts.
    """
    service = CompileService(
        cache_dir=cache_dir,
        ttl=ttl,
        workers_mode=workers_mode,
        disk_entries=disk_entries,
        disk_bytes=disk_bytes,
    )
    if cache_dir:
        from repro.service.portfolio import set_default_portfolio_state_path

        set_default_portfolio_state_path(
            os.path.join(
                os.path.abspath(os.path.expanduser(cache_dir)),
                "portfolio_state.json",
            )
        )
    server = CompileServer(
        service=service,
        host=host,
        port=port,
        max_workers=max_workers,
        max_concurrency=max_concurrency,
        max_body=max_body,
        request_timeout=request_timeout,
        drain_timeout=drain_timeout,
        request_log=request_log,
        auth_token=auth_token,
        tls_cert=tls_cert,
        tls_key=tls_key,
    )

    async def _main() -> None:
        await server.start()
        print(f"serving on {server.host}:{server.port}", flush=True)
        await server.serve(install_signal_handlers=True)
        print("server drained and stopped", flush=True)

    asyncio.run(_main())
    return 0
