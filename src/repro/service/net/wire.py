"""Wire protocol for the networked compile service.

Everything that crosses the HTTP boundary is a **schema-versioned JSON
envelope** defined here, so :mod:`repro.service.net.server` and
:mod:`repro.service.net.client` never hand-roll payload shapes and a
stale peer fails loudly instead of guessing:

* request envelope — a :class:`~repro.service.service.CompileRequest`
  as data: the target (lossless ``circuit_to_dict`` record, or an
  explicit node/edge list for QAOA graphs), the backend snapshot
  (``backend_to_json`` payload, bit-exact floats), and every knob.  The
  server re-fingerprints the decoded request, so client and server
  always agree on the cache key by construction;
* response envelope — the fingerprint, the cache status
  (``hit`` / ``miss`` / ``inflight``), and the lossless
  ``report_to_dict`` record from :mod:`repro.service.serialization`;
* error envelope — a typed code from :data:`ERROR_CODES` plus a
  human-readable message.  Clients branch on the *code* (retry policy,
  exception mapping), never on the message text.

Anything malformed raises :class:`WireError` — the server maps it to a
``bad_request`` error envelope, the client to a
:class:`~repro.exceptions.RemoteServiceError`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

import networkx as nx

from repro.compile_api import CompileReport
from repro.exceptions import ServiceError
from repro.hardware.serialization import backend_from_json, backend_to_json
from repro.service.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.service.service import CompileRequest

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "CACHE_STATUSES",
    "ERROR_CODES",
    "WireError",
    "graph_to_dict",
    "graph_from_dict",
    "request_to_wire",
    "request_from_wire",
    "response_to_wire",
    "response_from_wire",
    "error_to_wire",
    "error_from_wire",
]

# v2: portfolio knobs (strategy / objective / portfolio_workers) joined
# the request envelope; the report record gained the portfolio fields
# v3: calib_bands joined the request envelope (drift-banded fingerprints);
# the report record gained sim_stats / eval_stats
# v4: the report record gained chain_stats (the chain-engine lane)
WIRE_SCHEMA_VERSION = 4

#: Cache-status labels carried in the ``X-CaQR-Cache`` header and the
#: response envelope: ``miss`` — this request paid for the compile;
#: ``hit`` — served from a warm tier; ``inflight`` — folded onto an
#: identical compilation that another request had already started.
CACHE_STATUSES = ("hit", "miss", "inflight")

#: Typed error codes an error envelope may carry.  Retryable for a
#: client: ``overloaded`` (429), ``shutting_down`` (503), ``internal``
#: (500), ``connect_error`` (no response at all).  Never retryable:
#: ``timeout`` — the server reports the compile *still executing*
#: server-side, so a retry would only pile on; ``bad_request`` /
#: ``unsupported_schema`` / ``payload_too_large`` / ``not_found`` /
#: ``method_not_allowed`` — resending the same bytes cannot succeed;
#: ``compile_error`` — the compiler itself rejected the request
#: (deterministic, e.g. an infeasible qubit budget); ``unauthorized`` —
#: the bearer token is missing or wrong (fix credentials, not retries).
#: Fleet-specific: ``cache_miss`` — a cache-only probe
#: (``X-CaQR-Cache-Only``) found nothing, the gateway falls back to a
#: real compile; ``no_backend`` — the gateway has every backend marked
#: down (retryable: a re-probe may bring one back).
ERROR_CODES = frozenset(
    {
        "bad_request",
        "unsupported_schema",
        "payload_too_large",
        "not_found",
        "method_not_allowed",
        "compile_error",
        "timeout",
        "overloaded",
        "shutting_down",
        "internal",
        "connect_error",
        "unauthorized",
        "cache_miss",
        "no_backend",
    }
)


class WireError(ServiceError):
    """A payload that does not parse as a valid protocol envelope."""


def graph_to_dict(graph: nx.Graph) -> Dict[str, Any]:
    """Lossless record of a QAOA problem graph (int nodes, weighted edges)."""
    nodes = []
    for node in graph.nodes():
        if not isinstance(node, int):
            raise WireError(f"graph nodes must be ints, got {node!r}")
        nodes.append(node)
    edges = []
    for u, v, data in graph.edges(data=True):
        weight = data.get("weight")
        edges.append([min(u, v), max(u, v), weight])
    return {"nodes": sorted(nodes), "edges": sorted(edges, key=lambda e: e[:2])}


def graph_from_dict(payload: Dict[str, Any]) -> nx.Graph:
    """Inverse of :func:`graph_to_dict`."""
    try:
        graph = nx.Graph()
        graph.add_nodes_from(int(node) for node in payload["nodes"])
        for u, v, weight in payload["edges"]:
            if weight is None:
                graph.add_edge(int(u), int(v))
            else:
                graph.add_edge(int(u), int(v), weight=float(weight))
        return graph
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed graph payload: {exc}") from exc


def request_to_wire(request: CompileRequest) -> Dict[str, Any]:
    """``CompileRequest`` -> request envelope (JSON-compatible dict)."""
    if isinstance(request.target, nx.Graph):
        target_kind: str = "graph"
        target: Dict[str, Any] = graph_to_dict(request.target)
    else:
        target_kind = "circuit"
        target = circuit_to_dict(request.target)
    backend = (
        json.loads(backend_to_json(request.backend))
        if request.backend is not None
        else None
    )
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "target_kind": target_kind,
        "target": target,
        "backend": backend,
        "knobs": {
            "mode": request.mode,
            "qubit_limit": request.qubit_limit,
            "reset_style": request.reset_style,
            "seed": request.seed,
            "auto_commuting": request.auto_commuting,
            "incremental": request.incremental,
            "parallel": request.parallel,
            "strategy": request.strategy,
            "objective": request.objective,
            "portfolio_workers": request.portfolio_workers,
            # ship the *resolved* band count: the sender's environment is
            # authoritative, so client, server, and gateway cannot disagree
            # on the digest a request keys under
            "calib_bands": request.resolved_calib_bands(),
        },
    }


def request_from_wire(payload: Dict[str, Any]) -> CompileRequest:
    """Request envelope -> ``CompileRequest`` (validating everything)."""
    if not isinstance(payload, dict):
        raise WireError("request envelope must be a JSON object")
    if payload.get("schema") != WIRE_SCHEMA_VERSION:
        raise WireError(
            f"unsupported wire schema {payload.get('schema')!r} "
            f"(this server speaks {WIRE_SCHEMA_VERSION})"
        )
    kind = payload.get("target_kind")
    try:
        if kind == "graph":
            target = graph_from_dict(payload["target"])
        elif kind == "circuit":
            target = circuit_from_dict(payload["target"])
        else:
            raise WireError(f"unknown target_kind {kind!r}")
        backend = (
            backend_from_json(json.dumps(payload["backend"]))
            if payload.get("backend") is not None
            else None
        )
        knobs = payload.get("knobs") or {}
        qubit_limit = knobs.get("qubit_limit")
        objective = knobs.get("objective")
        portfolio_workers = knobs.get("portfolio_workers")
        calib_bands = knobs.get("calib_bands")
        return CompileRequest(
            target=target,
            backend=backend,
            mode=str(knobs.get("mode", "min_depth")),
            qubit_limit=int(qubit_limit) if qubit_limit is not None else None,
            reset_style=str(knobs.get("reset_style", "cif")),
            seed=int(knobs.get("seed", 11)),
            auto_commuting=bool(knobs.get("auto_commuting", True)),
            incremental=bool(knobs.get("incremental", True)),
            parallel=bool(knobs.get("parallel", True)),
            strategy=str(knobs.get("strategy", "auto")),
            objective=str(objective) if objective is not None else None,
            portfolio_workers=(
                int(portfolio_workers) if portfolio_workers is not None else None
            ),
            # the sender resolved its environment already; an absent value
            # means "banding off", never "re-resolve against *our* env"
            calib_bands=int(calib_bands) if calib_bands is not None else 0,
        )
    except WireError:
        raise
    except Exception as exc:  # malformed circuit/backend/knob records
        raise WireError(f"malformed request envelope: {exc}") from exc


def response_to_wire(
    fingerprint: str, cache_status: str, report: CompileReport
) -> Dict[str, Any]:
    """Compile result -> response envelope."""
    if cache_status not in CACHE_STATUSES:
        raise WireError(f"unknown cache status {cache_status!r}")
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "cache_status": cache_status,
        "report": report_to_dict(report),
    }


def response_from_wire(payload: Dict[str, Any]) -> Tuple[CompileReport, str, str]:
    """Response envelope -> ``(report, fingerprint, cache_status)``.

    ``report.from_cache`` follows the service contract: ``True`` unless
    this request itself paid for the compilation (``miss``).
    """
    if not isinstance(payload, dict):
        raise WireError("response envelope must be a JSON object")
    if payload.get("schema") != WIRE_SCHEMA_VERSION:
        raise WireError(f"unsupported wire schema {payload.get('schema')!r}")
    status = payload.get("cache_status")
    if status not in CACHE_STATUSES:
        raise WireError(f"unknown cache status {status!r}")
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, str) or not fingerprint:
        raise WireError("response envelope missing fingerprint")
    try:
        report = report_from_dict(payload["report"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed response envelope: {exc}") from exc
    report.from_cache = status != "miss"
    return report, fingerprint, status


def error_to_wire(code: str, message: str) -> Dict[str, Any]:
    """Typed error -> error envelope."""
    if code not in ERROR_CODES:
        raise WireError(f"unknown error code {code!r}")
    return {
        "schema": WIRE_SCHEMA_VERSION,
        "error": {"code": code, "message": message},
    }


def error_from_wire(payload: Any) -> Tuple[str, str]:
    """Error envelope -> ``(code, message)``; tolerant of junk bodies.

    A proxy or crashed peer may answer with HTML or nothing at all, so
    unrecognisable bodies decode to ``("internal", <best effort text>)``
    rather than raising — the client still needs a code to branch on.
    """
    if isinstance(payload, dict):
        error = payload.get("error")
        if isinstance(error, dict):
            code = error.get("code")
            message = str(error.get("message", ""))
            if code in ERROR_CODES:
                return code, message
    return "internal", str(payload)[:200]
