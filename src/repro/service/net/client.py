"""Blocking HTTP client for the networked compile service.

:class:`RemoteCompileService` speaks the :mod:`repro.service.net.wire`
protocol to a ``repro serve`` instance and exposes the same
``compile`` / ``compile_request`` / ``compile_classified`` /
``compile_batch`` surface as the in-process
:class:`~repro.service.service.CompileService`, so the two are drop-in
interchangeable behind ``caqr_compile(cache=...)`` — pass a URL instead
of a directory and every process on the machine (or the cluster) shares
one cache and one in-flight dedup table.

Transport behaviour:

* **connection reuse** — one keep-alive ``http.client.HTTPConnection``
  per calling thread (``threading.local``), re-established transparently
  when the server closes it;
* **retry with jittered exponential backoff** — connect errors and the
  retryable server codes (``overloaded`` 429, ``shutting_down`` 503,
  ``internal`` 500) are retried up to ``retries`` times.  A ``timeout``
  (504) answer is **never** retried: the server reports that the compile
  is *still executing* server-side, so resending would only pile more
  work onto the same fingerprint.  4xx envelopes (``bad_request``,
  ``compile_error``, ...) are deterministic and fail immediately;
* **typed failures** — anything that fails for good raises
  :class:`~repro.exceptions.RemoteServiceError` carrying the wire error
  code and HTTP status.

Everything here is stdlib only (``http.client``); the client never
imports the server or asyncio.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import ssl
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.compile_api import CompileReport
from repro.exceptions import RemoteServiceError
from repro.hardware.backends import Backend
from repro.service.net.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    error_from_wire,
    request_to_wire,
    response_from_wire,
)
from repro.service.service import CompileRequest

__all__ = ["RemoteCompileService", "RETRYABLE_CODES"]

#: Error codes worth a retry: the request never executed (connect
#: failures, admission-control rejections, drain refusals) or died in a
#: way a fresh attempt may dodge (``internal``).  ``timeout`` is absent
#: on purpose — the server owns a still-running compile for that key.
RETRYABLE_CODES = frozenset(
    {"connect_error", "overloaded", "shutting_down", "internal", "no_backend"}
)

_CONNECT_ERRORS = (
    ConnectionError,
    http.client.HTTPException,
    TimeoutError,
    OSError,
)


class RemoteCompileService:
    """Client-side twin of :class:`~repro.service.service.CompileService`.

    Args:
        url: base URL of a ``repro serve`` instance
            (``http://host:port``; any path suffix is ignored).
        timeout: socket timeout per HTTP exchange in seconds.  Cover the
            worst cold compile you expect — a warm hit answers in
            milliseconds but the first request for a heavy circuit holds
            the socket until the server finishes or times out itself.
        retries: additional attempts after the first, for retryable
            failures only.
        backoff: base delay in seconds; attempt *n* sleeps
            ``min(max_backoff, backoff * 2**n)`` scaled by 0.5–1.0 jitter
            so a herd of clients does not re-arrive in lockstep.
        token: bearer token sent as ``Authorization: Bearer <token>``
            on every request (a server started with ``--auth-token``
            rejects anything else with ``401 unauthorized``).  ``None``
            honours ``$CAQR_AUTH_TOKEN``.
        tls_ca: CA bundle (PEM path) to verify an ``https://`` server
            against — the knob for self-signed fleet certificates.
        tls_insecure: skip certificate verification entirely (tests and
            lab setups only).
    """

    def __init__(
        self,
        url: str,
        timeout: float = 600.0,
        retries: int = 3,
        backoff: float = 0.2,
        max_backoff: float = 5.0,
        token: Optional[str] = None,
        tls_ca: Optional[str] = None,
        tls_insecure: bool = False,
    ):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", "https", ""):
            raise RemoteServiceError(
                f"unsupported scheme {parts.scheme!r} "
                "(stdlib client speaks http/https)",
                code="bad_request",
            )
        if not parts.hostname:
            raise RemoteServiceError(f"no host in url {url!r}", code="bad_request")
        self.scheme = parts.scheme or "http"
        self.host = parts.hostname
        self.port = parts.port or (443 if self.scheme == "https" else 80)
        self.url = f"{self.scheme}://{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.token = (
            token if token is not None else os.environ.get("CAQR_AUTH_TOKEN") or None
        )
        self._ssl_context: Optional[ssl.SSLContext] = None
        if self.scheme == "https":
            context = ssl.create_default_context(cafile=tls_ca)
            if tls_insecure:
                context.check_hostname = False
                context.verify_mode = ssl.CERT_NONE
            self._ssl_context = context
        self._local = threading.local()
        self._rng = random.Random(0x5EED)
        self._rng_lock = threading.Lock()

    # -- transport -------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self.scheme == "https":
                conn = http.client.HTTPSConnection(
                    self.host,
                    self.port,
                    timeout=self.timeout,
                    context=self._ssl_context,
                )
            else:
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            finally:
                self._local.conn = None

    def close(self) -> None:
        """Close this thread's keep-alive connection (idempotent)."""
        self._drop_connection()

    def __enter__(self) -> "RemoteCompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _sleep_before(self, attempt: int) -> None:
        with self._rng_lock:
            jitter = 0.5 + self._rng.random() / 2
        delay = min(self.max_backoff, self.backoff * (2**attempt)) * jitter
        if delay > 0:
            threading.Event().wait(delay)

    def _exchange_once(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, str], Any]:
        """One request/response on this thread's connection."""
        conn = self._connection()
        headers = {"Content-Type": "application/json", "Connection": "keep-alive"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        resp_headers = {name.lower(): value for name, value in response.getheaders()}
        if resp_headers.get("connection", "").lower() == "close":
            self._drop_connection()
        try:
            payload = json.loads(raw) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = raw.decode("latin-1", "replace")
        return response.status, resp_headers, payload

    def _exchange(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, str], Any]:
        """Request with retry policy applied; returns the first final answer."""
        body = json.dumps(payload).encode() if payload is not None else None
        last: Optional[RemoteServiceError] = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep_before(attempt - 1)
            try:
                status, headers, answer = self._exchange_once(method, path, body)
            except _CONNECT_ERRORS as exc:
                # the connection is toast either way; a retry dials fresh
                self._drop_connection()
                last = RemoteServiceError(
                    f"{method} {self.url}{path}: {type(exc).__name__}: {exc}",
                    code="connect_error",
                )
                continue
            if status < 400:
                return status, headers, answer
            code, message = error_from_wire(answer)
            error = RemoteServiceError(
                f"{method} {path} -> {status} {code}: {message}",
                code=code,
                status=status,
            )
            if code not in RETRYABLE_CODES:
                raise error
            last = error
        assert last is not None
        raise last

    # -- the CompileService surface --------------------------------------------

    def compile(
        self,
        target: Union[QuantumCircuit, nx.Graph],
        backend: Optional[Backend] = None,
        mode: str = "min_depth",
        qubit_limit: Optional[int] = None,
        reset_style: str = "cif",
        seed: int = 11,
        auto_commuting: bool = True,
        incremental: bool = True,
        parallel: bool = True,
        strategy: str = "auto",
        objective: Optional[str] = None,
        portfolio_workers: Optional[int] = None,
        calib_bands: Optional[int] = None,
    ) -> CompileReport:
        """Remote cached ``caqr_compile`` — same signature as the local one."""
        return self.compile_request(
            CompileRequest(
                target=target,
                backend=backend,
                mode=mode,
                qubit_limit=qubit_limit,
                reset_style=reset_style,
                seed=seed,
                auto_commuting=auto_commuting,
                incremental=incremental,
                parallel=parallel,
                strategy=strategy,
                objective=objective,
                portfolio_workers=portfolio_workers,
                calib_bands=calib_bands,
            )
        )

    def compile_request(self, request: CompileRequest) -> CompileReport:
        """Serve one :class:`CompileRequest` through the remote cache."""
        return self.compile_classified(request)[0]

    def compile_classified(
        self, request: CompileRequest
    ) -> Tuple[CompileReport, str, str]:
        """Remote twin of ``CompileService.compile_classified``."""
        _, _, payload = self._exchange(
            "POST", "/v1/compile", request_to_wire(request)
        )
        try:
            report, fingerprint, status = response_from_wire(payload)
        except WireError as exc:
            raise RemoteServiceError(
                f"server answered an invalid response envelope: {exc}",
                code="internal",
            ) from exc
        return report, fingerprint, status

    def compile_batch(
        self,
        requests: Sequence[CompileRequest],
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> List[CompileReport]:
        """Remote batch compile; results in input order (like the local one).

        *max_workers* is accepted for signature compatibility but the
        server's own pool sizing wins.
        """
        del max_workers
        envelope = {
            "schema": WIRE_SCHEMA_VERSION,
            "requests": [request_to_wire(request) for request in requests],
            "parallel": bool(parallel),
        }
        _, _, payload = self._exchange("POST", "/v1/compile_batch", envelope)
        results = payload.get("results") if isinstance(payload, dict) else None
        if not isinstance(results, list) or len(results) != len(requests):
            raise RemoteServiceError(
                "server answered a malformed batch envelope", code="internal"
            )
        reports: List[CompileReport] = []
        try:
            for member in results:
                report, _, _ = response_from_wire(member)
                reports.append(report)
        except WireError as exc:
            raise RemoteServiceError(
                f"server answered an invalid batch member: {exc}", code="internal"
            ) from exc
        return reports

    # -- operational endpoints -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/health`` payload (including the ``draining`` flag)."""
        _, _, payload = self._exchange("GET", "/v1/health")
        if not isinstance(payload, dict):
            raise RemoteServiceError("malformed health payload", code="internal")
        return payload

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` payload: ServiceStats snapshot + shard usage."""
        _, _, payload = self._exchange("GET", "/v1/stats")
        if not isinstance(payload, dict):
            raise RemoteServiceError("malformed stats payload", code="internal")
        return payload

    def metrics(self) -> str:
        """``GET /v1/metrics``: the Prometheus text exposition body."""
        _, _, payload = self._exchange("GET", "/v1/metrics")
        if not isinstance(payload, str):
            # the exposition format is not JSON; a decoded dict means
            # the server answered something that is not a metrics body
            raise RemoteServiceError("malformed metrics payload", code="internal")
        return payload

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one fingerprint server-side; True if an entry existed."""
        _, _, payload = self._exchange(
            "POST", "/v1/cache/invalidate", {"fingerprint": fingerprint}
        )
        return bool(isinstance(payload, dict) and payload.get("invalidated"))

    def clear(self) -> None:
        """Drop every server-side cache entry (both tiers)."""
        self._exchange("POST", "/v1/cache/invalidate", {"all": True})
