"""Consistent-hash HTTP gateway fronting a fleet of compile servers.

``repro gateway --backend http://host:port ...`` runs one of these in
front of N ``repro serve`` processes.  Clients keep speaking the exact
:mod:`repro.service.net.wire` protocol — the gateway is a drop-in URL —
while placement, failover, and fleet-wide cold-compile dedup happen
here:

* **consistent-hash routing** — every ``/v1/compile`` body is mapped to
  its :func:`~repro.service.fleet.ring_key` (calibration shard digest
  when the request carries a backend, fingerprint otherwise) and routed
  on a sha256 :class:`~repro.service.fleet.HashRing` with virtual
  nodes.  Identical requests from any number of client processes land
  on the same server, whose in-flight dedup table makes the fleet-wide
  cold compile happen **exactly once**.  A body-digest LRU makes the
  mapping one sha256 per repeat — the gateway never re-decodes a
  circuit it has already routed;
* **health-driven membership** — a background prober hits each
  backend's ``/v1/health`` on a jittered interval; ``mark_down_after``
  consecutive failures (probe or proxied request) take a backend out of
  the ring deterministically, and the next successful re-probe puts it
  back (:class:`~repro.service.fleet.FleetState`);
* **retry-on-next-replica** — compile requests are idempotent
  (content-addressed), so a connect failure / ``429`` / ``503`` walks
  to the next distinct replica on the ring instead of failing the
  client.  ``504 timeout`` and deterministic ``4xx`` answers pass
  through untouched;
* **peer cache fill** — after a failover or rejoin re-homes a key, the
  gateway remembers which backend last served it: the warm envelope is
  fetched from that peer with an ``X-CaQR-Cache-Only`` probe, replayed
  to the client, and pushed into the new owner via ``POST
  /v1/cache/fill`` — a node death never causes a recompile storm;
* **bounded keep-alive pools** — one connection pool per backend
  (``pool_size`` sockets), stdlib asyncio streams, TLS-capable;
* **aggregated observability** — ``GET /v1/stats`` merges every live
  backend's snapshot (plus a summed ``fleet`` view); ``GET
  /v1/metrics`` exports the gateway's own counters with per-backend
  labels (``caqr_backend_requests_total{backend=...}``, ``peer_fills``,
  ``marked_down``, ``ring_moves``) in the same Prometheus text format
  as the servers.

Auth/TLS mirror the server: ``auth_token`` gates every gateway route
except ``/v1/health``; the client's ``Authorization`` header is passed
through to backends unless ``backend_token`` overrides it;
``tls_cert``/``tls_key`` wrap the gateway listener, and ``https://``
backend URLs are dialed with stdlib TLS (``backend_ca`` /
``backend_tls_insecure`` control verification).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import ssl
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from repro.exceptions import ServiceError
from repro.service.fleet import DEFAULT_VNODES, FleetState, ring_key
from repro.service.metrics import render_prometheus
from repro.service.net.http1 import (
    MAX_HEADER_BYTES,
    format_response,
    parse_head,
    read_response,
    send_request,
)
from repro.service.net.server import CACHE_ONLY_HEADER
from repro.service.net.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    error_to_wire,
    request_from_wire,
)
from repro.service.stats import ServiceStats

__all__ = [
    "DEFAULT_GATEWAY_PORT",
    "GatewayServer",
    "GatewayHandle",
    "start_gateway_thread",
    "run_gateway",
]

DEFAULT_GATEWAY_PORT = 8786
DEFAULT_POOL_SIZE = 16
DEFAULT_PROBE_INTERVAL = 2.0
DEFAULT_PROBE_TIMEOUT = 3.0
DEFAULT_REQUEST_TIMEOUT = 600.0
DEFAULT_KEY_CACHE_ENTRIES = 4096
_LAST_SERVED_ENTRIES = 65536
_KEEPALIVE_TIMEOUT = 75.0
_PROBER_TICK = 0.25
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Backend answers worth walking to the next replica: admission-control
#: and drain rejections (the next server may have room) plus ``5xx``
#: except ``504`` (a timeout means a compile is *still running* there —
#: piling the same fingerprint onto a second server would double-pay).
_RETRY_STATUSES = frozenset({429, 500, 502, 503})

#: Response headers replayed to the client verbatim.
_PASSTHROUGH_HEADERS = (
    "x-caqr-fingerprint",
    "x-caqr-cache",
    "x-caqr-strategy",
)


class _BackendDown(Exception):
    """One backend could not produce a response (connect/read failure)."""


class _BackendPool:
    """Bounded keep-alive connection pool to one backend."""

    def __init__(
        self,
        base_url: str,
        limit: int,
        timeout: float,
        ssl_context: Optional[ssl.SSLContext],
    ):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https") or not parts.hostname:
            raise ServiceError(f"bad backend url {base_url!r}")
        self.base_url = base_url
        self.host = parts.hostname
        self.port = parts.port or (443 if parts.scheme == "https" else 80)
        self.timeout = timeout
        self._ssl = ssl_context if parts.scheme == "https" else None
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._slots = asyncio.Semaphore(limit)

    async def request(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: Optional[bytes],
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One round-trip; raises :class:`_BackendDown` on any failure."""
        budget = self.timeout if timeout is None else timeout
        await self._slots.acquire()
        conn: Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = None
        try:
            conn = await self._acquire(budget)
            reader, writer = conn
            await asyncio.wait_for(
                send_request(
                    writer, method, path, f"{self.host}:{self.port}", headers, body
                ),
                budget,
            )
            status, resp_headers, resp_body = await asyncio.wait_for(
                read_response(reader), budget
            )
        except (OSError, ConnectionError, asyncio.TimeoutError, ssl.SSLError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
            if conn is not None:
                self._discard(conn)
            raise _BackendDown(
                f"{self.base_url}: {type(exc).__name__}: {exc}"
            ) from exc
        else:
            if resp_headers.get("connection", "").lower() == "close":
                self._discard(conn)
            else:
                self._idle.append(conn)
            return status, resp_headers, resp_body
        finally:
            self._slots.release()

    async def _acquire(
        self, budget: float
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if writer.is_closing() or reader.at_eof():
                self._discard((reader, writer))
                continue
            return reader, writer
        return await asyncio.wait_for(
            asyncio.open_connection(
                self.host,
                self.port,
                ssl=self._ssl,
                limit=MAX_HEADER_BYTES,
                server_hostname=self.host if self._ssl else None,
            ),
            budget,
        )

    def _discard(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        _, writer = conn
        try:
            writer.close()
        except Exception:
            pass

    def close(self) -> None:
        while self._idle:
            self._discard(self._idle.pop())


# dispatch result: (status, JSON payload or raw body bytes, extra headers)
_Reply = Tuple[int, Union[Dict[str, Any], bytes], Dict[str, str]]


class GatewayServer:
    """The consistent-hash fleet gateway (see the module docstring).

    Args:
        backends: base URLs of the ``repro serve`` processes to front
            (at least one; ``http://`` or ``https://``).
        host / port: bind address (``port=0`` picks a free port).
        vnodes: virtual nodes per backend on the hash ring.
        mark_down_after: consecutive failures before a backend leaves
            the ring.
        probe_interval / probe_jitter: health re-probe cadence.
        pool_size: keep-alive sockets per backend.
        request_timeout: per-proxied-request budget in seconds.
        auth_token: bearer token required on every gateway route except
            ``/v1/health`` (``$CAQR_AUTH_TOKEN`` when ``None``).
        backend_token: bearer token the gateway presents to backends;
            default: pass the client's ``Authorization`` header through.
        tls_cert / tls_key: TLS for the gateway's own listener.
        backend_ca / backend_tls_insecure: verification knobs for
            ``https://`` backends.
    """

    def __init__(
        self,
        backends: Sequence[str],
        host: str = "127.0.0.1",
        port: int = DEFAULT_GATEWAY_PORT,
        vnodes: int = DEFAULT_VNODES,
        mark_down_after: int = 3,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        probe_jitter: float = 0.5,
        pool_size: int = DEFAULT_POOL_SIZE,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        key_cache_entries: int = DEFAULT_KEY_CACHE_ENTRIES,
        auth_token: Optional[str] = None,
        backend_token: Optional[str] = None,
        tls_cert: Optional[str] = None,
        tls_key: Optional[str] = None,
        backend_ca: Optional[str] = None,
        backend_tls_insecure: bool = False,
        stats: Optional[ServiceStats] = None,
    ):
        cleaned = [url.rstrip("/") for url in backends]
        if not cleaned:
            raise ServiceError("gateway needs at least one --backend URL")
        if len(set(cleaned)) != len(cleaned):
            raise ServiceError("duplicate backend URLs")
        if bool(tls_cert) != bool(tls_key):
            raise ServiceError("TLS needs both tls_cert and tls_key")
        self.backends = tuple(cleaned)
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.probe_timeout = probe_timeout
        self.auth_token = (
            auth_token
            if auth_token is not None
            else os.environ.get("CAQR_AUTH_TOKEN") or None
        )
        self.backend_token = backend_token
        self.tls_cert = tls_cert
        self.tls_key = tls_key
        self.stats = stats if stats is not None else ServiceStats()
        self.fleet = FleetState(
            cleaned,
            vnodes=vnodes,
            mark_down_after=mark_down_after,
            probe_interval=probe_interval,
            probe_jitter=probe_jitter,
        )
        backend_ssl: Optional[ssl.SSLContext] = None
        if any(url.startswith("https://") for url in cleaned):
            backend_ssl = ssl.create_default_context(cafile=backend_ca)
            if backend_tls_insecure:
                backend_ssl.check_hostname = False
                backend_ssl.verify_mode = ssl.CERT_NONE
        self._pools = {
            url: _BackendPool(url, pool_size, request_timeout, backend_ssl)
            for url in cleaned
        }
        # body digest -> (fingerprint, shard): one decode per unique body
        self._key_cache: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()
        self._key_cache_entries = key_cache_entries
        # ring key -> backend that last served it (peer-fill source)
        self._last_served: "OrderedDict[str, str]" = OrderedDict()
        self._fingerprint_pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="caqr-gateway-fp"
        )
        self._counted_ring_moves = 0
        self._counted_marked_down: Dict[str, int] = {url: 0 for url in cleaned}
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._prober_task: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._started_monotonic: Optional[float] = None

    @property
    def scheme(self) -> str:
        return "https" if self.tls_cert else "http"

    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "GatewayServer":
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        sslctx = None
        if self.tls_cert:
            sslctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
            sslctx.load_cert_chain(self.tls_cert, self.tls_key)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEADER_BYTES,
            ssl=sslctx,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._prober_task = self._loop.create_task(self._prober())
        return self

    async def serve(self, install_signal_handlers: bool = True) -> None:
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stop_event.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def request_shutdown_threadsafe(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def _shutdown(self) -> None:
        if self._prober_task is not None:
            self._prober_task.cancel()
            try:
                await self._prober_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
        for writer in list(self._connections):
            writer.close()
        for pool in self._pools.values():
            pool.close()
        self._fingerprint_pool.shutdown(wait=False)

    # -- membership ------------------------------------------------------------

    async def _prober(self) -> None:
        """Background health loop driving :class:`FleetState`."""
        while True:
            now = time.monotonic()
            due = self.fleet.due(now)
            if due:
                await asyncio.gather(
                    *(self._probe_one(url) for url in due),
                    return_exceptions=True,
                )
            await asyncio.sleep(_PROBER_TICK)

    async def _probe_one(self, url: str) -> None:
        try:
            status, _, _ = await self._pools[url].request(
                "GET", "/v1/health", {}, None, timeout=self.probe_timeout
            )
            ok = status == 200
        except _BackendDown:
            ok = False
        self._record_outcome(url, ok)

    def _record_outcome(self, url: str, ok: bool) -> None:
        """Feed one probe/request outcome into the membership machine."""
        now = time.monotonic()
        if ok:
            changed = self.fleet.record_success(url, now)
        else:
            changed = self.fleet.record_failure(url, now)
        if changed:
            self._sync_fleet_counters()

    def _sync_fleet_counters(self) -> None:
        """Mirror monotonic fleet telemetry into the stats counters."""
        moved = self.fleet.ring_moves - self._counted_ring_moves
        if moved:
            self.stats.count("ring_moves", moved)
            self._counted_ring_moves = self.fleet.ring_moves
        for url in self.backends:
            lifetime = self.fleet.health[url].marked_down
            delta = lifetime - self._counted_marked_down[url]
            if delta:
                self.stats.count(f"marked_down:{url}", delta)
                self._counted_marked_down[url] = lifetime

    # -- request plumbing (mirror of CompileServer's loop) ---------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self.stats.count("http_connections")
        try:
            await self._connection_loop(reader, writer)
        except asyncio.CancelledError:
            # asyncio.run teardown cancels in-flight handlers; the
            # finally below closes the socket, nothing else to unwind
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (Exception, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), _KEEPALIVE_TIMEOUT
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
                ConnectionError,
            ):
                return
            parsed = parse_head(head)
            if parsed is None:
                await self._write(
                    writer,
                    400,
                    error_to_wire("bad_request", "malformed HTTP request"),
                    {},
                    keep_alive=False,
                )
                return
            method, path, headers = parsed
            try:
                content_length = int(headers.get("content-length", "0"))
            except ValueError:
                content_length = -1
            if content_length < 0:
                await self._write(
                    writer,
                    400,
                    error_to_wire("bad_request", "bad Content-Length"),
                    {},
                    keep_alive=False,
                )
                return
            body = b""
            if content_length:
                try:
                    body = await reader.readexactly(content_length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
            status, payload, extra = await self._dispatch(
                method, path, headers, body
            )
            keep_alive = (
                headers.get("connection", "keep-alive").lower() != "close"
            )
            try:
                await self._write(writer, status, payload, extra, keep_alive)
            except ConnectionError:
                return
            if not keep_alive:
                return

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], bytes],
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = json.dumps(payload).encode()
        content_type = "application/json"
        passthrough = {}
        for name, value in extra_headers.items():
            if name.lower() == "content-type":
                content_type = value
            else:
                passthrough[name] = value
        writer.write(
            format_response(status, body, content_type, passthrough, keep_alive)
        )
        await writer.drain()

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        start = time.perf_counter()
        self.stats.count("http_requests")
        self.stats.count(f"http:{path}")
        try:
            reply = await self._route(method, path, headers, body)
        except WireError as exc:
            reply = 400, error_to_wire("bad_request", str(exc)), {}
        except Exception as exc:  # never leak a traceback as a hung socket
            reply = (
                500,
                error_to_wire("internal", f"{type(exc).__name__}: {exc}"),
                {},
            )
        if reply[0] >= 400:
            self.stats.count("http_errors")
        elapsed = time.perf_counter() - start
        self.stats.observe("request_latency", elapsed)
        return reply

    # -- routing ---------------------------------------------------------------

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        if path == "/v1/health":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return (
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "status": "ok",
                    "gateway": True,
                    "uptime_s": self.uptime_s(),
                    "fleet": self.fleet.summary(),
                },
                {},
            )
        if self.auth_token is not None:
            if headers.get("authorization", "") != f"Bearer {self.auth_token}":
                self.stats.count("http_unauthorized")
                return (
                    401,
                    error_to_wire(
                        "unauthorized", "missing or invalid bearer token"
                    ),
                    {},
                )
        if path == "/v1/metrics":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return (
                200,
                self._metrics_body(),
                {"Content-Type": _PROMETHEUS_CONTENT_TYPE},
            )
        if path == "/v1/stats":
            if method != "GET":
                return self._method_not_allowed(method, path)
            return await self._handle_stats(headers)
        if path == "/v1/compile":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._handle_compile(headers, body)
        if path == "/v1/compile_batch":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._handle_batch(headers, body)
        if path == "/v1/cache/invalidate":
            if method != "POST":
                return self._method_not_allowed(method, path)
            return await self._handle_invalidate(headers, body)
        return 404, error_to_wire("not_found", f"no route {method} {path}"), {}

    @staticmethod
    def _method_not_allowed(method: str, path: str) -> _Reply:
        return (
            405,
            error_to_wire("method_not_allowed", f"{method} not allowed on {path}"),
            {},
        )

    def _backend_headers(self, headers: Dict[str, str]) -> Dict[str, str]:
        """Headers the gateway presents to a backend."""
        out = {"Content-Type": "application/json"}
        if self.backend_token:
            out["Authorization"] = f"Bearer {self.backend_token}"
        elif "authorization" in headers:
            out["Authorization"] = headers["authorization"]
        return out

    # -- placement -------------------------------------------------------------

    async def _placement(self, body: bytes) -> Tuple[str, str, str]:
        """``(fingerprint, shard, ring key)`` for one compile body.

        Repeat bodies are one sha256 + LRU hit; new bodies decode the
        envelope off-loop (the only place the gateway touches circuit
        JSON).
        """
        digest = hashlib.sha256(body).hexdigest()
        cached = self._key_cache.get(digest)
        if cached is not None:
            self._key_cache.move_to_end(digest)
            self.stats.count("key_cache_hits")
            fingerprint, shard = cached
            return fingerprint, shard, ring_key(shard, fingerprint)
        self.stats.count("key_cache_misses")
        loop = asyncio.get_running_loop()
        fingerprint, shard = await loop.run_in_executor(
            self._fingerprint_pool, self._derive_key, body
        )
        self._key_cache[digest] = (fingerprint, shard)
        self._key_cache.move_to_end(digest)
        while len(self._key_cache) > self._key_cache_entries:
            self._key_cache.popitem(last=False)
        return fingerprint, shard, ring_key(shard, fingerprint)

    @staticmethod
    def _derive_key(body: bytes) -> Tuple[str, str]:
        try:
            payload = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"request body is not JSON: {exc}") from exc
        request = request_from_wire(payload)
        return request.fingerprint(), request.shard()

    def _note_served(self, rk: str, backend: str) -> None:
        self._last_served[rk] = backend
        self._last_served.move_to_end(rk)
        while len(self._last_served) > _LAST_SERVED_ENTRIES:
            self._last_served.popitem(last=False)

    # -- forwarding ------------------------------------------------------------

    async def _forward(
        self,
        replicas: Sequence[str],
        method: str,
        path: str,
        headers: Dict[str, str],
        body: Optional[bytes],
    ) -> Tuple[str, int, Dict[str, str], bytes]:
        """Try each replica in ring order; first final answer wins.

        Returns ``(backend, status, headers, body)``.  Raises
        :class:`_BackendDown` when every replica failed.
        """
        last_error: Optional[_BackendDown] = None
        for index, backend in enumerate(replicas):
            self.stats.count(f"backend_requests:{backend}")
            if index:
                self.stats.count(f"backend_retries:{backend}")
            started = time.perf_counter()
            try:
                status, resp_headers, resp_body = await self._pools[
                    backend
                ].request(method, path, headers, body)
            except _BackendDown as exc:
                self.stats.count(f"backend_errors:{backend}")
                self._record_outcome(backend, False)
                last_error = exc
                continue
            self.stats.add_time(
                f"backend_latency:{backend}", time.perf_counter() - started
            )
            self._record_outcome(backend, True)
            if status in _RETRY_STATUSES and index + 1 < len(replicas):
                self.stats.count(f"backend_errors:{backend}")
                continue
            return backend, status, resp_headers, resp_body
        raise last_error if last_error is not None else _BackendDown(
            "no replica produced a response"
        )

    def _replicas_for(self, rk: str) -> List[str]:
        return self.fleet.ring().replicas(rk)

    @staticmethod
    def _client_reply(
        status: int, resp_headers: Dict[str, str], resp_body: bytes
    ) -> _Reply:
        extra: Dict[str, str] = {}
        content_type = resp_headers.get("content-type")
        if content_type:
            extra["Content-Type"] = content_type
        for name in _PASSTHROUGH_HEADERS:
            value = resp_headers.get(name)
            if value is not None:
                extra["-".join(p.capitalize() for p in name.split("-"))] = value
        return status, resp_body, extra

    # -- endpoints -------------------------------------------------------------

    async def _handle_compile(
        self, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        _, shard, rk = await self._placement(body)
        replicas = self._replicas_for(rk)
        if not replicas:
            self.stats.count("no_backend")
            return (
                503,
                error_to_wire("no_backend", "every backend is marked down"),
                {"Retry-After": "1"},
            )
        fwd_headers = self._backend_headers(headers)
        if headers.get(CACHE_ONLY_HEADER):
            fwd_headers[CACHE_ONLY_HEADER] = headers[CACHE_ONLY_HEADER]
        owner = replicas[0]
        filled = await self._maybe_peer_fill(rk, shard, owner, fwd_headers, body)
        if filled is not None:
            return filled
        try:
            backend, status, resp_headers, resp_body = await self._forward(
                replicas, "POST", "/v1/compile", fwd_headers, body
            )
        except _BackendDown as exc:
            self.stats.count("no_backend")
            return (
                503,
                error_to_wire("no_backend", str(exc)),
                {"Retry-After": "1"},
            )
        if status == 200:
            self._note_served(rk, backend)
            cache_status = resp_headers.get("x-caqr-cache", "")
            if cache_status == "miss":
                self.stats.count(f"fleet_misses:{backend}")
            elif cache_status:
                self.stats.count(f"fleet_hits:{backend}")
            self.stats.count(f"fleet_requests:{backend}")
        return self._client_reply(status, resp_headers, resp_body)

    async def _maybe_peer_fill(
        self,
        rk: str,
        shard: str,
        owner: str,
        fwd_headers: Dict[str, str],
        body: bytes,
    ) -> Optional[_Reply]:
        """Serve a re-homed key from its previous holder's warm cache.

        When the ring owner changed since the key was last served (a
        backend died or rejoined), the previous holder is probed
        cache-only; a warm envelope is replayed to the client and pushed
        into the new owner so the fleet never recompiles a key it
        already paid for.  Returns ``None`` when the normal forwarding
        path should run instead.
        """
        previous = self._last_served.get(rk)
        if (
            previous is None
            or previous == owner
            or not self.fleet.health[previous].up
        ):
            return None
        probe_headers = dict(fwd_headers)
        probe_headers[CACHE_ONLY_HEADER] = "1"
        try:
            status, resp_headers, resp_body = await self._pools[previous].request(
                "POST", "/v1/compile", probe_headers, body
            )
        except _BackendDown:
            self._record_outcome(previous, False)
            return None
        self._record_outcome(previous, True)
        if status != 200:
            # the peer lost the entry too (evicted, TTL) — compile fresh
            self._note_served(rk, owner)
            return None
        self.stats.count("peer_fills")
        self.stats.count(f"peer_fills:{owner}")
        await self._replay_fill(rk, shard, owner, fwd_headers, resp_body)
        return self._client_reply(status, resp_headers, resp_body)

    async def _replay_fill(
        self,
        rk: str,
        shard: str,
        owner: str,
        fwd_headers: Dict[str, str],
        envelope_body: bytes,
    ) -> None:
        """Push a peer's warm envelope into the key's new ring owner."""
        try:
            envelope = json.loads(envelope_body)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        fill = {
            "schema": WIRE_SCHEMA_VERSION,
            "shard": shard,
            "envelope": envelope,
        }
        try:
            status, _, _ = await self._pools[owner].request(
                "POST",
                "/v1/cache/fill",
                fwd_headers,
                json.dumps(fill).encode(),
            )
        except _BackendDown:
            self._record_outcome(owner, False)
            return
        self._record_outcome(owner, True)
        if status == 200:
            self._note_served(rk, owner)

    async def _handle_batch(self, headers: Dict[str, str], body: bytes) -> _Reply:
        payload = json.loads(body) if body else None
        if not isinstance(payload, dict):
            raise WireError("batch envelope must be a JSON object")
        if payload.get("schema") != WIRE_SCHEMA_VERSION:
            raise WireError(f"unsupported wire schema {payload.get('schema')!r}")
        members = payload.get("requests")
        if not isinstance(members, list):
            raise WireError("batch envelope needs a requests list")
        parallel = bool(payload.get("parallel", True))
        fwd_headers = self._backend_headers(headers)
        # place every member, then split the batch by ring owner so each
        # sub-batch lands where its entries colocate
        placements: List[Tuple[int, Dict[str, Any], str]] = []
        for index, member in enumerate(members):
            member_body = json.dumps(member).encode()
            _, _, rk = await self._placement(member_body)
            placements.append((index, member, rk))
        groups: "OrderedDict[str, List[Tuple[int, Dict[str, Any], str]]]" = (
            OrderedDict()
        )
        for index, member, rk in placements:
            replicas = self._replicas_for(rk)
            if not replicas:
                self.stats.count("no_backend")
                return (
                    503,
                    error_to_wire("no_backend", "every backend is marked down"),
                    {"Retry-After": "1"},
                )
            groups.setdefault(replicas[0], []).append((index, member, rk))

        async def _one_group(owner, entries):
            sub = {
                "schema": WIRE_SCHEMA_VERSION,
                "requests": [member for _, member, _ in entries],
                "parallel": parallel,
            }
            sub_body = json.dumps(sub).encode()
            rk0 = entries[0][2]
            replicas = self._replicas_for(rk0)
            if replicas and replicas[0] != owner and owner in replicas:
                # keep the placement owner first even if the ring moved
                replicas = [owner] + [r for r in replicas if r != owner]
            backend: Optional[str] = None
            status = 0
            resp_headers: Dict[str, str] = {}
            resp_body = b""
            walk_error: Optional[_BackendDown] = None
            try:
                backend, status, resp_headers, resp_body = await self._forward(
                    replicas or [owner],
                    "POST",
                    "/v1/compile_batch",
                    fwd_headers,
                    sub_body,
                )
            except _BackendDown as exc:
                walk_error = exc
            if walk_error is not None or status in _RETRY_STATUSES:
                # the whole owner-first walk failed.  Re-resolve the ring
                # (the prober may have marked the loser down by now) and
                # retry the sub-batch once, skipping the backend that
                # produced the failure, before surfacing the error.
                retry = [r for r in self._replicas_for(rk0) if r != backend]
                if retry:
                    self.stats.count("batch_retries")
                    self.stats.count(f"batch_retries:{retry[0]}")
                    try:
                        (
                            backend,
                            status,
                            resp_headers,
                            resp_body,
                        ) = await self._forward(
                            retry, "POST", "/v1/compile_batch", fwd_headers, sub_body
                        )
                    except _BackendDown:
                        if walk_error is not None:
                            raise
                        # keep the original error reply: the retry only
                        # upgrades the outcome, never degrades it
                elif walk_error is not None:
                    raise walk_error
            return entries, backend, status, resp_headers, resp_body

        try:
            outcomes = await asyncio.gather(
                *(_one_group(owner, entries) for owner, entries in groups.items())
            )
        except _BackendDown as exc:
            self.stats.count("no_backend")
            return (
                503,
                error_to_wire("no_backend", str(exc)),
                {"Retry-After": "1"},
            )
        results: List[Optional[Dict[str, Any]]] = [None] * len(members)
        for entries, backend, status, _, resp_body in outcomes:
            if status != 200:
                # propagate the first backend error verbatim
                try:
                    return status, json.loads(resp_body), {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    return status, resp_body, {}
            sub_payload = json.loads(resp_body)
            sub_results = sub_payload.get("results")
            if not isinstance(sub_results, list) or len(sub_results) != len(
                entries
            ):
                raise WireError(f"{backend} answered a malformed batch envelope")
            for (index, _, rk), member_result in zip(entries, sub_results):
                results[index] = member_result
                self._note_served(rk, backend)
            self.stats.count(f"fleet_requests:{backend}", len(entries))
        return 200, {"schema": WIRE_SCHEMA_VERSION, "results": results}, {}

    async def _handle_invalidate(
        self, headers: Dict[str, str], body: bytes
    ) -> _Reply:
        """Broadcast an invalidation to every live backend."""
        fwd_headers = self._backend_headers(headers)
        up = self.fleet.up_members()
        if not up:
            return (
                503,
                error_to_wire("no_backend", "every backend is marked down"),
                {"Retry-After": "1"},
            )

        async def _one(url):
            try:
                status, _, resp_body = await self._pools[url].request(
                    "POST", "/v1/cache/invalidate", fwd_headers, body
                )
                self._record_outcome(url, True)
                if status != 200:
                    return False
                payload = json.loads(resp_body)
                return bool(
                    payload.get("invalidated") or payload.get("cleared")
                )
            except (_BackendDown, ValueError):
                self._record_outcome(url, False)
                return False

        answers = await asyncio.gather(*(_one(url) for url in up))
        return (
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "invalidated": any(answers),
                "cleared": any(answers),
                "backends": len(up),
            },
            {},
        )

    async def _handle_stats(self, headers: Dict[str, str]) -> _Reply:
        """Aggregate ``/v1/stats``: gateway + per-backend + summed fleet."""
        fwd_headers = self._backend_headers(headers)

        async def _one(url):
            try:
                status, _, resp_body = await self._pools[url].request(
                    "GET", "/v1/stats", fwd_headers, None
                )
                self._record_outcome(url, True)
                if status != 200:
                    return url, {"error": f"status {status}"}
                return url, json.loads(resp_body)
            except (_BackendDown, ValueError) as exc:
                self._record_outcome(url, False)
                return url, {"error": str(exc)}

        up = self.fleet.up_members()
        per_backend = dict(await asyncio.gather(*(_one(url) for url in up)))
        fleet_counters: Dict[str, float] = {}
        for payload in per_backend.values():
            counters = payload.get("stats", {}).get("counters", {})
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, (int, float)):
                        fleet_counters[name] = fleet_counters.get(name, 0) + value
        return (
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "gateway": {
                    "stats": self.stats.to_dict(),
                    "uptime_s": self.uptime_s(),
                    "fleet": self.fleet.summary(),
                },
                "backends": per_backend,
                "fleet": {"counters": fleet_counters},
            },
            {},
        )

    def _metrics_body(self) -> bytes:
        snapshot = ServiceStats()
        snapshot.merge(self.stats)
        for url in self.backends:
            snapshot.set_value(
                f"backend_up:{url}", 1.0 if self.fleet.health[url].up else 0.0
            )
        extra = {
            "uptime_seconds": self.uptime_s(),
            "backends": float(len(self.backends)),
            "backends_up": float(len(self.fleet.up_members())),
            "ring_vnodes": float(self.fleet.vnodes),
            "key_cache_entries": float(len(self._key_cache)),
        }
        return render_prometheus(
            snapshot, prefix="caqr_gateway", extra_gauges=extra
        ).encode()


class GatewayHandle:
    """A :class:`GatewayServer` running on a daemon thread (tests)."""

    def __init__(self, gateway: GatewayServer, thread: threading.Thread):
        self.gateway = gateway
        self.thread = thread

    @property
    def url(self) -> str:
        return f"{self.gateway.scheme}://{self.gateway.host}:{self.gateway.port}"

    def stop(self, timeout: float = 30.0) -> None:
        self.gateway.request_shutdown_threadsafe()
        self.thread.join(timeout)


def start_gateway_thread(ready_timeout: float = 30.0, **kwargs) -> GatewayHandle:
    """Run a :class:`GatewayServer` on a background thread; wait until bound."""
    kwargs.setdefault("port", 0)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            gateway = GatewayServer(**kwargs)
            await gateway.start()
            box["gateway"] = gateway
            ready.set()
            await gateway.serve(install_signal_handlers=False)

        try:
            asyncio.run(_main())
        except BaseException as exc:
            box.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=_run, daemon=True, name="caqr-gateway")
    thread.start()
    if not ready.wait(ready_timeout):
        raise ServiceError("gateway did not start in time")
    if "error" in box:
        raise ServiceError(f"gateway failed to start: {box['error']}")
    return GatewayHandle(box["gateway"], thread)


def run_gateway(
    backends: Sequence[str],
    host: str = "127.0.0.1",
    port: int = DEFAULT_GATEWAY_PORT,
    vnodes: int = DEFAULT_VNODES,
    mark_down_after: int = 3,
    probe_interval: float = DEFAULT_PROBE_INTERVAL,
    pool_size: int = DEFAULT_POOL_SIZE,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    auth_token: Optional[str] = None,
    backend_token: Optional[str] = None,
    tls_cert: Optional[str] = None,
    tls_key: Optional[str] = None,
    backend_ca: Optional[str] = None,
    backend_tls_insecure: bool = False,
) -> int:
    """Blocking entry point behind ``repro gateway``.

    Prints ``serving on <host>:<port>`` once bound (same machine-readable
    line as ``repro serve``), then runs until SIGTERM/SIGINT.
    """
    gateway = GatewayServer(
        backends,
        host=host,
        port=port,
        vnodes=vnodes,
        mark_down_after=mark_down_after,
        probe_interval=probe_interval,
        pool_size=pool_size,
        request_timeout=request_timeout,
        auth_token=auth_token,
        backend_token=backend_token,
        tls_cert=tls_cert,
        tls_key=tls_key,
        backend_ca=backend_ca,
        backend_tls_insecure=backend_tls_insecure,
    )

    async def _main() -> None:
        await gateway.start()
        print(
            f"serving on {gateway.host}:{gateway.port} "
            f"({len(gateway.backends)} backends)",
            flush=True,
        )
        await gateway.serve(install_signal_handlers=True)
        print("gateway stopped", flush=True)

    asyncio.run(_main())
    return 0
