"""Canonical fingerprints for content-addressed compilation caching.

CaQR compilation is deterministic given (circuit, backend calibration,
mode/knobs, seed), so a stable digest of those inputs addresses the
compiled result.  This module derives that digest:

* :func:`circuit_normal_form` — a QASM-flavoured normal form of a circuit:
  fixed header, one line per instruction carrying the gate name, shortest
  round-trip float params, wire indices, classical condition, and label.
  Two circuits share a normal form iff their instruction streams are
  indistinguishable to every compiler pass.
* :func:`graph_normal_form` — the analogue for QAOA problem graphs (node
  count + sorted weighted edge list).
* :func:`backend_digest` — SHA-256 over the sorted-key backend JSON
  snapshot (:func:`repro.hardware.serialization.backend_to_json`), so any
  calibration drift — a single CX error changing — yields a new digest.
* :func:`banded_backend_digest` — the drift-tolerant variant: error rates
  and coherence times are quantised into *calib_bands* bands per decade
  (log10 scale) before hashing, so snapshots that differ only by in-band
  drift share a digest (and therefore cache entries and fleet placement).
  Durations and the coupling map stay exact.  ``calib_bands=None``/``0``
  degrades to the exact :func:`backend_digest`.
* :func:`request_fingerprint` — the cache key: SHA-256 over the canonical
  JSON of the target digest, backend digest, and every semantic knob.

The key deliberately **excludes** the engine-selection knobs
(``incremental``/``parallel``/``portfolio_workers``): the differential
property harnesses pin both engines — and the portfolio race across any
worker count — to identical outputs, so either engine may serve the
other's cache entry.  ``strategy`` and ``objective`` are *semantic*
knobs: a portfolio compile may return a different circuit than the
single-strategy path (that is its job), so they feed the key.  See
``docs/SERVICE.md`` for the full contract.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from typing import Any, Dict, Optional, Union

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import ServiceError
from repro.hardware.backends import Backend
from repro.hardware.serialization import backend_to_json

__all__ = [
    "CALIB_BANDS_ENV",
    "circuit_normal_form",
    "circuit_digest",
    "graph_normal_form",
    "graph_digest",
    "backend_digest",
    "band_value",
    "resolve_calib_bands",
    "banded_backend_digest",
    "request_fingerprint",
]

#: Environment variable giving the process-wide default band count when a
#: request leaves ``calib_bands`` unset.  Unset/empty/``0`` means exact
#: digests (the legacy behaviour).
CALIB_BANDS_ENV = "CAQR_CALIB_BANDS"

#: Calibration fields that banding quantises.  Durations (``cx_duration``,
#: ``measure_duration``, ...) stay exact: they are integers the scheduler
#: consumes directly and real drift reports leave them untouched.
BANDED_CALIBRATION_FIELDS = ("cx_error", "readout_error", "sq_error", "t1_dt", "t2_dt")


def _fmt_float(value: float) -> str:
    # repr() is the shortest string that round-trips the exact float
    return repr(float(value))


def circuit_normal_form(circuit: QuantumCircuit) -> str:
    """Stable text normal form of *circuit* (QASM-like, one op per line)."""
    lines = [f"qubits {circuit.num_qubits}", f"clbits {circuit.num_clbits}"]
    for instruction in circuit.data:
        parts = [instruction.name]
        if instruction.params:
            parts.append("(" + ",".join(_fmt_float(p) for p in instruction.params) + ")")
        parts.append("q" + ",".join(str(q) for q in instruction.qubits))
        if instruction.clbits:
            parts.append("c" + ",".join(str(c) for c in instruction.clbits))
        if instruction.condition is not None:
            parts.append(f"if[{instruction.condition[0]}=={instruction.condition[1]}]")
        if instruction.label is not None:
            parts.append(f"label[{instruction.label}]")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def circuit_digest(circuit: QuantumCircuit) -> str:
    """SHA-256 hex digest of :func:`circuit_normal_form`."""
    return hashlib.sha256(circuit_normal_form(circuit).encode()).hexdigest()


def graph_normal_form(graph: nx.Graph) -> str:
    """Stable text normal form of a QAOA problem graph."""
    lines = [f"nodes {graph.number_of_nodes()}"]
    for a, b, data in sorted(
        (min(u, v), max(u, v), d) for u, v, d in graph.edges(data=True)
    ):
        weight = data.get("weight")
        suffix = f" w{_fmt_float(weight)}" if weight is not None else ""
        lines.append(f"edge {a}-{b}{suffix}")
    return "\n".join(lines) + "\n"


def graph_digest(graph: nx.Graph) -> str:
    """SHA-256 hex digest of :func:`graph_normal_form`."""
    return hashlib.sha256(graph_normal_form(graph).encode()).hexdigest()


def backend_digest(backend: Optional[Backend]) -> Optional[str]:
    """SHA-256 over the canonical backend snapshot (``None`` stays ``None``).

    The snapshot covers the coupling map, every calibration entry, and the
    dynamic-circuit capability flag, so a new calibration snapshot — even a
    single changed CX error or readout probability — invalidates every key
    derived from the previous one.
    """
    if backend is None:
        return None
    return hashlib.sha256(backend_to_json(backend).encode()).hexdigest()


def resolve_calib_bands(calib_bands: Optional[int] = None) -> Optional[int]:
    """Resolve the effective band count for one request.

    An explicit value wins; ``None`` falls back to :data:`CALIB_BANDS_ENV`.
    The resolved value is normalised so the two "banding off" spellings
    (``None`` and ``0``) collapse to ``None`` — they must produce the same
    digests.  Negative or non-integer values raise :class:`ServiceError`.
    """
    if calib_bands is None:
        raw = os.environ.get(CALIB_BANDS_ENV, "").strip()
        if not raw:
            return None
        try:
            calib_bands = int(raw)
        except ValueError:
            raise ServiceError(
                f"${CALIB_BANDS_ENV} must be an integer, got {raw!r}"
            ) from None
    try:
        bands = int(calib_bands)
    except (TypeError, ValueError):
        raise ServiceError(f"calib_bands must be an integer, got {calib_bands!r}") from None
    if bands < 0:
        raise ServiceError(f"calib_bands must be >= 0, got {bands}")
    return bands or None


def band_value(value: float, bands: int) -> Union[int, str]:
    """Quantise one positive calibration value into a log10 band index.

    With *bands* bands per decade, band ``k`` covers
    ``[10^(k/bands), 10^((k+1)/bands))`` — e.g. ``bands=4`` means values
    within ~78 % of each other share a band.  Non-positive or non-finite
    values have no log-scale home, so they pass through as their exact
    ``repr`` (two snapshots only match if such a value is bit-identical).
    """
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        return repr(v)
    return math.floor(math.log10(v) * bands)


def banded_backend_digest(
    backend: Optional[Backend], calib_bands: Optional[int] = None
) -> Optional[str]:
    """Drift-tolerant backend digest: calibration values banded, rest exact.

    *calib_bands* is the **resolved** band count (see
    :func:`resolve_calib_bands`); ``None``/``0`` returns the exact
    :func:`backend_digest`.  The band count itself feeds the hash, so
    entries written under different band widths never collide.
    """
    if backend is None:
        return None
    if not calib_bands:
        return backend_digest(backend)
    payload = json.loads(backend_to_json(backend))
    calibration = payload["calibration"]
    for name in BANDED_CALIBRATION_FIELDS:
        calibration[name] = {
            key: band_value(value, calib_bands)
            for key, value in calibration.get(name, {}).items()
        }
    payload["calib_bands"] = int(calib_bands)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def request_fingerprint(
    target: Union[QuantumCircuit, nx.Graph],
    backend: Optional[Backend] = None,
    mode: str = "min_depth",
    qubit_limit: Optional[int] = None,
    reset_style: str = "cif",
    seed: int = 11,
    auto_commuting: bool = True,
    strategy: str = "auto",
    objective: Optional[str] = None,
    calib_bands: Optional[int] = None,
) -> str:
    """The content-addressed cache key for one ``caqr_compile`` request.

    *calib_bands* selects the drift-tolerant backend digest
    (:func:`banded_backend_digest`); ``None`` defers to
    :data:`CALIB_BANDS_ENV`, and banding off reproduces the historical
    keys bit for bit (the ``calib_bands`` payload entry only appears when
    banding is on).
    """
    if isinstance(target, nx.Graph):
        target_kind, target_hash = "graph", graph_digest(target)
    else:
        target_kind, target_hash = "circuit", circuit_digest(target)
    bands = resolve_calib_bands(calib_bands)
    payload: Dict[str, Any] = {
        "target_kind": target_kind,
        "target": target_hash,
        "backend": banded_backend_digest(backend, bands),
        "mode": mode,
        "qubit_limit": qubit_limit,
        "reset_style": reset_style,
        "seed": seed,
        "auto_commuting": bool(auto_commuting),
        "strategy": strategy,
        "objective": objective,
    }
    if bands:
        payload["calib_bands"] = bands
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
