"""Canonical fingerprints for content-addressed compilation caching.

CaQR compilation is deterministic given (circuit, backend calibration,
mode/knobs, seed), so a stable digest of those inputs addresses the
compiled result.  This module derives that digest:

* :func:`circuit_normal_form` — a QASM-flavoured normal form of a circuit:
  fixed header, one line per instruction carrying the gate name, shortest
  round-trip float params, wire indices, classical condition, and label.
  Two circuits share a normal form iff their instruction streams are
  indistinguishable to every compiler pass.
* :func:`graph_normal_form` — the analogue for QAOA problem graphs (node
  count + sorted weighted edge list).
* :func:`backend_digest` — SHA-256 over the sorted-key backend JSON
  snapshot (:func:`repro.hardware.serialization.backend_to_json`), so any
  calibration drift — a single CX error changing — yields a new digest.
* :func:`request_fingerprint` — the cache key: SHA-256 over the canonical
  JSON of the target digest, backend digest, and every semantic knob.

The key deliberately **excludes** the engine-selection knobs
(``incremental``/``parallel``/``portfolio_workers``): the differential
property harnesses pin both engines — and the portfolio race across any
worker count — to identical outputs, so either engine may serve the
other's cache entry.  ``strategy`` and ``objective`` are *semantic*
knobs: a portfolio compile may return a different circuit than the
single-strategy path (that is its job), so they feed the key.  See
``docs/SERVICE.md`` for the full contract.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Union

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.backends import Backend
from repro.hardware.serialization import backend_to_json

__all__ = [
    "circuit_normal_form",
    "circuit_digest",
    "graph_normal_form",
    "graph_digest",
    "backend_digest",
    "request_fingerprint",
]


def _fmt_float(value: float) -> str:
    # repr() is the shortest string that round-trips the exact float
    return repr(float(value))


def circuit_normal_form(circuit: QuantumCircuit) -> str:
    """Stable text normal form of *circuit* (QASM-like, one op per line)."""
    lines = [f"qubits {circuit.num_qubits}", f"clbits {circuit.num_clbits}"]
    for instruction in circuit.data:
        parts = [instruction.name]
        if instruction.params:
            parts.append("(" + ",".join(_fmt_float(p) for p in instruction.params) + ")")
        parts.append("q" + ",".join(str(q) for q in instruction.qubits))
        if instruction.clbits:
            parts.append("c" + ",".join(str(c) for c in instruction.clbits))
        if instruction.condition is not None:
            parts.append(f"if[{instruction.condition[0]}=={instruction.condition[1]}]")
        if instruction.label is not None:
            parts.append(f"label[{instruction.label}]")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def circuit_digest(circuit: QuantumCircuit) -> str:
    """SHA-256 hex digest of :func:`circuit_normal_form`."""
    return hashlib.sha256(circuit_normal_form(circuit).encode()).hexdigest()


def graph_normal_form(graph: nx.Graph) -> str:
    """Stable text normal form of a QAOA problem graph."""
    lines = [f"nodes {graph.number_of_nodes()}"]
    for a, b, data in sorted(
        (min(u, v), max(u, v), d) for u, v, d in graph.edges(data=True)
    ):
        weight = data.get("weight")
        suffix = f" w{_fmt_float(weight)}" if weight is not None else ""
        lines.append(f"edge {a}-{b}{suffix}")
    return "\n".join(lines) + "\n"


def graph_digest(graph: nx.Graph) -> str:
    """SHA-256 hex digest of :func:`graph_normal_form`."""
    return hashlib.sha256(graph_normal_form(graph).encode()).hexdigest()


def backend_digest(backend: Optional[Backend]) -> Optional[str]:
    """SHA-256 over the canonical backend snapshot (``None`` stays ``None``).

    The snapshot covers the coupling map, every calibration entry, and the
    dynamic-circuit capability flag, so a new calibration snapshot — even a
    single changed CX error or readout probability — invalidates every key
    derived from the previous one.
    """
    if backend is None:
        return None
    return hashlib.sha256(backend_to_json(backend).encode()).hexdigest()


def request_fingerprint(
    target: Union[QuantumCircuit, nx.Graph],
    backend: Optional[Backend] = None,
    mode: str = "min_depth",
    qubit_limit: Optional[int] = None,
    reset_style: str = "cif",
    seed: int = 11,
    auto_commuting: bool = True,
    strategy: str = "auto",
    objective: Optional[str] = None,
) -> str:
    """The content-addressed cache key for one ``caqr_compile`` request."""
    if isinstance(target, nx.Graph):
        target_kind, target_hash = "graph", graph_digest(target)
    else:
        target_kind, target_hash = "circuit", circuit_digest(target)
    payload: Dict[str, Any] = {
        "target_kind": target_kind,
        "target": target_hash,
        "backend": backend_digest(backend),
        "mode": mode,
        "qubit_limit": qubit_limit,
        "reset_style": reset_style,
        "seed": seed,
        "auto_commuting": bool(auto_commuting),
        "strategy": strategy,
        "objective": objective,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
