"""The compile service: content-addressed caching + batch compilation.

:class:`CompileService` fronts :func:`repro.compile_api.caqr_compile`
with the two-tier cache from :mod:`repro.service.cache`:

* :meth:`CompileService.compile` — one request; serves warm fingerprints
  from the cache, folds concurrent identical requests onto the single
  in-flight compilation (thread-safe), and stores fresh results.
* :meth:`CompileService.compile_batch` — many requests at once;
  deduplicates identical members by fingerprint, probes the cache per
  unique key, fans the remaining cold keys over a
  ``ProcessPoolExecutor`` (the same fan-out idiom as
  :class:`repro.core.evaluate.PairScorer` and ``SRCaQR.run``), and
  returns reports in **input order** regardless of completion order.

``from_cache`` semantics: a report carries ``from_cache=True`` when it
was served from an entry (or an in-flight compilation) that this request
did not itself pay for — cache hits, in-flight joins, and duplicate batch
members.  The request that actually ran ``caqr_compile`` gets
``from_cache=False``.  Every caller receives an independent report
object; nothing mutable is shared between callers or with the cache.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from threading import Lock
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.compile_api import CompileReport, caqr_compile
from repro.exceptions import ServiceError
from repro.hardware.backends import Backend
from repro.service.cache import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    DEFAULT_SHARD,
    DiskCache,
    MemoryCache,
    TieredCache,
)
from repro.service.fingerprint import (
    banded_backend_digest,
    request_fingerprint,
    resolve_calib_bands,
)
from repro.service.serialization import dumps_entry, loads_entry
from repro.service.stats import ServiceStats
from repro.service.workers import WorkerPool, resolve_workers_mode

__all__ = [
    "CompileRequest",
    "CompileService",
    "default_service",
    "reset_default_service",
    "resolve_cache",
]


@dataclass
class CompileRequest:
    """One ``caqr_compile`` invocation, as data.

    The semantic knobs (everything except ``incremental``/``parallel``/
    ``portfolio_workers``) feed the fingerprint; the engine knobs only
    select *how* a cold compile runs — the differential harnesses pin
    both engines (and the portfolio race across worker counts) to
    identical outputs, so they never invalidate a key.  ``strategy`` and
    ``objective`` are semantic: a portfolio compile may legitimately
    return a different circuit than the single-strategy path.

    ``calib_bands`` sets the drift tolerance of the backend digest
    (bands per decade; ``None`` defers to ``$CAQR_CALIB_BANDS``, ``0``
    means exact digests).  It feeds both the fingerprint and the shard,
    so in-band calibration drift keeps a request on the same cache entry
    *and* the same fleet member.
    """

    target: Union[QuantumCircuit, nx.Graph]
    backend: Optional[Backend] = None
    mode: str = "min_depth"
    qubit_limit: Optional[int] = None
    reset_style: str = "cif"
    seed: int = 11
    auto_commuting: bool = True
    incremental: bool = True
    parallel: bool = True
    strategy: str = "auto"
    objective: Optional[str] = None
    portfolio_workers: Optional[int] = None
    calib_bands: Optional[int] = None

    def resolved_calib_bands(self) -> Optional[int]:
        """The effective band count (explicit value, else the env default)."""
        return resolve_calib_bands(self.calib_bands)

    def fingerprint(self) -> str:
        """The content-addressed cache key for this request."""
        return request_fingerprint(
            self.target,
            backend=self.backend,
            mode=self.mode,
            qubit_limit=self.qubit_limit,
            reset_style=self.reset_style,
            seed=self.seed,
            auto_commuting=self.auto_commuting,
            strategy=self.strategy,
            objective=self.objective,
            calib_bands=self.calib_bands,
        )

    def shard(self) -> str:
        """The disk-cache shard this request's entry lives in.

        One shard per backend calibration *band* (a 16-hex-char prefix of
        the banded backend digest — the exact digest when banding is
        off); backend-less requests share
        :data:`~repro.service.cache.DEFAULT_SHARD`.  The fleet's
        :func:`~repro.service.fleet.ring_key` routes by this value, so
        banding also keeps in-band drift from re-homing keys across
        servers.
        """
        digest = banded_backend_digest(self.backend, self.resolved_calib_bands())
        return digest[:16] if digest else DEFAULT_SHARD


def _cold_compile(request: CompileRequest, allow_parallel: bool) -> CompileReport:
    return caqr_compile(
        request.target,
        backend=request.backend,
        mode=request.mode,
        qubit_limit=request.qubit_limit,
        reset_style=request.reset_style,
        seed=request.seed,
        auto_commuting=request.auto_commuting,
        incremental=request.incremental,
        parallel=request.parallel and allow_parallel,
        cache=None,
        strategy=request.strategy,
        objective=request.objective,
        portfolio_workers=(
            # batch workers must not nest the portfolio's process pool
            request.portfolio_workers if allow_parallel else 1
        ),
    )


def _compile_entry_worker(args: Tuple[str, CompileRequest]) -> Tuple[str, str]:
    """Pool worker: cold-compile one request, return its serialized entry.

    Runs with ``parallel`` forced off so workers never nest process pools.
    """
    key, request = args
    report = _cold_compile(request, allow_parallel=False)
    return key, dumps_entry(key, report)


class CompileService:
    """Content-addressed compile cache + batch engine (thread-safe).

    Args:
        cache_dir: directory for the persistent tier; ``None`` keeps the
            cache purely in-process.
        memory_entries / memory_bytes: LRU caps of the in-process tier.
        max_workers: process-pool cap for batch fan-out (default:
            ``os.cpu_count()`` capped at 8, the repo-wide pool idiom).
        stats: optional shared :class:`ServiceStats` sink.
        ttl: optional entry lifetime in seconds for *both* tiers —
            entries older than this count as misses and are dropped
            (groundwork for calibration-drift invalidation).
        workers_mode: ``"persistent"`` (default; overridable via
            ``$CAQR_WORKERS_MODE``) reuses one long-lived
            :class:`~repro.service.workers.WorkerPool` across batch
            calls with fingerprint-keyed zero-copy request records;
            ``"ephemeral"`` keeps the old per-call pool.
        disk_entries / disk_bytes: optional per-shard LRU caps on the
            persistent tier (see :class:`~repro.service.cache.DiskCache`).
        ttl_by_bands: per-``calib_bands`` TTL overrides for the
            persistent tier — wider (coarser) drift bands tolerate more
            calibration movement per entry, so they typically get
            *shorter* lifetimes than exact digests (see
            :class:`~repro.service.cache.DiskCache`).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_entries: int = DEFAULT_MAX_ENTRIES,
        memory_bytes: int = DEFAULT_MAX_BYTES,
        max_workers: Optional[int] = None,
        stats: Optional[ServiceStats] = None,
        ttl: Optional[float] = None,
        workers_mode: Optional[str] = None,
        disk_entries: Optional[int] = None,
        disk_bytes: Optional[int] = None,
        ttl_by_bands: Optional[Mapping[int, float]] = None,
    ):
        self.stats = stats if stats is not None else ServiceStats()
        memory = MemoryCache(
            memory_entries, memory_bytes, stats=self.stats, ttl=ttl
        )
        disk = (
            DiskCache(
                cache_dir,
                stats=self.stats,
                ttl=ttl,
                max_entries_per_shard=disk_entries,
                max_bytes_per_shard=disk_bytes,
                ttl_by_bands=ttl_by_bands,
            )
            if cache_dir
            else None
        )
        self.cache = TieredCache(memory, disk)
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.workers_mode = resolve_workers_mode(workers_mode)
        self._lock = Lock()
        self._inflight: Dict[str, "Future[str]"] = {}
        self._worker_pool: Optional[WorkerPool] = None
        self._pool_lock = Lock()

    def worker_pool(self) -> WorkerPool:
        """The lazily spawned persistent pool (shared stats sink)."""
        with self._pool_lock:
            if self._worker_pool is None:
                self._worker_pool = WorkerPool(self.max_workers, stats=self.stats)
            return self._worker_pool

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        with self._pool_lock:
            if self._worker_pool is not None:
                self._worker_pool.shutdown()
                self._worker_pool = None

    # -- single-request path -------------------------------------------------

    def compile(
        self,
        target: Union[QuantumCircuit, nx.Graph],
        backend: Optional[Backend] = None,
        mode: str = "min_depth",
        qubit_limit: Optional[int] = None,
        reset_style: str = "cif",
        seed: int = 11,
        auto_commuting: bool = True,
        incremental: bool = True,
        parallel: bool = True,
        strategy: str = "auto",
        objective: Optional[str] = None,
        portfolio_workers: Optional[int] = None,
        calib_bands: Optional[int] = None,
    ) -> CompileReport:
        """Cached ``caqr_compile``: warm keys skip QS/SR entirely."""
        return self.compile_request(
            CompileRequest(
                target=target,
                backend=backend,
                mode=mode,
                qubit_limit=qubit_limit,
                reset_style=reset_style,
                seed=seed,
                auto_commuting=auto_commuting,
                incremental=incremental,
                parallel=parallel,
                strategy=strategy,
                objective=objective,
                portfolio_workers=portfolio_workers,
                calib_bands=calib_bands,
            )
        )

    def compile_request(self, request: CompileRequest) -> CompileReport:
        """Serve one :class:`CompileRequest` through the cache."""
        return self.compile_classified(request)[0]

    def compile_classified(
        self, request: CompileRequest, fingerprint: Optional[str] = None
    ) -> Tuple[CompileReport, str, str]:
        """Serve one request, returning ``(report, fingerprint, status)``.

        *status* is the wire-protocol cache label: ``"hit"`` (warm
        tier), ``"inflight"`` (joined an identical compilation another
        request started), or ``"miss"`` (this request paid for the cold
        compile).  The HTTP server forwards it as the ``X-CaQR-Cache``
        header.  Callers that already derived the fingerprint (the
        server's envelope fast path) pass it to skip re-hashing.
        """
        stats = self.stats
        stats.count("requests")
        if fingerprint is not None:
            key = fingerprint
        else:
            with stats.timed("fingerprint"):
                key = request.fingerprint()
        shard = request.shard()
        report = self._lookup(key, shard, request.resolved_calib_bands())
        if report is not None:
            stats.count("hits")
            return report, key, "hit"
        primary, future = self._claim(key)
        if not primary:
            # identical request already compiling: join it
            stats.count("dedup_folds")
            with stats.timed("deserialize"):
                return loads_entry(future.result(), key), key, "inflight"
        stats.count("misses")
        try:
            with stats.timed("compile"):
                report = _cold_compile(request, allow_parallel=True)
            text = self._store(key, report, shard)
            future.set_result(text)
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._inflight.pop(key, None)
        return report, key, "miss"

    # -- batch path ------------------------------------------------------------

    def compile_batch(
        self,
        requests: Sequence[CompileRequest],
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> List[CompileReport]:
        """Compile many requests; results come back in input order.

        Identical members (same fingerprint) are folded to one
        compilation; cache-warm keys are served without compiling; the
        remaining cold keys fan out over a process pool when *parallel*
        and more than one key is cold.
        """
        stats = self.stats
        for request in requests:
            if not isinstance(request, CompileRequest):
                raise ServiceError(
                    f"compile_batch expects CompileRequest members, "
                    f"got {type(request).__name__}"
                )
        stats.count("batch_calls")
        stats.count("batch_requests", len(requests))
        stats.count("requests", len(requests))
        with stats.timed("fingerprint"):
            keys = [request.fingerprint() for request in requests]
        unique: Dict[str, CompileRequest] = {}
        for key, request in zip(keys, requests):
            unique.setdefault(key, request)
        stats.count("batch_unique", len(unique))
        stats.count("dedup_folds", len(requests) - len(unique))
        shards = {key: request.shard() for key, request in unique.items()}

        texts: Dict[str, str] = {}
        fresh: set = set()
        joined: Dict[str, "Future[str]"] = {}
        owned: Dict[str, "Future[str]"] = {}
        cold: List[Tuple[str, CompileRequest]] = []
        for key, request in unique.items():
            text = self._lookup_text(
                key, shards[key], request.resolved_calib_bands()
            )
            if text is not None:
                stats.count("hits")
                texts[key] = text
                continue
            primary, future = self._claim(key)
            if primary:
                stats.count("misses")
                owned[key] = future
                cold.append((key, request))
            else:
                stats.count("dedup_folds")
                joined[key] = future

        try:
            if cold:
                workers = min(max_workers or self.max_workers, len(cold))
                if parallel and len(cold) > 1 and workers > 1:
                    stats.count("parallel_compiles", len(cold))
                    with stats.timed("compile"):
                        if self.workers_mode == "persistent":
                            tasks = [
                                ("entry", key, request, None)
                                for key, request in cold
                            ]
                            for (key, _), text in zip(
                                cold, self.worker_pool().run(tasks)
                            ):
                                texts[key] = text
                        else:
                            with ProcessPoolExecutor(max_workers=workers) as pool:
                                for key, text in pool.map(
                                    _compile_entry_worker, cold
                                ):
                                    texts[key] = text
                else:
                    stats.count("serial_compiles", len(cold))
                    for key, request in cold:
                        with stats.timed("compile"):
                            report = _cold_compile(request, allow_parallel=True)
                        texts[key] = dumps_entry(key, report)
                for key, _ in cold:
                    with stats.timed("store"):
                        self.cache.put(key, texts[key], shards[key])
                    fresh.add(key)
                    owned[key].set_result(texts[key])
        except BaseException as exc:
            for key, future in owned.items():
                if not future.done():
                    future.set_exception(exc)
            raise
        finally:
            with self._lock:
                for key in owned:
                    self._inflight.pop(key, None)

        for key, future in joined.items():
            texts[key] = future.result()

        results: List[CompileReport] = []
        first_fresh_seen: set = set()
        for key in keys:
            with stats.timed("deserialize"):
                report = loads_entry(texts[key], key)
            if key in fresh and key not in first_fresh_seen:
                # the member that paid for the compilation
                report.from_cache = False
                first_fresh_seen.add(key)
            results.append(report)
        return results

    # -- cache plumbing --------------------------------------------------------

    def _lookup_entry(
        self,
        key: str,
        shard: Optional[str] = None,
        bands: Optional[int] = None,
    ) -> Optional[Tuple[str, CompileReport]]:
        with self.stats.timed("lookup"):
            text = self.cache.get(key, shard, bands)
        if text is None:
            return None
        try:
            # decode here: a corrupt entry must register as a miss,
            # not blow up in the caller's hands
            with self.stats.timed("deserialize"):
                report = loads_entry(text, key)
        except ServiceError:
            # the tier counts corrupt_entries as it drops the bad file
            self.cache.drop_corrupt(key, shard)
            return None
        return text, report

    def _lookup_text(
        self,
        key: str,
        shard: Optional[str] = None,
        bands: Optional[int] = None,
    ) -> Optional[str]:
        entry = self._lookup_entry(key, shard, bands)
        return entry[0] if entry is not None else None

    def _lookup(
        self,
        key: str,
        shard: Optional[str] = None,
        bands: Optional[int] = None,
    ) -> Optional[CompileReport]:
        entry = self._lookup_entry(key, shard, bands)
        return entry[1] if entry is not None else None

    def _claim(self, key: str) -> Tuple[bool, "Future[str]"]:
        """Register intent to compile *key*; False means someone beat us."""
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                return False, future
            future = Future()
            self._inflight[key] = future
            return True, future

    def _store(
        self, key: str, report: CompileReport, shard: Optional[str] = None
    ) -> str:
        with self.stats.timed("serialize"):
            text = dumps_entry(key, report)
        with self.stats.timed("store"):
            self.cache.put(key, text, shard)
        self.stats.count("stores")
        return text

    def invalidate(self, fingerprint: str) -> bool:
        """Explicitly drop one fingerprint from both tiers (all shards).

        This is the calibration-drift hook: a stale entry can be retired
        by key without clearing the store.  Wired to ``POST
        /v1/cache/invalidate`` and ``repro cache clear --key``.
        """
        self.stats.count("invalidations")
        return self.cache.invalidate(fingerprint)

    def clear(self) -> None:
        """Drop every cached entry (both tiers)."""
        self.cache.clear()


# -- the process-wide default service -----------------------------------------

_default_service: Optional[CompileService] = None


def default_service() -> CompileService:
    """The lazily created process-wide service.

    Its persistent tier lives under ``$CAQR_CACHE_DIR`` when that is set
    at first use; otherwise the default service is memory-only.
    """
    global _default_service
    if _default_service is None:
        _default_service = CompileService(
            cache_dir=os.environ.get("CAQR_CACHE_DIR") or None
        )
    return _default_service


def reset_default_service() -> None:
    """Forget the process-wide service (tests re-point ``CAQR_CACHE_DIR``)."""
    global _default_service
    _default_service = None


def resolve_cache(spec: Union[None, bool, str, CompileService]):
    """Map ``caqr_compile``'s ``cache=`` argument onto a service.

    ``None``/``False`` — no caching; ``True`` — the process-wide default
    service; an ``http://`` URL string — a
    :class:`~repro.service.net.client.RemoteCompileService` talking to a
    ``repro serve`` instance (so local and remote services are drop-in
    interchangeable); any other string — a service persisting under that
    directory; a :class:`CompileService` (or anything exposing the same
    ``compile``/``compile_batch`` surface, e.g. an already-constructed
    remote client) — itself.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return default_service()
    if isinstance(spec, CompileService):
        return spec
    if isinstance(spec, str):
        if spec.startswith(("http://", "https://")):
            from repro.service.net.client import RemoteCompileService

            return RemoteCompileService(spec)
        return CompileService(cache_dir=spec)
    if callable(getattr(spec, "compile", None)) and callable(
        getattr(spec, "compile_batch", None)
    ):
        return spec
    raise ServiceError(f"unknown cache spec {spec!r}")
