"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Raised for malformed circuits or invalid circuit operations."""


class QasmError(CircuitError):
    """Raised when OpenQASM 2 text cannot be lexed or parsed."""


class DAGError(ReproError):
    """Raised for inconsistent DAG operations (unknown nodes, cycles, ...)."""


class HardwareError(ReproError):
    """Raised for invalid coupling maps, calibrations, or backends."""


class TranspilerError(ReproError):
    """Raised when a transpilation pass cannot complete."""


class SimulationError(ReproError):
    """Raised by the statevector simulator and samplers."""


class ReuseError(ReproError):
    """Raised by the CaQR passes for invalid reuse requests.

    Examples include asking for a qubit budget below the circuit's reuse
    floor, or attempting to apply a reuse pair that violates Condition 1
    or Condition 2 of the paper.
    """


class WorkloadError(ReproError):
    """Raised by benchmark/workload generators for invalid parameters."""


class ServiceError(ReproError):
    """Raised by the compile service for invalid cache or batch requests.

    Corrupt on-disk cache entries do *not* raise — the cache treats them
    as misses and recompiles; this error covers caller mistakes (unknown
    cache spec, malformed batch request).
    """


class RemoteServiceError(ServiceError):
    """Raised when a networked compile request fails for good.

    Carries the typed wire-protocol error *code* (see
    :data:`repro.service.net.wire.ERROR_CODES`) and the HTTP *status*
    the server answered with (``0`` when no response arrived at all),
    so callers can branch on the failure class — e.g. fall back to a
    local compile on ``connect_error`` but surface ``compile_error``.
    """

    def __init__(self, message: str, code: str = "internal", status: int = 0):
        super().__init__(message)
        self.code = code
        self.status = status
