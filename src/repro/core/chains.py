"""Joint reuse-chain discovery: beam search over window compatibility.

The greedy QS/SR engines commit to one reuse pair at a time and never
backtrack; the exact oracle (:mod:`repro.core.exact`) enumerates every
merge plan but only scales to ~10 qubits.  This module sits between
them: a **beam search over abstract chain states** that scores whole
chains ``q_i -> q_j -> q_k`` instead of one pair at a time, guided by
the Kuhn-matching width floor, at polynomial cost.

The search works on the :class:`~repro.core.windows.WindowAnalysis`
abstraction — a state is a tuple of chains (ordered original qubits
sharing one wire) and validity never materialises a circuit.  Each beam
level applies one more merge; children are deduplicated by the interned
canonical state, ranked by an objective-aware key whose head is the
matching floor (the reuse-potential lookahead lifted from pairs to
states), and the best ``beam_width`` survive.  Terminal states (no
valid merge left, or the register budget reached) are materialised with
:func:`~repro.core.transform.apply_reuse_chain` — per-step wire labels,
exactly the plan format the greedy engines emit — and the final winner
is picked on the materialised circuits.

Two cost models:

* **generic** (``objective="qubits" | "depth" | "est_error"``): minimise
  width first; depth ranks states by a chain-load proxy (the longest
  serialised wire) and breaks materialised ties by true depth;
  ``est_error`` additionally charges every inserted measure/reset,
  preferring plans that reach the same width through terminal-measure
  reuse, and breaks materialised ties by estimated duration.
* **dual-register** (``dual_register=True``, after DeCross et al.,
  arXiv:2210.08039): the trapped-ion regime where connectivity is
  all-to-all (routing is free) and mid-circuit measurement/reset
  dominates the error budget.  The search stops merging the moment a
  state fits ``register_budget`` wires and minimises *inserted*
  mid-circuit measure/reset count — a merge whose source chain ends in
  a terminal measurement inserts no new measurement
  (:func:`~repro.core.transform.apply_reuse_pair` reuses it), so chains
  are chosen to end on measured windows wherever possible.

A greedy guard keeps the subsystem conservative: when the beam's best
width does not reach the matching floor, the greedy QS sweep runs as a
fallback candidate, so ``ChainReuse`` is never wider than greedy QS on
any circuit where both apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReusePair
from repro.core.matching import max_bipartite_matching_size
from repro.core.profile import ReuseEvalStats
from repro.core.transform import apply_reuse_chain
from repro.core.windows import Chain, State, WindowAnalysis
from repro.exceptions import ReuseError
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["ChainPlan", "ChainReuseResult", "ChainReuse"]

_OBJECTIVES = ("qubits", "depth", "est_error")


@dataclass(frozen=True)
class ChainPlan:
    """One abstract merge plan, before materialisation.

    Attributes:
        pairs: per-step wire-label reuse pairs, ``apply_reuse_chain``-ready.
        chains: the final wire occupancy in *original* qubit labels.
        width: wires the plan leaves (``num_qubits - len(pairs)``).
        inserted_measures: measurements the transform will insert (merges
            whose source chain does *not* end in a terminal measurement).
        inserted_resets: resets the transform will insert (every merge).
    """

    pairs: Tuple[ReusePair, ...]
    chains: State
    width: int
    inserted_measures: int
    inserted_resets: int

    @property
    def mid_circuit_ops(self) -> int:
        """Dynamic operations the plan adds mid-circuit (the dual-register
        cost: measure + reset per merge, minus reused terminal measures)."""
        return self.inserted_measures + self.inserted_resets


@dataclass
class ChainReuseResult:
    """Outcome of one chain search.

    Attributes:
        circuit: the materialised circuit.
        qubits: its width.
        depth: its logical depth.
        pairs: the applied plan (per-step wire labels).
        plan: the abstract :class:`ChainPlan` behind ``pairs``.
        feasible: whether ``register_budget`` (if any) was met.
        from_greedy: the greedy-QS guard produced the final plan (the
            beam alone could not match it).
        floor: the matching-bound width floor of the input circuit.
    """

    circuit: QuantumCircuit
    qubits: int
    depth: int
    pairs: List[ReusePair]
    plan: ChainPlan
    feasible: bool = True
    from_greedy: bool = False
    floor: int = 0
    duration_dt_cached: Optional[int] = field(default=None, repr=False)

    @property
    def duration_dt(self) -> int:
        if self.duration_dt_cached is None:
            self.duration_dt_cached = circuit_duration_dt(self.circuit)
        return self.duration_dt_cached


@dataclass
class _BeamState:
    """One node of the beam: an abstract state plus its search bookkeeping."""

    wires: State
    plan: Tuple[ReusePair, ...]
    inserted_measures: int
    options: List[Tuple[int, int]]
    floor: int
    load: int


class ChainReuse:
    """Beam-searched joint chain construction over reuse windows.

    Args:
        objective: ``"qubits"`` (width, then depth), ``"depth"`` (width,
            then aggressively shallow chains), or ``"est_error"`` (width,
            then fewest inserted dynamic ops, then duration).
        reset_style: reuse reset idiom (``"cif"`` or ``"builtin"``).
        beam_width: surviving states per search level.
        register_budget: stop merging once a state fits this many wires
            (the trapped-ion register size, or a ``qubit_budget`` limit).
            ``None`` merges to exhaustion.
        dual_register: trapped-ion cost model — minimise inserted
            mid-circuit measure/reset count instead of raw width.
            Requires ``register_budget``-style stopping to be meaningful
            (without a budget it stops at the matching floor).
        materialize_top: abstract candidates to materialise before the
            final circuit-level comparison.
        greedy_guard: run the greedy QS sweep as a fallback candidate
            whenever the beam does not reach the matching floor, so the
            result is never wider than greedy QS.
        stats: optional shared :class:`~repro.core.profile.ReuseEvalStats`
            sink; a fresh one is created when omitted.
    """

    def __init__(
        self,
        objective: str = "qubits",
        reset_style: str = "cif",
        beam_width: int = 8,
        register_budget: Optional[int] = None,
        dual_register: bool = False,
        materialize_top: int = 4,
        greedy_guard: bool = True,
        stats: Optional[ReuseEvalStats] = None,
    ):
        if objective not in _OBJECTIVES:
            raise ReuseError(f"unknown chain objective {objective!r}")
        if reset_style not in ("cif", "builtin"):
            raise ReuseError(f"unknown reset style {reset_style!r}")
        if beam_width < 1:
            raise ReuseError("beam_width must be at least 1")
        if register_budget is not None and register_budget < 1:
            raise ReuseError("register_budget must be positive")
        if materialize_top < 1:
            raise ReuseError("materialize_top must be at least 1")
        self.objective = objective
        self.reset_style = reset_style
        self.beam_width = beam_width
        self.register_budget = register_budget
        self.dual_register = dual_register
        self.materialize_top = materialize_top
        self.greedy_guard = greedy_guard
        self.stats = stats if stats is not None else ReuseEvalStats()

    # -- scoring ----------------------------------------------------------------

    @staticmethod
    def _chain_load(chain: Chain, ops: Sequence[int]) -> int:
        """Serialised-wire length proxy: member ops plus 2 per barrier."""
        return sum(ops[q] for q in chain) + 2 * (len(chain) - 1)

    def _state_load(self, wires: State, ops: Sequence[int]) -> int:
        return max((self._chain_load(chain, ops) for chain in wires), default=0)

    def _abstract_key(self, state: _BeamState) -> Tuple:
        """Beam ranking key (smaller is better), fully deterministic.

        The head is the optimistic matching floor — the lookahead that
        stops the beam from greedily taking a merge that strands future
        reuse.  The tail is the plan itself, so ties never depend on
        construction order.
        """
        plan_key = tuple((p.source, p.target) for p in state.plan)
        width = len(state.wires)
        if self.dual_register:
            budget = self.register_budget
            over = 0 if budget is None else max(0, state.floor - budget)
            return (
                over,
                state.inserted_measures,
                len(state.plan),
                state.floor,
                width,
                state.load,
                plan_key,
            )
        if self.objective == "depth":
            return (state.floor, width, state.load, state.inserted_measures, plan_key)
        if self.objective == "est_error":
            return (
                state.floor,
                width,
                state.inserted_measures + len(state.plan),
                state.load,
                plan_key,
            )
        return (state.floor, width, state.inserted_measures, state.load, plan_key)

    def _final_key(self, plan: ChainPlan, circuit: QuantumCircuit) -> Tuple:
        """Materialised ranking key (smaller is better)."""
        if self.dual_register:
            # an explicit register size is a hard constraint: plans that
            # fit beat any mid-op saving from an over-budget plan
            over = 0
            if self.register_budget is not None:
                over = max(0, circuit.num_qubits - self.register_budget)
            return (
                over,
                plan.mid_circuit_ops,
                circuit.num_qubits,
                circuit.depth(),
                tuple((p.source, p.target) for p in plan.pairs),
            )
        if self.objective == "depth":
            tail: Tuple = (circuit.depth(), plan.mid_circuit_ops)
        elif self.objective == "est_error":
            tail = (plan.mid_circuit_ops, circuit_duration_dt(circuit))
        else:
            tail = (circuit.depth(), plan.mid_circuit_ops)
        return (
            circuit.num_qubits,
            *tail,
            tuple((p.source, p.target) for p in plan.pairs),
        )

    # -- the search --------------------------------------------------------------

    def search(self, circuit: QuantumCircuit) -> List[ChainPlan]:
        """Run the beam and return the top abstract candidates.

        The list is ordered best-first by the abstract key and holds at
        most ``materialize_top`` plans; it always contains at least one
        entry (the empty plan when nothing can merge).
        """
        with self.stats.timed("analyze"):
            analysis = WindowAnalysis(circuit)
        self.stats.count("windows", circuit.num_qubits)
        self.stats.count(
            "mid_circuit_windows", len(analysis.mid_circuit_windows())
        )
        ops = [w.num_ops for w in analysis.windows]
        terminal_measure = [w.terminal_measure for w in analysis.windows]

        def make_state(
            wires: State, plan: Tuple[ReusePair, ...], measures: int
        ) -> _BeamState:
            options, rows = analysis.chain_merges(wires)
            floor = len(wires) - max_bipartite_matching_size(rows, len(wires))
            return _BeamState(
                wires=wires,
                plan=plan,
                inserted_measures=measures,
                options=options,
                floor=floor,
                load=self._state_load(wires, ops),
            )

        root = make_state(analysis.initial_state(), (), 0)
        self._root_floor = root.floor
        budget = self.register_budget
        if budget is None and self.dual_register:
            # dual-register without an explicit register size: stop at the
            # matching floor — merging past it only adds measure/reset cost
            budget = root.floor

        def budget_met(width: int) -> bool:
            return budget is not None and width <= budget

        candidates: Dict[FrozenSet, _BeamState] = {}
        seen = {analysis.canonical(root.wires)}

        def offer(state: _BeamState) -> None:
            key = analysis.canonical(state.wires)
            if key not in candidates:
                candidates[key] = state

        beam = [root]
        with self.stats.timed("search"):
            while beam:
                children: List[_BeamState] = []
                for state in beam:
                    if budget_met(len(state.wires)) or not state.options:
                        offer(state)
                        continue
                    expanded = False
                    for u, v in state.options:
                        new_wires = WindowAnalysis.merge(state.wires, u, v)
                        key = analysis.canonical(new_wires)
                        if key in seen:
                            continue
                        seen.add(key)
                        source_tail = state.wires[u][-1]
                        measures = state.inserted_measures + (
                            0 if terminal_measure[source_tail] else 1
                        )
                        child = make_state(
                            new_wires,
                            state.plan + (ReusePair(u, v),),
                            measures,
                        )
                        children.append(child)
                        expanded = True
                        self.stats.count("states_expanded")
                    if not expanded:
                        # every successor was interned elsewhere: keep this
                        # state as a candidate so a viable plan survives
                        offer(state)
                if not children:
                    break
                children.sort(key=self._abstract_key)
                dropped = max(0, len(children) - self.beam_width)
                if dropped:
                    self.stats.count("states_dropped", dropped)
                beam = children[: self.beam_width]
        ranked = sorted(candidates.values(), key=self._abstract_key)
        top = ranked[: self.materialize_top] if ranked else [root]
        return [
            ChainPlan(
                pairs=state.plan,
                chains=state.wires,
                width=len(state.wires),
                inserted_measures=state.inserted_measures,
                inserted_resets=len(state.plan),
            )
            for state in top
        ]

    # -- materialisation ---------------------------------------------------------

    def _greedy_plan(self, circuit: QuantumCircuit) -> Optional[ChainPlan]:
        """The greedy QS sweep's narrowest point, as a chain plan."""
        from repro.core.qs_caqr import QSCaQR

        sweep = QSCaQR(
            objective="depth", reset_style=self.reset_style, parallel=False
        ).sweep(circuit)
        point = sweep[-1]
        if not point.pairs:
            return None
        wires: State = tuple((q,) for q in range(circuit.num_qubits))
        analysis = WindowAnalysis(circuit)
        measures = 0
        for pair in point.pairs:
            source_tail = wires[pair.source][-1]
            if not analysis.windows[source_tail].terminal_measure:
                measures += 1
            wires = WindowAnalysis.merge(wires, pair.source, pair.target)
        return ChainPlan(
            pairs=tuple(point.pairs),
            chains=wires,
            width=len(wires),
            inserted_measures=measures,
            inserted_resets=len(point.pairs),
        )

    def run(self, circuit: QuantumCircuit) -> ChainReuseResult:
        """Search, materialise, and return the winning chain plan."""
        plans = self.search(circuit)
        floor = getattr(self, "_root_floor", circuit.num_qubits)
        best_width = min(plan.width for plan in plans)
        guard: Optional[ChainPlan] = None
        if (
            self.greedy_guard
            and not self.dual_register
            and self.register_budget is None
            and best_width > floor
        ):
            guard = self._greedy_plan(circuit)
            if guard is not None and guard.width < best_width:
                plans = [guard] + list(plans)
                self.stats.count("greedy_fallback")
            else:
                guard = None
        best: Optional[Tuple[Tuple, ChainPlan, QuantumCircuit]] = None
        with self.stats.timed("materialize"):
            for plan in plans:
                materialised = apply_reuse_chain(
                    circuit, list(plan.pairs), reset_style=self.reset_style
                )
                self.stats.count("plans_materialized")
                key = self._final_key(plan, materialised)
                if best is None or key < best[0]:
                    best = (key, plan, materialised)
        assert best is not None  # search always returns at least one plan
        _, plan, materialised = best
        from_greedy = guard is not None and plan is guard
        self.stats.count("merges", len(plan.pairs))
        self.stats.count("inserted_measures", plan.inserted_measures)
        self.stats.count("inserted_resets", plan.inserted_resets)
        feasible = (
            self.register_budget is None
            or materialised.num_qubits <= self.register_budget
        )
        if not feasible:
            self.stats.count("budget_infeasible")
        return ChainReuseResult(
            circuit=materialised,
            qubits=materialised.num_qubits,
            depth=materialised.depth(),
            pairs=list(plan.pairs),
            plan=plan,
            feasible=feasible,
            from_greedy=from_greedy,
            floor=floor,
        )

    def minimum_qubits(self, circuit: QuantumCircuit) -> int:
        """The narrowest width the chain search reaches for *circuit*."""
        return self.run(circuit).qubits

    def reduce_to(self, circuit: QuantumCircuit, qubit_limit: int) -> ChainReuseResult:
        """Compile to at most *qubit_limit* wires, if possible.

        The budgeted search stops merging the moment a state fits, so it
        inserts the fewest dynamic operations that reach the budget; the
        result's ``feasible`` flag answers the paper's yes/no question.
        """
        if qubit_limit < 1:
            raise ReuseError("qubit limit must be positive")
        budgeted = ChainReuse(
            objective=self.objective,
            reset_style=self.reset_style,
            beam_width=self.beam_width,
            register_budget=qubit_limit,
            dual_register=self.dual_register,
            materialize_top=self.materialize_top,
            greedy_guard=self.greedy_guard,
            stats=self.stats,
        )
        return budgeted.run(circuit)
