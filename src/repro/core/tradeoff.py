"""Tradeoff exploration and the reuse-benefit identifier.

The paper generates, for every qubit budget, a transformed + hardware
mapped circuit, then selects per user demand (Section 3.2.1: "If the user
has provided a range of qubit counts, we can generate multiple transformed
versions and choose the one with the best circuit duration or fidelity").
This module implements that sweep-and-select loop and the "is reuse
beneficial for this application?" question raised in the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.qs_caqr import QSCaQR
from repro.core.qs_commuting import QSCaQRCommuting
from repro.exceptions import ReuseError
from repro.hardware.backends import Backend
from repro.transpiler.pipeline import transpile

__all__ = [
    "TradeoffPoint",
    "sweep_regular",
    "sweep_commuting",
    "select_point",
    "ReuseBenefitReport",
    "assess_reuse_benefit",
]


@dataclass
class TradeoffPoint:
    """One (qubit budget, metrics) point of the tradeoff curve.

    Logical metrics always present; compiled metrics filled in when a
    backend was supplied to the sweep.
    """

    qubits: int
    logical_depth: int
    logical_duration_dt: int
    circuit: QuantumCircuit
    compiled_depth: Optional[int] = None
    compiled_duration_dt: Optional[int] = None
    swap_count: Optional[int] = None
    two_qubit_count: Optional[int] = None


def _compile_point(point: TradeoffPoint, backend: Backend, seed: int) -> TradeoffPoint:
    result = transpile(point.circuit, backend, optimization_level=3, seed=seed)
    point.compiled_depth = result.depth
    point.compiled_duration_dt = result.duration_dt
    point.swap_count = result.swap_count
    point.two_qubit_count = result.two_qubit_count
    return point


def sweep_regular(
    circuit: QuantumCircuit,
    backend: Optional[Backend] = None,
    objective: str = "depth",
    reset_style: str = "cif",
    seed: int = 11,
    incremental: bool = True,
    parallel: bool = True,
    stats=None,
) -> List[TradeoffPoint]:
    """QS-CaQR sweep for a regular circuit, optionally hardware-mapped.

    Returns one point per achievable qubit count, original width first.
    ``incremental``/``parallel`` select the evaluation engine (see
    :class:`~repro.core.qs_caqr.QSCaQR`); both engines yield the same
    points.  *stats* is an optional
    :class:`~repro.core.profile.ReuseEvalStats` sink the sweep's engine
    counters/timers are folded into.
    """
    compiler = QSCaQR(
        objective=objective,
        reset_style=reset_style,
        incremental=incremental,
        parallel=parallel,
    )
    points: List[TradeoffPoint] = []
    for result in compiler.sweep(circuit):
        point = TradeoffPoint(
            qubits=result.qubits,
            logical_depth=result.depth,
            logical_duration_dt=result.duration_dt,
            circuit=result.circuit,
        )
        if backend is not None:
            _compile_point(point, backend, seed)
        points.append(point)
    if stats is not None:
        stats.merge(compiler.stats)
    return points


def sweep_commuting(
    graph: nx.Graph,
    backend: Optional[Backend] = None,
    reset_style: str = "cif",
    seed: int = 11,
    min_qubits: Optional[int] = None,
    candidate_evaluation: str = "schedule",
    strategy: str = "greedy",
    gamma: Optional[float] = None,
    beta: Optional[float] = None,
    parallel: bool = True,
    stats=None,
) -> List[TradeoffPoint]:
    """QS-CaQR-commuting sweep for a QAOA problem graph.

    Pass ``candidate_evaluation="degree"`` for fast pair ranking, or
    ``strategy="lifetime"`` for the deep-reuse event-driven sweep used on
    the large Fig. 3 / Fig. 14 instances.  ``gamma``/``beta`` override the
    default QAOA angles (e.g. when the graph was extracted from a circuit).
    """
    from repro.workloads.qaoa import QAOA_DEFAULT_BETA, QAOA_DEFAULT_GAMMA

    compiler = QSCaQRCommuting(
        graph,
        gamma=gamma if gamma is not None else QAOA_DEFAULT_GAMMA,
        beta=beta if beta is not None else QAOA_DEFAULT_BETA,
        reset_style=reset_style,
        candidate_evaluation=candidate_evaluation,
        parallel=parallel,
    )
    if strategy == "lifetime":
        results = compiler.lifetime_sweep()
    elif strategy == "greedy":
        results = compiler.sweep(min_qubits=min_qubits)
    else:
        raise ReuseError(f"unknown sweep strategy {strategy!r}")
    points: List[TradeoffPoint] = []
    for result in results:
        point = TradeoffPoint(
            qubits=result.qubits,
            logical_depth=result.depth,
            logical_duration_dt=result.duration_dt,
            circuit=result.circuit,
        )
        if backend is not None:
            _compile_point(point, backend, seed)
        points.append(point)
    if stats is not None:
        stats.merge(compiler.stats)
    return points


def select_point(points: List[TradeoffPoint], mode: str) -> TradeoffPoint:
    """Pick one sweep point per user demand.

    Modes (paper Table 1's three rows):

    * ``"baseline"`` — no reuse (the first point).
    * ``"max_reuse"`` — fewest qubits.
    * ``"min_depth"`` — smallest compiled depth (logical depth when the
      sweep was not hardware-mapped).
    * ``"min_duration"`` — smallest compiled/logical duration.
    * ``"min_swap"`` — fewest SWAPs (requires a hardware-mapped sweep).
    """
    if not points:
        raise ReuseError("empty tradeoff sweep")
    if mode == "baseline":
        return points[0]
    if mode == "max_reuse":
        return min(points, key=lambda p: (p.qubits, p.logical_depth))
    if mode == "min_depth":
        return min(
            points,
            key=lambda p: (
                p.compiled_depth if p.compiled_depth is not None else p.logical_depth,
                p.qubits,
            ),
        )
    if mode == "min_duration":
        return min(
            points,
            key=lambda p: (
                p.compiled_duration_dt
                if p.compiled_duration_dt is not None
                else p.logical_duration_dt,
                p.qubits,
            ),
        )
    if mode == "min_swap":
        if any(p.swap_count is None for p in points):
            raise ReuseError("min_swap selection needs a hardware-mapped sweep")
        return min(points, key=lambda p: (p.swap_count, p.qubits))
    raise ReuseError(f"unknown selection mode {mode!r}")


@dataclass
class ReuseBenefitReport:
    """Answer to "will qubit reuse benefit this application?".

    Attributes:
        original_qubits / minimum_qubits: sweep endpoints.
        saving_fraction: achievable qubit saving (0..1).
        depth_overhead_at_max: relative logical-depth increase at maximal
            reuse.
        knee_qubits / knee_depth_overhead: deepest saving whose depth
            overhead stays under the knee tolerance.
        beneficial: the recommendation.
    """

    original_qubits: int
    minimum_qubits: int
    saving_fraction: float
    depth_overhead_at_max: float
    knee_qubits: int
    knee_depth_overhead: float
    beneficial: bool


def assess_reuse_benefit(
    points: List[TradeoffPoint],
    min_saving: float = 0.2,
    knee_tolerance: float = 0.25,
) -> ReuseBenefitReport:
    """Classify an application as reuse-friendly or not.

    An application benefits when at least *min_saving* of its qubits can be
    saved at all (the paper's resource-capacity view: reuse lets larger
    programs run on smaller machines).  The knee fields quantify how much
    of that saving is available within *knee_tolerance* relative depth
    overhead — the heavy-tail argument of Fig. 3 — for callers who care
    about duration as much as width.
    """
    if not points:
        raise ReuseError("empty tradeoff sweep")
    base = points[0]
    floor = min(points, key=lambda p: p.qubits)
    saving = 1.0 - floor.qubits / base.qubits
    overhead_max = floor.logical_depth / base.logical_depth - 1.0
    knee = base
    for point in points:
        overhead = point.logical_depth / base.logical_depth - 1.0
        if overhead <= knee_tolerance and point.qubits < knee.qubits:
            knee = point
    knee_overhead = knee.logical_depth / base.logical_depth - 1.0
    return ReuseBenefitReport(
        original_qubits=base.qubits,
        minimum_qubits=floor.qubits,
        saving_fraction=saving,
        depth_overhead_at_max=overhead_max,
        knee_qubits=knee.qubits,
        knee_depth_overhead=knee_overhead,
        beneficial=saving >= min_saving - 1e-9,
    )
