"""Materialise a reuse pair: merge two logical wires through measure+reset.

Given a valid pair ``(source -> target)`` the transformation

1. measures the source qubit (reusing its existing terminal measurement
   when there is one, otherwise appending a measurement into a fresh
   classical bit),
2. resets the wire with a classically controlled X (or the built-in reset
   when ``reset_style="builtin"``), and
3. replays every gate of the target qubit on the source's wire,

producing a circuit one qubit narrower.  The instruction order is a
topological order of the dependency DAG augmented with the new
measure/reset nodes, so all original dependencies are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.core.conditions import ReuseAnalysis, ReusePair
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import ReuseError

__all__ = ["ReuseTransformation", "apply_reuse_pair", "apply_reuse_chain"]

# label attached to the instructions a reuse inserts, so analyses can
# identify them later
REUSE_LABEL = "caqr-reuse"


@dataclass
class ReuseTransformation:
    """Result of applying one reuse pair.

    Attributes:
        circuit: the transformed circuit (one qubit narrower).
        pair: the pair that was applied (indices refer to the *input*).
        qubit_map: input qubit index -> output qubit index (the target maps
            onto the source's new index).
        measure_clbit: classical bit holding the source's measurement.
    """

    circuit: QuantumCircuit
    pair: ReusePair
    qubit_map: Dict[int, int]
    measure_clbit: int


def _terminal_measure_node(dag: DAGCircuit, qubit: int) -> Optional[int]:
    """The node id of the source's final measurement, if its last op is one."""
    nodes = dag.nodes_on_qubit(qubit)
    if not nodes:
        return None
    last = dag.nodes[nodes[-1]].instruction
    if (
        last is not None
        and last.name == "measure"
        and last.qubits == (qubit,)
        and last.condition is None
    ):
        return nodes[-1]
    return None


def apply_reuse_pair(
    circuit: QuantumCircuit,
    pair: ReusePair,
    reset_style: str = "cif",
    validate: bool = True,
) -> ReuseTransformation:
    """Apply ``(source -> target)`` to *circuit*.

    Args:
        circuit: input logical circuit.
        pair: the reuse pair; must satisfy Conditions 1 and 2.
        reset_style: ``"cif"`` (measure + conditional X, the paper's
            optimised form) or ``"builtin"`` (measure + reset).
        validate: skip the validity check when the caller already ran it.

    Raises:
        ReuseError: when the pair violates either condition.
    """
    if reset_style not in ("cif", "builtin"):
        raise ReuseError(f"unknown reset style {reset_style!r}")
    if validate:
        analysis = ReuseAnalysis(circuit)
        if not analysis.condition1(pair):
            raise ReuseError(f"{pair} violates Condition 1 (shared gate)")
        if not analysis.condition2(pair):
            raise ReuseError(f"{pair} violates Condition 2 (dependency cycle)")

    source, target = pair.source, pair.target
    dag = DAGCircuit.from_circuit(circuit)
    source_nodes = dag.nodes_on_qubit(source)
    target_nodes = dag.nodes_on_qubit(target)
    num_clbits = circuit.num_clbits

    # 1. locate or create the source's measurement
    measure_node = _terminal_measure_node(dag, source)
    if measure_node is not None:
        clbit = dag.nodes[measure_node].instruction.clbits[0]
    else:
        clbit = num_clbits
        num_clbits += 1
        measure_instruction = Instruction(
            "measure", (source,), clbits=(clbit,), label=REUSE_LABEL
        )
        measure_node = dag.add_instruction_node(measure_instruction, tag=REUSE_LABEL)
        for node_id in source_nodes:
            dag.add_edge(node_id, measure_node)

    # 2. the reset: conditional X (or built-in reset)
    if reset_style == "cif":
        reset_instruction = Instruction(
            "x", (source,), condition=(clbit, 1), label=REUSE_LABEL
        )
    else:
        reset_instruction = Instruction("reset", (source,), label=REUSE_LABEL)
    reset_node = dag.add_instruction_node(reset_instruction, tag=REUSE_LABEL)
    dag.add_edge(measure_node, reset_node)
    for node_id in source_nodes:
        if node_id != measure_node:
            dag.add_edge(node_id, reset_node)

    # 3. the target's gates run after the reset
    for node_id in target_nodes:
        dag.add_edge(reset_node, node_id)
    if dag.has_cycle():  # defensive: validate=False callers
        raise ReuseError(f"{pair} creates a dependency cycle")

    # 4. emit in topological order with the target wire merged onto source
    qubit_map: Dict[int, int] = {}
    for q in range(circuit.num_qubits):
        if q == target:
            continue
        qubit_map[q] = q - (1 if q > target else 0)
    qubit_map[target] = qubit_map[source]

    out = QuantumCircuit(circuit.num_qubits - 1, num_clbits, circuit.name)
    for node_id in dag.topological_order():
        instruction = dag.nodes[node_id].instruction
        if instruction is None:
            continue
        out.append(instruction.remapped(qubit_map, None))
    return ReuseTransformation(out, pair, qubit_map, clbit)


def apply_reuse_chain(
    circuit: QuantumCircuit,
    pairs: List[ReusePair],
    reset_style: str = "cif",
) -> QuantumCircuit:
    """Apply several reuse pairs in sequence.

    Pair indices refer to the wire numbering *at the time each pair is
    applied* (the numbering shifts as wires merge), matching the paper's
    one-pair-at-a-time greedy loop.
    """
    current = circuit
    for pair in pairs:
        current = apply_reuse_pair(current, pair, reset_style=reset_style).circuit
    return current
