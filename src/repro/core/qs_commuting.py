"""QS-CaQR for commuting-gate applications (QAOA) — paper Section 3.2.2.

For circuits whose cost layer commutes (all ``RZZ`` gates of a QAOA round),
gate order is free, so:

* the **minimum qubit count** is the chromatic number of the problem
  graph's qubit interaction graph (graph coloring bound, Fig. 10);
* candidate pairs need only Condition 1 (no shared gate) plus acyclicity of
  the *imposed* dependence graph built from the chosen reuse pairs;
* each candidate pair set is evaluated by the paper's three-step
  maximum-weight-matching scheduler: gates whose dependencies are resolved
  form the frontier, edges feeding reuse measurements get a larger weight,
  and a maximum-weight matching picks one parallel layer per round.

Two matching engines are available: Edmonds' blossom algorithm (optimal,
what the paper uses) and a greedy maximal matching (the faster variant the
paper's Section 3.4 proposes as future work).  The driver picks greedy
automatically for large graphs; ``benchmarks/bench_ablation_matching.py``
quantifies the difference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReusePair
from repro.exceptions import ReuseError
from repro.transpiler.scheduling import circuit_duration_dt
from repro.workloads.qaoa import QAOA_DEFAULT_BETA, QAOA_DEFAULT_GAMMA

__all__ = [
    "minimum_qubits_by_coloring",
    "schedule_commuting",
    "CommutingSchedule",
    "materialize_commuting",
    "QSCommutingResult",
    "QSCaQRCommuting",
]

# weight given to frontier gates that feed a pending reuse measurement
# (paper: "assign larger weights to those gates as a parameter ... > 1")
REUSE_GATE_WEIGHT = 4

# above this edge count the driver switches from blossom to greedy matching
GREEDY_MATCHING_THRESHOLD = 120

# below this many (candidates x graph edges) the per-candidate scheduler
# runs stay in-process: pool startup dwarfs the work for small graphs
COMMUTING_PARALLEL_THRESHOLD = 20_000


def minimum_qubits_by_coloring(graph: nx.Graph) -> int:
    """Chromatic upper bound via DSATUR greedy coloring (paper Fig. 10).

    Qubits sharing a color never share a gate, so one physical wire can
    serve them all sequentially: the color count is the minimum achievable
    qubit usage for a commuting circuit.
    """
    if graph.number_of_nodes() == 0:
        return 0
    coloring = nx.algorithms.coloring.greedy_color(graph, strategy="DSATUR")
    return max(coloring.values()) + 1


@dataclass
class CommutingSchedule:
    """Output of the matching scheduler.

    Attributes:
        layers: gate layers; each layer is a list of problem-graph edges
            executed in parallel.
        measure_after_layer: for each reuse pair, the layer index after
            which its measure-and-reset fires (-1 = before any layer).
    """

    layers: List[List[Tuple[int, int]]]
    measure_after_layer: Dict[ReusePair, int]

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def _edge_key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _greedy_matching(graph: nx.Graph) -> Set[Tuple[int, int]]:
    """Weight-greedy maximal matching: sort by weight, take disjoint edges."""
    taken: Set[int] = set()
    matching: Set[Tuple[int, int]] = set()
    edges = sorted(
        graph.edges(data="weight", default=1),
        key=lambda item: (-item[2], item[0], item[1]),
    )
    for a, b, _weight in edges:
        if a in taken or b in taken:
            continue
        taken.add(a)
        taken.add(b)
        matching.add((a, b))
    return matching


def schedule_commuting(
    graph: nx.Graph,
    pairs: Sequence[ReusePair],
    reuse_weight: int = REUSE_GATE_WEIGHT,
    matching: str = "auto",
) -> CommutingSchedule:
    """The paper's Step 1-3 scheduler for a commuting gate set.

    Builds the imposed dependence graph ``G_D`` (every gate on a pair's
    source precedes its measurement node; the measurement precedes every
    gate on the target), then repeatedly schedules a matching of
    dependency-free gates, preferring gates that feed reuse measurements.

    Args:
        matching: ``"blossom"`` (optimal max-weight), ``"greedy"`` (fast
            maximal), or ``"auto"`` (greedy above
            :data:`GREEDY_MATCHING_THRESHOLD` edges).

    Raises:
        ReuseError: when the pair set is cyclic (the schedule stalls) or a
            pair violates Condition 1.
    """
    if matching == "auto":
        matching = (
            "greedy" if graph.number_of_edges() > GREEDY_MATCHING_THRESHOLD else "blossom"
        )
    if matching not in ("blossom", "greedy"):
        raise ReuseError(f"unknown matching method {matching!r}")

    gates: List[Tuple[int, int]] = sorted(_edge_key(*edge) for edge in graph.edges)

    feeds: Dict[Tuple[int, int], List[ReusePair]] = {g: [] for g in gates}
    pending_source_gates: Dict[ReusePair, int] = {}
    blocked_by: Dict[Tuple[int, int], int] = {g: 0 for g in gates}
    releases: Dict[ReusePair, List[Tuple[int, int]]] = {}

    for pair in pairs:
        if graph.has_edge(pair.source, pair.target):
            raise ReuseError(f"{pair} violates Condition 1 (edge in graph)")
        source_gates = [g for g in gates if pair.source in g]
        target_gates = [g for g in gates if pair.target in g]
        pending_source_gates[pair] = len(source_gates)
        releases[pair] = target_gates
        for g in source_gates:
            feeds[g].append(pair)
        for g in target_gates:
            blocked_by[g] += 1

    remaining: Set[Tuple[int, int]] = set(gates)
    fired: Set[ReusePair] = set()
    layers: List[List[Tuple[int, int]]] = []
    measure_after_layer: Dict[ReusePair, int] = {}

    def _fire_ready(layer_index: int) -> None:
        progressed = True
        while progressed:
            progressed = False
            for pair in pairs:
                if pair in fired or pending_source_gates[pair] > 0:
                    continue
                fired.add(pair)
                measure_after_layer[pair] = layer_index
                for g in releases[pair]:
                    blocked_by[g] -= 1
                progressed = True

    _fire_ready(-1)

    while remaining:
        frontier = [g for g in remaining if blocked_by[g] == 0]
        if not frontier:
            raise ReuseError("reuse pairs create a dependency cycle (stalled)")
        subgraph = nx.Graph()
        for g in frontier:
            subgraph.add_edge(g[0], g[1], weight=reuse_weight if feeds[g] else 1)
        if matching == "blossom":
            matched = nx.max_weight_matching(subgraph, maxcardinality=True)
        else:
            matched = _greedy_matching(subgraph)
        layer = sorted(_edge_key(a, b) for a, b in matched)
        if not layer:
            raise ReuseError("matching produced an empty layer")
        layers.append(layer)
        for g in layer:
            remaining.discard(g)
            for pair in feeds[g]:
                pending_source_gates[pair] -= 1
        _fire_ready(len(layers) - 1)
    return CommutingSchedule(layers, measure_after_layer)


def _extension_cost_worker(payload):
    """Process-pool entry point: cost of one chunk of candidate extensions.

    Returns ``None`` for candidates whose pair set stalls the scheduler
    (the commuting analogue of a Condition-2 cycle).
    """
    graph, pairs, candidates, matching = payload
    costs: List[Optional[int]] = []
    for candidate in candidates:
        trial = pairs + [candidate]
        try:
            schedule = schedule_commuting(graph, trial, matching=matching)
        except ReuseError:
            costs.append(None)
            continue
        costs.append(schedule_depth_estimate(schedule, trial))
    return costs


def schedule_depth_estimate(
    schedule: CommutingSchedule, pairs: Sequence[ReusePair]
) -> int:
    """Cheap depth proxy used to rank candidate pairs without materialising.

    Gate layers contribute one level each; every reuse on a wire adds the
    measure/reset block (~3 levels) to that wire, so the longest reuse
    chain is weighted in.
    """
    parent = {pair.target: pair.source for pair in pairs}

    def _depth(q: int) -> int:
        # chains may be cyclic when degree-0 qubits are involved (their
        # measure fires immediately, so a "loop" of seats is schedulable);
        # stop at revisits
        depth = 0
        seen = set()
        while q in parent and q not in seen:
            seen.add(q)
            depth += 1
            q = parent[q]
        return depth

    longest_chain = max((_depth(pair.target) for pair in pairs), default=0)
    return schedule.num_layers + 3 * longest_chain


def _wire_assignment(
    num_qubits: int, pairs: Sequence[ReusePair]
) -> Tuple[Dict[int, int], int]:
    """Merge reuse chains onto shared wires; return qubit->wire and width."""
    parent = list(range(num_qubits))

    def find(q: int) -> int:
        while parent[q] != q:
            parent[q] = parent[parent[q]]
            q = parent[q]
        return q

    for pair in pairs:
        parent[find(pair.target)] = find(pair.source)
    roots = sorted({find(q) for q in range(num_qubits)})
    root_index = {root: i for i, root in enumerate(roots)}
    return {q: root_index[find(q)] for q in range(num_qubits)}, len(roots)


def materialize_commuting(
    graph: nx.Graph,
    pairs: Sequence[ReusePair],
    schedule: Optional[CommutingSchedule] = None,
    gamma: float = QAOA_DEFAULT_GAMMA,
    beta: float = QAOA_DEFAULT_BETA,
    reset_style: str = "cif",
    matching: str = "auto",
    edge_angles: Optional[Dict[Tuple[int, int], float]] = None,
    mixer_angles: Optional[Dict[int, float]] = None,
) -> QuantumCircuit:
    """Build the transformed QAOA circuit for a pair set (paper Fig. 10/11).

    Per logical qubit the emitted sequence is ``H``, its cost gates (in
    schedule order), ``RX`` mixer, measurement — with the reuse pairs'
    measure + conditional-X splicing the next logical qubit onto the same
    wire.  Classical bit ``q`` always holds logical qubit ``q``'s outcome.

    Args:
        edge_angles: per-edge rzz angle overriding ``2 * gamma`` (used
            when the circuit was extracted from a heterogeneous source).
        mixer_angles: per-qubit rx angle overriding ``2 * beta``.
    """
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ReuseError("graph vertices must be 0..n-1")
    if schedule is None:
        schedule = schedule_commuting(graph, pairs, matching=matching)
    wire_of, width = _wire_assignment(n, pairs)
    circuit = QuantumCircuit(width, n, name=f"qaoa_reuse_{n}")

    started: Set[int] = set()
    finished: Set[int] = set()

    def _start(q: int) -> None:
        if q not in started:
            circuit.h(wire_of[q])
            started.add(q)

    def _finish(q: int, reset: bool) -> None:
        if q in finished:
            return
        _start(q)  # degree-0 qubits may finish before any gate
        mixer = (
            mixer_angles[q] if mixer_angles is not None else 2.0 * beta
        )
        circuit.rx(mixer, wire_of[q])
        circuit.measure(wire_of[q], q)
        if reset:
            if reset_style == "cif":
                circuit.x(wire_of[q]).c_if(q, 1)
            else:
                circuit.reset(wire_of[q])
        finished.add(q)

    fire_map: Dict[int, List[ReusePair]] = {}
    for pair, layer_index in schedule.measure_after_layer.items():
        fire_map.setdefault(layer_index, []).append(pair)

    for pair in sorted(fire_map.get(-1, []), key=lambda p: p.source):
        _finish(pair.source, reset=True)
    for layer_index, layer in enumerate(schedule.layers):
        for a, b in layer:
            _start(a)
            _start(b)
            angle = (
                edge_angles[(a, b)] if edge_angles is not None else 2.0 * gamma
            )
            circuit.rzz(angle, wire_of[a], wire_of[b])
        for pair in sorted(fire_map.get(layer_index, []), key=lambda p: p.source):
            _finish(pair.source, reset=True)
    for q in range(n):
        if q not in finished:
            _finish(q, reset=False)
    return circuit


@dataclass
class QSCommutingResult:
    """One point of the commuting sweep."""

    circuit: QuantumCircuit
    qubits: int
    depth: int
    duration_dt: int
    pairs: List[ReusePair] = field(default_factory=list)
    schedule: Optional[CommutingSchedule] = None
    feasible: bool = True


class QSCaQRCommuting:
    """Qubit-saving CaQR for commuting-gate (QAOA-style) applications.

    Args:
        graph: the QAOA problem graph (vertices ``0..n-1``).
        gamma / beta: cost and mixer angles (single round).
        reset_style: reuse reset idiom (``"cif"`` or ``"builtin"``).
        matching: scheduler matching engine (``"auto"``, ``"blossom"``,
            ``"greedy"``).
        max_candidates: cap on (source, target) candidates examined per
            greedy step; low-degree qubits are preferred since they finish
            earliest (the paper's power-law observation).
        parallel: fan per-candidate scheduler runs out to a process pool
            when the step workload (candidates × edges) is large enough.
        parallel_threshold: workload floor before fanning out (default
            :data:`COMMUTING_PARALLEL_THRESHOLD`).
        max_workers: pool size (default ``os.cpu_count()`` capped at 8).
        stats: :class:`~repro.core.profile.ReuseEvalStats` sink (one is
            created when omitted).
    """

    def __init__(
        self,
        graph: nx.Graph,
        gamma: float = QAOA_DEFAULT_GAMMA,
        beta: float = QAOA_DEFAULT_BETA,
        reset_style: str = "cif",
        matching: str = "auto",
        max_candidates: int = 64,
        candidate_evaluation: str = "schedule",
        edge_angles: Optional[Dict[Tuple[int, int], float]] = None,
        mixer_angles: Optional[Dict[int, float]] = None,
        parallel: bool = True,
        parallel_threshold: Optional[int] = None,
        max_workers: Optional[int] = None,
        stats=None,
    ):
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ReuseError("graph vertices must be 0..n-1")
        if candidate_evaluation not in ("schedule", "degree"):
            raise ReuseError(
                f"unknown candidate evaluation {candidate_evaluation!r}"
            )
        self.graph = graph
        self.gamma = gamma
        self.beta = beta
        self.reset_style = reset_style
        self.matching = matching
        self.max_candidates = max_candidates
        # "schedule" runs the matching scheduler per candidate (the paper's
        # evaluation); "degree" ranks by vertex degree and schedules only
        # the chosen pair — O(n) per step, for the 64/128-qubit sweeps
        self.candidate_evaluation = candidate_evaluation
        # optional heterogeneous angles (from extract_commuting_structure)
        self.edge_angles = edge_angles
        self.mixer_angles = mixer_angles
        self.n = n
        self.parallel = parallel
        self.parallel_threshold = (
            parallel_threshold
            if parallel_threshold is not None
            else COMMUTING_PARALLEL_THRESHOLD
        )
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        if stats is None:
            # lazy import: repro.core.profile imports this module
            from repro.core.profile import ReuseEvalStats

            stats = ReuseEvalStats()
        self.stats = stats
        self._executor = None

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the candidate-scoring process pool, if one started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "QSCaQRCommuting":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    # -- helpers -----------------------------------------------------------------

    def minimum_qubits(self) -> int:
        """Graph-coloring bound on achievable qubit usage."""
        return minimum_qubits_by_coloring(self.graph)

    def _materialize(self, pairs: Sequence[ReusePair]) -> QSCommutingResult:
        schedule = schedule_commuting(self.graph, pairs, matching=self.matching)
        circuit = materialize_commuting(
            self.graph,
            pairs,
            schedule,
            gamma=self.gamma,
            beta=self.beta,
            reset_style=self.reset_style,
            edge_angles=self.edge_angles,
            mixer_angles=self.mixer_angles,
        )
        return QSCommutingResult(
            circuit=circuit,
            qubits=circuit.num_qubits,
            depth=circuit.depth(),
            duration_dt=circuit_duration_dt(circuit),
            pairs=list(pairs),
            schedule=schedule,
        )

    def _chain_blocks(self, pairs: List[ReusePair], candidate: ReusePair) -> bool:
        """True when *candidate* would break a wire-chain invariant.

        Merging the candidate's two chains onto one wire requires
        **transitive Condition 1**: no edge may exist between any qubit of
        the source's chain and any of the target's chain (two qubits on
        one wire can never share a gate).  The same walk also rejects
        chain cycles (same component) — a loop of seats wastes both
        qubits' roles without saving a wire.
        """
        component: Dict[int, int] = {}

        def find(q: int) -> int:
            root = q
            while component.get(root, root) != root:
                root = component[root]
            return root

        for pair in pairs:
            component[find(pair.target)] = find(pair.source)
        source_root = find(candidate.source)
        target_root = find(candidate.target)
        if source_root == target_root:
            return True  # cycle
        members: Dict[int, List[int]] = {}
        for q in range(self.n):
            members.setdefault(find(q), []).append(q)
        for a in members.get(source_root, [candidate.source]):
            for b in members.get(target_root, [candidate.target]):
                if self.graph.has_edge(a, b):
                    return True
        return False

    def _candidates(self, pairs: List[ReusePair]) -> List[ReusePair]:
        used_sources = {pair.source for pair in pairs}
        used_targets = {pair.target for pair in pairs}
        degree = dict(self.graph.degree())
        sources = sorted(
            (q for q in range(self.n) if q not in used_sources),
            key=lambda q: (degree.get(q, 0), q),
        )
        targets = sorted(
            (q for q in range(self.n) if q not in used_targets),
            key=lambda q: (degree.get(q, 0), q),
        )
        per_side = max(2, int(self.max_candidates**0.5) + 1)
        out: List[ReusePair] = []
        for source in sources[:per_side]:
            for target in targets[:per_side]:
                if source == target or self.graph.has_edge(source, target):
                    continue
                pair = ReusePair(source, target)
                if self._chain_blocks(pairs, pair):
                    continue
                out.append(pair)
                if len(out) >= self.max_candidates:
                    return out
        return out

    def _extension_costs(
        self, pairs: List[ReusePair], candidates: List[ReusePair]
    ) -> List[Optional[int]]:
        """Depth-estimate cost per candidate (None = infeasible/cyclic)."""
        self.stats.count("evaluations", len(candidates))
        workload = len(candidates) * max(1, self.graph.number_of_edges())
        if (
            self.parallel
            and len(candidates) >= 2 * self.max_workers
            and workload >= self.parallel_threshold
        ):
            self.stats.count("parallel_batches")
            chunk = max(1, -(-len(candidates) // self.max_workers))
            payloads = [
                (self.graph, list(pairs), candidates[i : i + chunk], self.matching)
                for i in range(0, len(candidates), chunk)
            ]
            costs: List[Optional[int]] = []
            for part in self._pool().map(_extension_cost_worker, payloads):
                costs.extend(part)
            return costs
        self.stats.count("serial_batches")
        return _extension_cost_worker(
            (self.graph, list(pairs), candidates, self.matching)
        )

    def _best_extension(
        self, pairs: List[ReusePair]
    ) -> Optional[Tuple[ReusePair, CommutingSchedule]]:
        if self.candidate_evaluation == "degree":
            return self._best_extension_by_degree(pairs)
        candidates = self._candidates(pairs)
        if not candidates:
            return None
        with self.stats.timed("score"):
            costs = self._extension_costs(pairs, candidates)
        best_index: Optional[int] = None
        for index, cost in enumerate(costs):
            if cost is None:
                continue
            if best_index is None or cost < costs[best_index]:
                best_index = index
        if best_index is None:
            return None
        winner = candidates[best_index]
        schedule = schedule_commuting(
            self.graph, pairs + [winner], matching=self.matching
        )
        return winner, schedule

    def _best_extension_by_degree(
        self, pairs: List[ReusePair]
    ) -> Optional[Tuple[ReusePair, CommutingSchedule]]:
        """Fast extension: low-degree qubits finish earliest and cost the
        least depth, so rank pairs by degree and take the first feasible
        one (feasibility still checked by running the scheduler once)."""
        for candidate in self._candidates(pairs):
            trial = pairs + [candidate]
            try:
                schedule = schedule_commuting(
                    self.graph, trial, matching=self.matching
                )
            except ReuseError:
                continue
            return candidate, schedule
        return None

    # -- public API -------------------------------------------------------------------

    def sweep(self, min_qubits: Optional[int] = None) -> List[QSCommutingResult]:
        """One result per achievable qubit count, original width downwards."""
        floor = max(min_qubits or 1, 1)
        points = [self._materialize([])]
        pairs: List[ReusePair] = []
        while points[-1].qubits > floor:
            extension = self._best_extension(pairs)
            if extension is None:
                break
            pairs.append(extension[0])
            self.stats.count("steps")
            points.append(self._materialize(pairs))
        return points

    def reduce_to(self, qubit_limit: int) -> QSCommutingResult:
        """Compile to at most *qubit_limit* qubits; ``feasible`` is the
        yes/no answer."""
        if qubit_limit < 1:
            raise ReuseError("qubit limit must be positive")
        pairs: List[ReusePair] = []
        current = self._materialize(pairs)
        while current.qubits > qubit_limit:
            extension = self._best_extension(pairs)
            if extension is None:
                current.feasible = False
                return current
            pairs.append(extension[0])
            self.stats.count("steps")
            current = self._materialize(pairs)
        return current

    # -- lifetime (deep-reuse) strategy ----------------------------------------

    def _materialize_lifetime(self, budget: int) -> QSCommutingResult:
        from repro.core.lifetime import lifetime_schedule

        pairs, schedule = lifetime_schedule(
            self.graph, budget, matching=self.matching
        )
        circuit = materialize_commuting(
            self.graph,
            pairs,
            schedule,
            gamma=self.gamma,
            beta=self.beta,
            reset_style=self.reset_style,
            edge_angles=self.edge_angles,
            mixer_angles=self.mixer_angles,
        )
        return QSCommutingResult(
            circuit=circuit,
            qubits=circuit.num_qubits,
            depth=circuit.depth(),
            duration_dt=circuit_duration_dt(circuit),
            pairs=list(pairs),
            schedule=schedule,
        )

    def lifetime_floor(self) -> int:
        """Smallest budget the lifetime scheduler can realise."""
        from repro.core.lifetime import lifetime_minimum_qubits

        return lifetime_minimum_qubits(self.graph, matching=self.matching)

    def lifetime_sweep(
        self, budgets: Optional[Sequence[int]] = None
    ) -> List[QSCommutingResult]:
        """Deep-reuse sweep via the event-driven lifetime scheduler.

        Reaches far smaller widths than the pair-greedy on large graphs
        (see :mod:`repro.core.lifetime`); one result per feasible budget,
        widest first.

        Args:
            budgets: explicit wire budgets to evaluate (defaults to every
                width from the graph size down to the lifetime floor).
        """
        if budgets is None:
            floor = self.lifetime_floor()
            budgets = range(self.n, floor - 1, -1)
        points: List[QSCommutingResult] = []
        for budget in budgets:
            try:
                point = self._materialize_lifetime(budget)
            except ReuseError:
                break
            # skip duplicate widths (budget > needed wires)
            if points and point.qubits >= points[-1].qubits:
                continue
            points.append(point)
        return points

    def reduce_to_lifetime(self, qubit_limit: int) -> QSCommutingResult:
        """Budgeted compile via the lifetime scheduler."""
        if qubit_limit < 1:
            raise ReuseError("qubit limit must be positive")
        try:
            return self._materialize_lifetime(qubit_limit)
        except ReuseError:
            point = self._materialize([])
            point.feasible = False
            return point
