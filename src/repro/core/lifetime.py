"""Event-driven lifetime scheduling for commuting circuits at a wire budget.

The pair-greedy of :mod:`repro.core.qs_commuting` evaluates one reuse pair
at a time — faithful to the paper's per-pair description, but the deep
reuse chains of Fig. 3 (64-qubit QAOA down to a handful of wires) need
thousands of coordinated decisions.  This module reaches those savings via
the equivalent *online* formulation:

* qubits are *born* (seated on a wire) in a precomputed order and *die*
  (measure + reset) once every gate touching them has been scheduled —
  which can only happen after all their neighbours are born, so the
  reuse validity conditions hold by construction;
* each round schedules a maximum(-weight) matching of gates between live
  qubits, exactly the paper's Step-3 scheduler;
* every seat on a previously-used wire is a reuse pair
  ``(previous occupant -> seated qubit)``.

The wire budget achievable this way is governed by the birth order: a
qubit is live from its birth until its last neighbour arrives, so the
minimum width equals the *vertex separation number* of the order.  The
default order comes from a greedy vertex-separation heuristic, which is
what lets power-law graphs (small separators) compress far more than
uniform random graphs (the paper's central Fig. 3 contrast).

The output is the exact pair list + witness schedule that
:func:`repro.core.qs_commuting.materialize_commuting` consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.conditions import ReusePair
from repro.core.qs_commuting import (
    GREEDY_MATCHING_THRESHOLD,
    CommutingSchedule,
    _greedy_matching,
)
from repro.exceptions import ReuseError

__all__ = [
    "vertex_separation_order",
    "best_birth_order",
    "alive_profile",
    "lifetime_schedule",
    "lifetime_minimum_qubits",
]


def vertex_separation_order(graph: nx.Graph) -> List[int]:
    """Greedy birth order minimising the peak number of live qubits.

    At each step the vertex joining the prefix is chosen to minimise the
    resulting boundary (live) size, preferring vertices that retire the
    most currently-live vertices and introduce the fewest new neighbours.
    """
    n = graph.number_of_nodes()
    prefix: Set[int] = set()
    order: List[int] = []
    # outside-neighbour count per vertex, updated incrementally
    outside = {v: graph.degree(v) for v in graph.nodes}
    while len(order) < n:
        candidates = [v for v in graph.nodes if v not in prefix]

        def _score(v: int):
            # vertices this birth retires (their last outside neighbour is v)
            retired = sum(
                1
                for u in graph.neighbors(v)
                if u in prefix and outside[u] == 1
            )
            # live-set growth: v stays live iff it still has unborn
            # neighbours after joining the prefix
            new_outside = sum(1 for u in graph.neighbors(v) if u not in prefix)
            stays_live = 1 if new_outside > 0 else 0
            return (stays_live - retired, new_outside, graph.degree(v), v)

        best = min(candidates, key=_score)
        order.append(best)
        prefix.add(best)
        for u in graph.neighbors(best):
            outside[u] -= 1
    return order


def best_birth_order(graph: nx.Graph) -> List[int]:
    """The birth order with the smallest peak live count among heuristics.

    Candidates: the greedy vertex-separation order (wins on paths, trees,
    sparse graphs), descending degree (wins on hub-concentrated graphs —
    hubs live throughout, so they should be born first and leaves cycled
    through the remaining wires), and reverse-degeneracy (core first).
    """
    candidates = [vertex_separation_order(graph)]
    if graph.number_of_nodes():
        candidates.append(
            sorted(graph.nodes, key=lambda v: (-graph.degree(v), v))
        )
        core = nx.core_number(graph)
        candidates.append(
            sorted(graph.nodes, key=lambda v: (-core[v], -graph.degree(v), v))
        )
    return min(candidates, key=lambda order: max(alive_profile(graph, order), default=0))


def alive_profile(graph: nx.Graph, order: Sequence[int]) -> List[int]:
    """Number of live qubits after each birth in *order*.

    A qubit is live from its birth until its last neighbour is born
    (inclusive); isolated qubits live for exactly their own birth step.
    The maximum of this profile is the wire budget the order needs.
    """
    position = {v: i for i, v in enumerate(order)}
    # a vertex lives at least through its own birth step, even when all
    # its neighbours were born earlier
    death = {
        v: max(
            position[v],
            max((position[u] for u in graph.neighbors(v)), default=position[v]),
        )
        for v in order
    }
    profile: List[int] = []
    for i, _v in enumerate(order):
        live = sum(
            1 for u in order[: i + 1] if death[u] >= i and position[u] <= i
        )
        profile.append(live)
    return profile


def lifetime_schedule(
    graph: nx.Graph,
    num_wires: int,
    matching: str = "auto",
    reuse_weight: int = 4,
    order: Optional[Sequence[int]] = None,
) -> Tuple[List[ReusePair], CommutingSchedule]:
    """Schedule *graph*'s commuting gates on at most *num_wires* wires.

    Args:
        graph: problem graph with vertices ``0..n-1``.
        num_wires: wire budget.
        matching: per-round matching engine (as in ``schedule_commuting``).
        order: explicit birth order; defaults to the greedy
            vertex-separation order.

    Returns:
        ``(pairs, schedule)`` — the reuse pairs in firing order and the
        witness gate schedule.

    Raises:
        ReuseError: when the budget is infeasible for the given order.
    """
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ReuseError("graph vertices must be 0..n-1")
    if num_wires < 1:
        raise ReuseError("need at least one wire")
    num_wires = min(num_wires, n)
    if matching == "auto":
        matching = (
            "greedy" if graph.number_of_edges() > GREEDY_MATCHING_THRESHOLD else "blossom"
        )
    birth_order = list(order) if order is not None else best_birth_order(graph)
    if sorted(birth_order) != list(range(n)):
        raise ReuseError("order must be a permutation of the vertices")

    remaining: Dict[int, Set[int]] = {q: set(graph.neighbors(q)) for q in graph.nodes}
    active: Set[int] = set()
    finished: Set[int] = set()
    free_wires: List[Optional[int]] = [None] * num_wires  # None = fresh
    next_birth = 0
    pairs: List[ReusePair] = []
    layers: List[List[Tuple[int, int]]] = []
    measure_after: Dict[ReusePair, int] = {}

    def _seat_births() -> bool:
        nonlocal next_birth
        seated = False
        while next_birth < n and free_wires:
            qubit = birth_order[next_birth]
            occupant = free_wires.pop(0)
            active.add(qubit)
            if occupant is not None:
                pair = ReusePair(occupant, qubit)
                pairs.append(pair)
                measure_after[pair] = len(layers) - 1
            next_birth += 1
            seated = True
        return seated

    def _finish_ready() -> bool:
        done = [q for q in active if not remaining[q]]
        for q in done:
            active.discard(q)
            finished.add(q)
            free_wires.append(q)
        return bool(done)

    _seat_births()
    _finish_ready()
    _seat_births()

    while any(remaining[q] for q in graph.nodes):
        frontier = nx.Graph()
        for q in active:
            for other in remaining[q]:
                if other in active:
                    endangered = (
                        len(remaining[q]) == 1 or len(remaining[other]) == 1
                    )
                    frontier.add_edge(
                        q, other, weight=reuse_weight if endangered else 1
                    )
        progressed = False
        if frontier.number_of_edges():
            if matching == "blossom":
                matched = nx.max_weight_matching(frontier, maxcardinality=True)
            else:
                matched = _greedy_matching(frontier)
            layer = sorted(tuple(sorted(edge)) for edge in matched)
            layers.append(layer)
            for a, b in layer:
                remaining[a].discard(b)
                remaining[b].discard(a)
            progressed = True
        if _finish_ready():
            progressed = True
        if _seat_births():
            progressed = True
        if not progressed:
            raise ReuseError(
                f"lifetime schedule deadlocked at {num_wires} wires "
                f"({n - next_birth} qubits still waiting to be born)"
            )
    # drain trailing births: gate-free qubits finish instantly, so keep
    # cycling finish/seat until quiescent (handles edgeless graphs at any
    # wire budget)
    while True:
        finished_any = _finish_ready()
        seated_any = _seat_births()
        if not (finished_any or seated_any):
            break
    if next_birth < n:
        raise ReuseError(
            f"lifetime schedule deadlocked at {num_wires} wires "
            f"({n - next_birth} isolated qubits could not be seated)"
        )
    return pairs, CommutingSchedule(layers, measure_after)


def lifetime_minimum_qubits(
    graph: nx.Graph,
    matching: str = "auto",
    order: Optional[Sequence[int]] = None,
) -> int:
    """Smallest feasible wire budget under the (given or default) order.

    The alive profile of the order is both a lower and an upper bound for
    this scheduler, so no search is needed; the result is verified by one
    scheduling run.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    birth_order = list(order) if order is not None else best_birth_order(graph)
    budget = max(alive_profile(graph, birth_order))
    lifetime_schedule(graph, budget, matching=matching, order=birth_order)
    return budget
