"""QS-CaQR for regular (non-commuting) circuits — paper Section 3.2.1.

The driver greedily reduces qubit usage one wire at a time:

1. enumerate all valid reuse pairs (Conditions 1 & 2),
2. evaluate each pair by the critical path of the DAG with the dummy
   measurement node ``D`` inserted (Fig. 9),
3. apply the best pair (smallest resulting depth or duration),
4. repeat until the requested qubit budget is reached or no pair remains.

``sweep`` records every intermediate circuit so callers can explore the
full qubit-usage / depth tradeoff curve (Figs. 3, 13, 14).

Two execution engines produce identical pair sequences:

* the **incremental engine** (default) drives a
  :class:`~repro.core.session.ReuseSession` — one DAG + descendants-bitset
  cache for the whole sweep, batched candidate costs through
  :class:`~repro.core.evaluate.PairScorer` (process-pool fan-out on large
  circuits), and a closure-free reuse-potential lookahead;
* the **reference engine** (``incremental=False``) re-analyses the
  materialised circuit from scratch at every step — the paper-literal
  path the differential tests pin the fast engine against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReuseAnalysis, ReusePair
from repro.core.evaluate import (
    PairScorer,
    evaluate_pair_depth,
    evaluate_pair_duration,
)
from repro.core.profile import ReuseEvalStats
from repro.core.session import ReuseSession
from repro.core.transform import apply_reuse_pair
from repro.exceptions import ReuseError
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["QSCaQRResult", "QSCaQR"]


@dataclass
class QSCaQRResult:
    """One point of the qubit-saving sweep.

    Attributes:
        circuit: the transformed logical circuit.
        qubits: its width (qubit usage).
        depth: logical circuit depth.
        duration_dt: estimated logical duration with default gate times —
            computed lazily on first access unless the sweep's objective
            already priced it (``objective="duration"``).
        pairs: reuse pairs applied so far (indices are per-step wire labels).
        feasible: whether the requested budget was reached (``reduce_to``
            sets this; a sweep's entries are feasible by construction).
    """

    circuit: QuantumCircuit
    qubits: int
    depth: int
    pairs: List[ReusePair] = field(default_factory=list)
    feasible: bool = True
    duration_dt_cached: Optional[int] = field(default=None, repr=False)

    @property
    def duration_dt(self) -> int:
        if self.duration_dt_cached is None:
            self.duration_dt_cached = circuit_duration_dt(self.circuit)
        return self.duration_dt_cached


class QSCaQR:
    """Qubit-saving CaQR for regular applications.

    Args:
        objective: ``"depth"`` ranks candidate pairs by resulting circuit
            depth; ``"duration"`` by estimated duration in dt (which
            penalises the slow measurement the reuse inserts).
        reset_style: ``"cif"`` (measure + conditional X) or ``"builtin"``.
        lookahead_width: cap on how many of the cheapest candidates get the
            reuse-potential lookahead (None = all of them, exact for the
            paper's benchmark sizes).
        incremental: drive the sweep through a persistent
            :class:`~repro.core.session.ReuseSession` instead of
            re-analysing the circuit from scratch each step.  Both engines
            select identical pair sequences.
        parallel: allow process-pool fan-out of candidate scoring and the
            lookahead on large circuits (small ones stay serial — see the
            workload thresholds in :mod:`repro.core.evaluate` and
            :mod:`repro.core.session`).
        parallel_threshold: override both fan-out thresholds at once.
        max_workers: process-pool size.

    The instance's :attr:`stats` (a
    :class:`~repro.core.profile.ReuseEvalStats`) accumulates evaluation
    counters, cache hits, and wall-time buckets across runs.
    """

    def __init__(
        self,
        objective: str = "depth",
        reset_style: str = "cif",
        lookahead_width: Optional[int] = None,
        incremental: bool = True,
        parallel: bool = True,
        parallel_threshold: Optional[int] = None,
        max_workers: Optional[int] = None,
    ):
        if objective not in ("depth", "duration"):
            raise ReuseError(f"unknown objective {objective!r}")
        self.objective = objective
        self.reset_style = reset_style
        # None = evaluate the reuse-potential lookahead on every candidate
        # (exact for the paper's benchmark sizes); set an int to cap the
        # window on very wide circuits.
        self.lookahead_width = lookahead_width
        self.incremental = incremental
        self.parallel = parallel
        self.parallel_threshold = parallel_threshold
        self.max_workers = max_workers
        self.stats = ReuseEvalStats()

    # -- single greedy step ---------------------------------------------------

    @staticmethod
    def _reuse_potential(circuit: QuantumCircuit) -> int:
        """Upper bound on further merges: max bipartite matching over the
        valid-pair relation (each qubit once as source, once as target).

        A pair that looks cheap by critical path can still destroy future
        reuse (e.g. pairing BV's first data qubit with its *last* one
        breaks the chain that reaches the 2-qubit floor); this bound is
        the lookahead that prevents such dead ends.
        """
        import networkx as nx

        pairs = ReuseAnalysis(circuit).valid_pairs()
        if not pairs:
            return 0
        graph = nx.Graph()
        sources = {("s", p.source) for p in pairs}
        for pair in pairs:
            graph.add_edge(("s", pair.source), ("t", pair.target))
        matching = nx.algorithms.bipartite.hopcroft_karp_matching(graph, sources)
        return len(matching) // 2

    def best_pair(self, circuit: QuantumCircuit) -> Optional[ReusePair]:
        """The cheapest valid pair that preserves maximal reuse potential.

        Candidates are ranked by the critical path of the DAG with the
        dummy node inserted (paper Fig. 9); among the ``lookahead_width``
        cheapest, the pair whose application leaves the largest remaining
        reuse-matching bound wins (cost breaks ties).

        This is the from-scratch reference evaluation; the incremental
        engine reproduces its choices without rebuilding the analysis.
        """
        analysis = ReuseAnalysis(circuit)
        candidates = analysis.valid_pairs()
        if not candidates:
            return None

        def _cost(pair: ReusePair):
            if self.objective == "depth":
                value = evaluate_pair_depth(analysis.dag, pair)
            else:
                value = evaluate_pair_duration(analysis.dag, pair, self.reset_style)
            return (value, pair.source, pair.target)

        ranked = sorted(candidates, key=_cost)
        if self.lookahead_width is not None:
            ranked = ranked[: max(1, self.lookahead_width)]
        window = ranked
        best_pair: Optional[ReusePair] = None
        best_key = None
        for pair in window:
            transformed = apply_reuse_pair(
                circuit, pair, reset_style=self.reset_style, validate=False
            ).circuit
            potential = self._reuse_potential(transformed)
            key = (-potential, _cost(pair))
            if best_key is None or key < best_key:
                best_key = key
                best_pair = pair
        return best_pair

    def _best_pair_session(
        self, session: ReuseSession, scorer: PairScorer
    ) -> Optional[ReusePair]:
        """Incremental replica of :meth:`best_pair` on the live session."""
        candidates = session.valid_pairs()
        if not candidates:
            return None
        with self.stats.timed("score"):
            costs = scorer.score_all(
                session.dag, candidates, nodes_by_qubit=session.nodes_by_label()
            )

        def _cost(pair: ReusePair):
            return (costs[pair], pair.source, pair.target)

        ranked = sorted(candidates, key=_cost)
        if self.lookahead_width is not None:
            ranked = ranked[: max(1, self.lookahead_width)]
        with self.stats.timed("lookahead"):
            potentials = session.reuse_potentials(ranked)
        best_pair: Optional[ReusePair] = None
        best_key = None
        for pair in ranked:
            key = (-potentials[pair], _cost(pair))
            if best_key is None or key < best_key:
                best_key = key
                best_pair = pair
        return best_pair

    def _point(
        self,
        circuit: QuantumCircuit,
        pairs: List[ReusePair],
        feasible: bool = True,
    ) -> QSCaQRResult:
        result = QSCaQRResult(
            circuit=circuit,
            qubits=circuit.num_qubits,
            depth=circuit.depth(),
            pairs=list(pairs),
            feasible=feasible,
        )
        # only the duration objective pays for scheduling at sweep time;
        # depth sweeps defer it to first access (see QSCaQRResult)
        if self.objective == "duration":
            result.duration_dt_cached = circuit_duration_dt(circuit)
        return result

    # -- engine plumbing --------------------------------------------------------

    def _session(self, circuit: QuantumCircuit) -> ReuseSession:
        kwargs = {}
        if self.parallel_threshold is not None:
            kwargs["parallel_threshold"] = self.parallel_threshold
        return ReuseSession(
            circuit,
            reset_style=self.reset_style,
            parallel=self.parallel,
            max_workers=self.max_workers,
            stats=self.stats,
            **kwargs,
        )

    def _scorer(self) -> PairScorer:
        kwargs = {}
        if self.parallel_threshold is not None:
            kwargs["parallel_threshold"] = self.parallel_threshold
        return PairScorer(
            objective=self.objective,
            reset_style=self.reset_style,
            parallel=self.parallel,
            max_workers=self.max_workers,
            stats=self.stats,
            **kwargs,
        )

    # -- public API -------------------------------------------------------------

    def sweep(self, circuit: QuantumCircuit, min_qubits: int = 1) -> List[QSCaQRResult]:
        """All achievable qubit counts, from the original width to the floor.

        Returns one result per width; the first entry is the untouched
        input, the last is the maximal-reuse circuit.
        """
        if not self.incremental:
            return self._sweep_reference(circuit, min_qubits)
        points = [self._point(circuit, [])]
        with self._session(circuit) as session, self._scorer() as scorer:
            while session.num_qubits > min_qubits:
                pair = self._best_pair_session(session, scorer)
                if pair is None:
                    break
                with self.stats.timed("apply"):
                    session.apply(pair)
                scorer.invalidate()
                points.append(self._point(session.circuit, session.pairs))
        return points

    def _sweep_reference(
        self, circuit: QuantumCircuit, min_qubits: int = 1
    ) -> List[QSCaQRResult]:
        points = [self._point(circuit, [])]
        current = circuit
        pairs: List[ReusePair] = []
        while current.num_qubits > min_qubits:
            pair = self.best_pair(current)
            if pair is None:
                break
            current = apply_reuse_pair(
                current, pair, reset_style=self.reset_style, validate=False
            ).circuit
            pairs.append(pair)
            points.append(self._point(current, pairs))
        return points

    def minimum_qubits(self, circuit: QuantumCircuit) -> int:
        """The smallest width greedy reuse reaches for *circuit*."""
        return self.sweep(circuit)[-1].qubits

    def reduce_to(self, circuit: QuantumCircuit, qubit_limit: int) -> QSCaQRResult:
        """Compile to at most *qubit_limit* qubits, if possible.

        Mirrors the paper's interface: the result's ``feasible`` flag is
        the "yes/no" answer; when feasible the circuit uses exactly
        ``min(qubit_limit, original width)`` qubits.
        """
        if qubit_limit < 1:
            raise ReuseError("qubit limit must be positive")
        if circuit.num_qubits <= qubit_limit:
            return self._point(circuit, [])
        if not self.incremental:
            return self._reduce_to_reference(circuit, qubit_limit)
        with self._session(circuit) as session, self._scorer() as scorer:
            while session.num_qubits > qubit_limit:
                pair = self._best_pair_session(session, scorer)
                if pair is None:
                    return self._point(session.circuit, session.pairs, feasible=False)
                with self.stats.timed("apply"):
                    session.apply(pair)
                scorer.invalidate()
            return self._point(session.circuit, session.pairs)

    def _reduce_to_reference(
        self, circuit: QuantumCircuit, qubit_limit: int
    ) -> QSCaQRResult:
        current = circuit
        pairs: List[ReusePair] = []
        while current.num_qubits > qubit_limit:
            pair = self.best_pair(current)
            if pair is None:
                return self._point(current, pairs, feasible=False)
            current = apply_reuse_pair(
                current, pair, reset_style=self.reset_style, validate=False
            ).circuit
            pairs.append(pair)
        return self._point(current, pairs)
