"""QS-CaQR for regular (non-commuting) circuits — paper Section 3.2.1.

The driver greedily reduces qubit usage one wire at a time:

1. enumerate all valid reuse pairs (Conditions 1 & 2),
2. evaluate each pair by the critical path of the DAG with the dummy
   measurement node ``D`` inserted (Fig. 9),
3. apply the best pair (smallest resulting depth or duration),
4. repeat until the requested qubit budget is reached or no pair remains.

``sweep`` records every intermediate circuit so callers can explore the
full qubit-usage / depth tradeoff curve (Figs. 3, 13, 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReuseAnalysis, ReusePair
from repro.core.evaluate import evaluate_pair_depth, evaluate_pair_duration
from repro.core.transform import apply_reuse_pair
from repro.exceptions import ReuseError
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["QSCaQRResult", "QSCaQR"]


@dataclass
class QSCaQRResult:
    """One point of the qubit-saving sweep.

    Attributes:
        circuit: the transformed logical circuit.
        qubits: its width (qubit usage).
        depth: logical circuit depth.
        duration_dt: estimated logical duration with default gate times.
        pairs: reuse pairs applied so far (indices are per-step wire labels).
        feasible: whether the requested budget was reached (``reduce_to``
            sets this; a sweep's entries are feasible by construction).
    """

    circuit: QuantumCircuit
    qubits: int
    depth: int
    duration_dt: int
    pairs: List[ReusePair] = field(default_factory=list)
    feasible: bool = True


class QSCaQR:
    """Qubit-saving CaQR for regular applications.

    Args:
        objective: ``"depth"`` ranks candidate pairs by resulting circuit
            depth; ``"duration"`` by estimated duration in dt (which
            penalises the slow measurement the reuse inserts).
        reset_style: ``"cif"`` (measure + conditional X) or ``"builtin"``.
    """

    def __init__(
        self,
        objective: str = "depth",
        reset_style: str = "cif",
        lookahead_width: Optional[int] = None,
    ):
        if objective not in ("depth", "duration"):
            raise ReuseError(f"unknown objective {objective!r}")
        self.objective = objective
        self.reset_style = reset_style
        # None = evaluate the reuse-potential lookahead on every candidate
        # (exact for the paper's benchmark sizes); set an int to cap the
        # window on very wide circuits.
        self.lookahead_width = lookahead_width

    # -- single greedy step ---------------------------------------------------

    @staticmethod
    def _reuse_potential(circuit: QuantumCircuit) -> int:
        """Upper bound on further merges: max bipartite matching over the
        valid-pair relation (each qubit once as source, once as target).

        A pair that looks cheap by critical path can still destroy future
        reuse (e.g. pairing BV's first data qubit with its *last* one
        breaks the chain that reaches the 2-qubit floor); this bound is
        the lookahead that prevents such dead ends.
        """
        import networkx as nx

        pairs = ReuseAnalysis(circuit).valid_pairs()
        if not pairs:
            return 0
        graph = nx.Graph()
        sources = {("s", p.source) for p in pairs}
        for pair in pairs:
            graph.add_edge(("s", pair.source), ("t", pair.target))
        matching = nx.algorithms.bipartite.hopcroft_karp_matching(graph, sources)
        return len(matching) // 2

    def best_pair(self, circuit: QuantumCircuit) -> Optional[ReusePair]:
        """The cheapest valid pair that preserves maximal reuse potential.

        Candidates are ranked by the critical path of the DAG with the
        dummy node inserted (paper Fig. 9); among the ``lookahead_width``
        cheapest, the pair whose application leaves the largest remaining
        reuse-matching bound wins (cost breaks ties).
        """
        analysis = ReuseAnalysis(circuit)
        candidates = analysis.valid_pairs()
        if not candidates:
            return None

        def _cost(pair: ReusePair):
            if self.objective == "depth":
                value = evaluate_pair_depth(analysis.dag, pair)
            else:
                value = evaluate_pair_duration(analysis.dag, pair, self.reset_style)
            return (value, pair.source, pair.target)

        ranked = sorted(candidates, key=_cost)
        if self.lookahead_width is not None:
            ranked = ranked[: max(1, self.lookahead_width)]
        window = ranked
        best_pair: Optional[ReusePair] = None
        best_key = None
        for pair in window:
            transformed = apply_reuse_pair(
                circuit, pair, reset_style=self.reset_style, validate=False
            ).circuit
            potential = self._reuse_potential(transformed)
            key = (-potential, _cost(pair))
            if best_key is None or key < best_key:
                best_key = key
                best_pair = pair
        return best_pair

    def _point(self, circuit: QuantumCircuit, pairs: List[ReusePair], feasible: bool = True) -> QSCaQRResult:
        return QSCaQRResult(
            circuit=circuit,
            qubits=circuit.num_qubits,
            depth=circuit.depth(),
            duration_dt=circuit_duration_dt(circuit),
            pairs=list(pairs),
            feasible=feasible,
        )

    # -- public API -------------------------------------------------------------

    def sweep(self, circuit: QuantumCircuit, min_qubits: int = 1) -> List[QSCaQRResult]:
        """All achievable qubit counts, from the original width to the floor.

        Returns one result per width; the first entry is the untouched
        input, the last is the maximal-reuse circuit.
        """
        points = [self._point(circuit, [])]
        current = circuit
        pairs: List[ReusePair] = []
        while current.num_qubits > min_qubits:
            pair = self.best_pair(current)
            if pair is None:
                break
            current = apply_reuse_pair(
                current, pair, reset_style=self.reset_style, validate=False
            ).circuit
            pairs.append(pair)
            points.append(self._point(current, pairs))
        return points

    def minimum_qubits(self, circuit: QuantumCircuit) -> int:
        """The smallest width greedy reuse reaches for *circuit*."""
        return self.sweep(circuit)[-1].qubits

    def reduce_to(self, circuit: QuantumCircuit, qubit_limit: int) -> QSCaQRResult:
        """Compile to at most *qubit_limit* qubits, if possible.

        Mirrors the paper's interface: the result's ``feasible`` flag is
        the "yes/no" answer; when feasible the circuit uses exactly
        ``min(qubit_limit, original width)`` qubits.
        """
        if qubit_limit < 1:
            raise ReuseError("qubit limit must be positive")
        if circuit.num_qubits <= qubit_limit:
            return self._point(circuit, [])
        current = circuit
        pairs: List[ReusePair] = []
        while current.num_qubits > qubit_limit:
            pair = self.best_pair(current)
            if pair is None:
                return self._point(current, pairs, feasible=False)
            current = apply_reuse_pair(
                current, pair, reset_style=self.reset_style, validate=False
            ).circuit
            pairs.append(pair)
        return self._point(current, pairs)
