"""The paper's two qubit-reuse validity conditions (Section 3.1).

A reuse pair is written ``(q_i -> q_j)``: logical qubit ``q_i`` finishes
all its operations, is measured and reset, and its wire is then *reused by*
logical qubit ``q_j``.

* **Condition 1** — there must be no gate acting on both ``q_i`` and
  ``q_j`` (otherwise the two lifetimes cannot be disjoint).
* **Condition 2** — no operation on ``q_i`` may depend, directly or
  transitively, on any operation on ``q_j`` (otherwise inserting the
  measurement node ``D`` creates a cycle — paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.circuit.circuit import QuantumCircuit
from repro.dag.dagcircuit import DAGCircuit
from repro.dag.reachability import qubit_dependency_matrix

__all__ = [
    "ReusePair",
    "condition1_ok",
    "condition2_ok",
    "is_valid_pair",
    "valid_reuse_pairs",
    "ReuseAnalysis",
]


@dataclass(frozen=True)
class ReusePair:
    """The reuse pair ``(source -> target)``: *source* is measured and its
    wire handed to *target*."""

    source: int
    target: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError("a qubit cannot reuse itself")

    def __str__(self) -> str:  # pragma: no cover - display
        return f"(q{self.source} -> q{self.target})"


class ReuseAnalysis:
    """Cached Condition-1/2 analysis of one circuit.

    Builds the interaction sets and the qubit-level dependency matrix once
    and answers pair-validity queries in O(1).
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.dag = DAGCircuit.from_circuit(circuit)
        self._interacts: Dict[int, Set[int]] = {
            q: set() for q in range(circuit.num_qubits)
        }
        for instruction in circuit.data:
            # multi-qubit barriers count too: a directive spanning both
            # qubits pins their lifetimes together, so the pair is blocked
            if len(instruction.qubits) < 2:
                continue
            for a in instruction.qubits:
                for b in instruction.qubits:
                    if a != b:
                        self._interacts[a].add(b)
        self._dependency = qubit_dependency_matrix(self.dag)
        self._used = set(circuit.used_qubits())

    def condition1(self, pair: ReusePair) -> bool:
        """True when no gate acts on both qubits of *pair*."""
        return pair.target not in self._interacts[pair.source]

    def condition2(self, pair: ReusePair) -> bool:
        """True when no gate on the source depends on a gate on the target.

        Equivalently: no gate on ``target`` precedes (reaches) any gate on
        ``source`` in the dependency DAG.
        """
        return not self._dependency.get((pair.target, pair.source), False)

    def is_valid(self, pair: ReusePair) -> bool:
        """Both conditions, and both qubits actually carry operations."""
        if pair.source not in self._used or pair.target not in self._used:
            return False
        return self.condition1(pair) and self.condition2(pair)

    def valid_pairs(self) -> List[ReusePair]:
        """Every valid reuse pair of the circuit, in (source, target) order."""
        pairs = []
        for source in sorted(self._used):
            for target in sorted(self._used):
                if source == target:
                    continue
                pair = ReusePair(source, target)
                if self.condition1(pair) and self.condition2(pair):
                    pairs.append(pair)
        return pairs


def condition1_ok(circuit: QuantumCircuit, source: int, target: int) -> bool:
    """Standalone Condition 1 check (no shared gate)."""
    return ReuseAnalysis(circuit).condition1(ReusePair(source, target))


def condition2_ok(circuit: QuantumCircuit, source: int, target: int) -> bool:
    """Standalone Condition 2 check (no reverse dependency)."""
    return ReuseAnalysis(circuit).condition2(ReusePair(source, target))


def is_valid_pair(circuit: QuantumCircuit, source: int, target: int) -> bool:
    """Both conditions for ``(source -> target)`` on *circuit*."""
    return ReuseAnalysis(circuit).is_valid(ReusePair(source, target))


def valid_reuse_pairs(circuit: QuantumCircuit) -> List[ReusePair]:
    """All valid reuse pairs of *circuit*."""
    return ReuseAnalysis(circuit).valid_pairs()
