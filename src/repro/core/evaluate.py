"""Candidate-pair evaluation by critical path (paper Section 3.2.1).

To compare reuse pairs under the same qubit saving, CaQR inserts a dummy
node ``D`` into the dependency DAG — all gates on the source point to
``D``, ``D`` points to all gates on the target (paper Fig. 9) — and ranks
pairs by the resulting critical-path length.  ``D`` carries the real
duration of the measure + conditional-X sequence so the duration objective
accounts for the (slow) mid-circuit measurement.

:func:`evaluate_pair_depth` / :func:`evaluate_pair_duration` materialise a
trial DAG per pair — exact but O(n) each.  :func:`batch_pair_costs`
computes the same numbers for *all* candidates from one ASAP/tail
decomposition of the critical path (every path through ``D`` is
``finish(s) + w(D) + tail(t)``), and :class:`PairScorer` adds memoisation
plus ``concurrent.futures`` fan-out for large circuits.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.circuit import gates
from repro.dag.analysis import (
    asap_finish_times,
    critical_path_length,
    node_weight_depth,
    node_weight_duration,
)
from repro.dag.dagcircuit import DAGCircuit
from repro.core.conditions import ReusePair
from repro.exceptions import ReuseError

__all__ = [
    "reuse_node_duration_dt",
    "add_reuse_dummy_node",
    "evaluate_pair_depth",
    "evaluate_pair_duration",
    "tail_path_lengths",
    "batch_pair_costs",
    "PairScorer",
    "PARALLEL_WORKLOAD_THRESHOLD",
]

# below this many (candidates x dag nodes) the scorer stays in-process:
# pool startup and pickling dwarf the evaluation itself for small sweeps
PARALLEL_WORKLOAD_THRESHOLD = 250_000


def reuse_node_duration_dt(reset_style: str = "cif") -> int:
    """Duration of the measure-and-reset sequence inserted for a reuse.

    ``"cif"`` is the optimised measure + classically controlled X
    (16,467 dt, paper Fig. 2b); ``"builtin"`` the naive measure + reset
    (33,179 dt, Fig. 2a).
    """
    measure = gates.default_duration("measure")
    if reset_style == "cif":
        return measure + gates.default_duration("x") + gates.CONDITIONAL_LATENCY_DT
    return measure + gates.default_duration("reset")


def add_reuse_dummy_node(
    dag: DAGCircuit, pair: ReusePair, weight: int = 1
) -> int:
    """Insert the dummy node ``D`` for *pair* into *dag* (mutates it).

    Edges: every instruction node on the source qubit -> D -> every
    instruction node on the target qubit.  Returns the node id of ``D``.
    """
    dummy = dag.add_virtual_node(weight=weight, tag=f"reuse:{pair.source}->{pair.target}")
    for node_id in dag.nodes_on_qubit(pair.source):
        dag.add_edge(node_id, dummy)
    for node_id in dag.nodes_on_qubit(pair.target):
        dag.add_edge(dummy, node_id)
    return dummy


def evaluate_pair_depth(dag: DAGCircuit, pair: ReusePair) -> int:
    """Depth of the circuit if *pair* were applied (D counts one level).

    Raises :class:`repro.exceptions.DAGError` via the topological sort if
    the pair is invalid (cycle) — callers filter candidates first.
    """
    trial = dag.copy()
    add_reuse_dummy_node(trial, pair, weight=1)
    return critical_path_length(trial, node_weight_depth)


def evaluate_pair_duration(
    dag: DAGCircuit, pair: ReusePair, reset_style: str = "cif"
) -> int:
    """Estimated duration (dt) of the circuit if *pair* were applied."""
    trial = dag.copy()
    add_reuse_dummy_node(trial, pair, weight=reuse_node_duration_dt(reset_style))
    return critical_path_length(trial, node_weight_duration)


# -- batched evaluation ---------------------------------------------------------


def tail_path_lengths(dag: DAGCircuit, weight_fn) -> Dict[int, int]:
    """Longest weighted path *starting* at each node (own weight included).

    The dual of :func:`repro.dag.analysis.asap_finish_times`: together they
    price any candidate dummy node in O(degree) instead of O(n).
    """
    tails: Dict[int, int] = {}
    for node_id in reversed(dag.topological_order()):
        best = max(
            (tails[successor] for successor in dag.successors(node_id)),
            default=0,
        )
        tails[node_id] = best + weight_fn(dag.nodes[node_id])
    return tails


def _nodes_by_qubit(dag: DAGCircuit) -> Dict[int, List[int]]:
    """Instruction nodes per qubit (directives included), in wire order."""
    table: Dict[int, List[int]] = {}
    for node_id in dag.op_nodes(include_directives=True):
        for q in dag.nodes[node_id].instruction.qubits:
            table.setdefault(q, []).append(node_id)
    return table


def batch_pair_costs(
    dag: DAGCircuit,
    pairs: Sequence[ReusePair],
    objective: str = "depth",
    reset_style: str = "cif",
    nodes_by_qubit: Optional[Dict[int, List[int]]] = None,
) -> List[int]:
    """Evaluate every pair in one pass; exact match of the per-pair API.

    Inserting ``D`` only creates paths of the form ``... -> s -> D -> t ->
    ...`` with ``s`` on the source wire and ``t`` on the target wire, so
    the trial critical path is ``max(base, max_s finish(s) + w(D) + max_t
    tail(t))`` — no trial DAG is materialised.

    Args:
        nodes_by_qubit: wire -> node-id lists overriding the DAG's own
            qubit bookkeeping (the incremental session passes its merged
            wire groups here, keyed by current label).
    """
    if objective == "depth":
        weight_fn = node_weight_depth
        dummy_weight = 1
    elif objective == "duration":
        weight_fn = node_weight_duration
        dummy_weight = reuse_node_duration_dt(reset_style)
    else:
        raise ReuseError(f"unknown objective {objective!r}")
    finish = asap_finish_times(dag, weight_fn)
    tails = tail_path_lengths(dag, weight_fn)
    base = max(finish.values(), default=0)
    if nodes_by_qubit is None:
        nodes_by_qubit = _nodes_by_qubit(dag)
    costs: List[int] = []
    for pair in pairs:
        into = max(
            (finish[n] for n in nodes_by_qubit.get(pair.source, ())), default=0
        )
        out = max(
            (tails[n] for n in nodes_by_qubit.get(pair.target, ())), default=0
        )
        costs.append(max(base, into + dummy_weight + out))
    return costs


def _score_chunk_worker(payload):
    """Process-pool entry point: score one chunk of candidate pairs."""
    dag, pairs, objective, reset_style, nodes_by_qubit = payload
    return batch_pair_costs(
        dag, pairs, objective=objective, reset_style=reset_style,
        nodes_by_qubit=nodes_by_qubit,
    )


class PairScorer:
    """Pluggable batched candidate scorer with optional process-pool fan-out.

    Scores are memoised until :meth:`invalidate` is called (the greedy
    drivers call it whenever a pair is applied, since every cost can shift
    with the DAG).  Batches whose workload (``candidates × nodes``) exceeds
    *parallel_threshold* are chunked over a ``ProcessPoolExecutor``;
    smaller batches run serially — pool startup would dominate.

    Args:
        objective: ``"depth"`` or ``"duration"`` (matches
            :class:`~repro.core.qs_caqr.QSCaQR`).
        reset_style: reuse reset idiom, priced into the duration objective.
        parallel: master switch for the process pool.
        parallel_threshold: minimum ``len(pairs) * len(dag)`` workload
            before fanning out.
        max_workers: pool size (default: ``os.cpu_count()`` capped at 8).
        stats: optional :class:`~repro.core.profile.ReuseEvalStats` sink.
    """

    def __init__(
        self,
        objective: str = "depth",
        reset_style: str = "cif",
        parallel: bool = True,
        parallel_threshold: int = PARALLEL_WORKLOAD_THRESHOLD,
        max_workers: Optional[int] = None,
        stats=None,
    ):
        if objective not in ("depth", "duration"):
            raise ReuseError(f"unknown objective {objective!r}")
        self.objective = objective
        self.reset_style = reset_style
        self.parallel = parallel
        self.parallel_threshold = parallel_threshold
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.stats = stats
        self._cache: Dict[ReusePair, int] = {}
        self._executor = None

    # -- lifecycle ---------------------------------------------------------

    def invalidate(self) -> None:
        """Drop all memoised scores (a pair was applied; costs shifted)."""
        self._cache.clear()

    def close(self) -> None:
        """Shut down the process pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "PairScorer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scoring -----------------------------------------------------------

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def score_all(
        self,
        dag: DAGCircuit,
        pairs: Sequence[ReusePair],
        nodes_by_qubit: Optional[Dict[int, List[int]]] = None,
    ) -> Dict[ReusePair, int]:
        """Costs for every pair, memoised; computes only the misses."""
        missing = [p for p in pairs if p not in self._cache]
        hits = len(pairs) - len(missing)
        if self.stats is not None and hits:
            self.stats.count("cache_hits", hits)
        if missing:
            if self.stats is not None:
                self.stats.count("evaluations", len(missing))
            workload = len(missing) * max(1, len(dag))
            if (
                self.parallel
                and len(missing) >= 2 * self.max_workers
                and workload >= self.parallel_threshold
            ):
                costs = self._score_parallel(dag, missing, nodes_by_qubit)
            else:
                if self.stats is not None:
                    self.stats.count("serial_batches")
                costs = batch_pair_costs(
                    dag,
                    missing,
                    objective=self.objective,
                    reset_style=self.reset_style,
                    nodes_by_qubit=nodes_by_qubit,
                )
            self._cache.update(zip(missing, costs))
        return {p: self._cache[p] for p in pairs}

    def _score_parallel(self, dag, pairs, nodes_by_qubit) -> List[int]:
        if self.stats is not None:
            self.stats.count("parallel_batches")
        if nodes_by_qubit is None:
            nodes_by_qubit = _nodes_by_qubit(dag)
        chunk = max(1, -(-len(pairs) // self.max_workers))
        payloads = [
            (
                dag,
                pairs[i : i + chunk],
                self.objective,
                self.reset_style,
                nodes_by_qubit,
            )
            for i in range(0, len(pairs), chunk)
        ]
        costs: List[int] = []
        for part in self._pool().map(_score_chunk_worker, payloads):
            costs.extend(part)
        return costs
