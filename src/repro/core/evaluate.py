"""Candidate-pair evaluation by critical path (paper Section 3.2.1).

To compare reuse pairs under the same qubit saving, CaQR inserts a dummy
node ``D`` into the dependency DAG — all gates on the source point to
``D``, ``D`` points to all gates on the target (paper Fig. 9) — and ranks
pairs by the resulting critical-path length.  ``D`` carries the real
duration of the measure + conditional-X sequence so the duration objective
accounts for the (slow) mid-circuit measurement.
"""

from __future__ import annotations


from repro.circuit import gates
from repro.dag.analysis import (
    critical_path_length,
    node_weight_depth,
    node_weight_duration,
)
from repro.dag.dagcircuit import DAGCircuit
from repro.core.conditions import ReusePair

__all__ = [
    "reuse_node_duration_dt",
    "add_reuse_dummy_node",
    "evaluate_pair_depth",
    "evaluate_pair_duration",
]


def reuse_node_duration_dt(reset_style: str = "cif") -> int:
    """Duration of the measure-and-reset sequence inserted for a reuse.

    ``"cif"`` is the optimised measure + classically controlled X
    (16,467 dt, paper Fig. 2b); ``"builtin"`` the naive measure + reset
    (33,179 dt, Fig. 2a).
    """
    measure = gates.default_duration("measure")
    if reset_style == "cif":
        return measure + gates.default_duration("x") + gates.CONDITIONAL_LATENCY_DT
    return measure + gates.default_duration("reset")


def add_reuse_dummy_node(
    dag: DAGCircuit, pair: ReusePair, weight: int = 1
) -> int:
    """Insert the dummy node ``D`` for *pair* into *dag* (mutates it).

    Edges: every instruction node on the source qubit -> D -> every
    instruction node on the target qubit.  Returns the node id of ``D``.
    """
    dummy = dag.add_virtual_node(weight=weight, tag=f"reuse:{pair.source}->{pair.target}")
    for node_id in dag.nodes_on_qubit(pair.source):
        dag.add_edge(node_id, dummy)
    for node_id in dag.nodes_on_qubit(pair.target):
        dag.add_edge(dummy, node_id)
    return dummy


def evaluate_pair_depth(dag: DAGCircuit, pair: ReusePair) -> int:
    """Depth of the circuit if *pair* were applied (D counts one level).

    Raises :class:`repro.exceptions.DAGError` via the topological sort if
    the pair is invalid (cycle) — callers filter candidates first.
    """
    trial = dag.copy()
    add_reuse_dummy_node(trial, pair, weight=1)
    return critical_path_length(trial, node_weight_depth)


def evaluate_pair_duration(
    dag: DAGCircuit, pair: ReusePair, reset_style: str = "cif"
) -> int:
    """Estimated duration (dt) of the circuit if *pair* were applied."""
    trial = dag.copy()
    add_reuse_dummy_node(trial, pair, weight=reuse_node_duration_dt(reset_style))
    return critical_path_length(trial, node_weight_duration)
