"""SR-CaQR for commuting-gate applications (paper Section 3.3.2).

Commuting circuits have no intrinsic gate order, so the SR router cannot
tell which gates are safe to delay.  The paper's solution — implemented
here — is to *impose* a partial order first:

1. **Step 1**: run QS-CaQR-commuting to a sweet spot (the largest qubit
   saving whose scheduled depth stays within a tolerance of the no-reuse
   depth) and materialise the partial DAG those reuse pairs imply;
2. **Steps 2-4**: feed the materialised circuit to the SR-CaQR regular
   router, whose slack analysis reproduces the paper's delay rules: gates
   inside the reuse dependency chains and gates on high-degree qubits
   dominate the critical path (zero slack, never delayed), while
   low-degree qubits get delayed and inherit freed physical qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from repro.core.conditions import ReusePair
from repro.core.qs_commuting import QSCaQRCommuting, QSCommutingResult
from repro.core.sr_caqr import SRCaQR, SRCaQRResult
from repro.exceptions import ReuseError
from repro.hardware.backends import Backend
from repro.transpiler.stats import RouteStats
from repro.workloads.qaoa import QAOA_DEFAULT_BETA, QAOA_DEFAULT_GAMMA

__all__ = ["SRCommutingResult", "SRCaQRCommuting", "find_sweet_spot"]


def find_sweet_spot(
    sweep: List[QSCommutingResult],
    depth_tolerance: float = 0.25,
    absolute_slack: int = 4,
) -> QSCommutingResult:
    """Largest qubit saving whose depth stays within *depth_tolerance*.

    Mirrors the paper's Fig. 3 observation: the tradeoff curve is
    heavy-tailed, so large savings are available at a small depth cost —
    the sweet spot is the deepest point still under
    ``(1 + tolerance) * base_depth + absolute_slack``.  The absolute term
    grants one measure/reset block of grace, which matters for small
    circuits where a single reuse dominates the relative overhead.
    """
    if not sweep:
        raise ReuseError("empty sweep")
    base_depth = sweep[0].depth
    budget = (1.0 + depth_tolerance) * base_depth + absolute_slack
    chosen = sweep[0]
    for point in sweep:
        if point.depth <= budget and point.qubits <= chosen.qubits:
            chosen = point
    return chosen


@dataclass
class SRCommutingResult:
    """SR-CaQR output for a commuting application."""

    result: SRCaQRResult
    qs_point: QSCommutingResult
    pairs: List[ReusePair]

    @property
    def circuit(self):
        return self.result.circuit

    @property
    def swap_count(self) -> int:
        return self.result.swap_count

    @property
    def qubits_used(self) -> int:
        return self.result.qubits_used

    @property
    def duration_dt(self) -> int:
        return self.result.duration_dt


class SRCaQRCommuting:
    """Swap-reduction CaQR for QAOA-style commuting circuits.

    Args:
        backend: target device.
        gamma / beta: QAOA angles (single round).
        depth_tolerance: sweet-spot depth budget over the no-reuse depth.
        noise_aware: forwarded to the SR router.
        incremental / parallel / max_workers: forwarded to the SR router
            (engine choice and trial-grid fan-out; the routed circuit is
            identical either way).

    The underlying router's :class:`~repro.transpiler.RouteStats` sink is
    exposed as ``self.stats`` and accumulates across ``run`` calls.
    """

    def __init__(
        self,
        backend: Backend,
        gamma: float = QAOA_DEFAULT_GAMMA,
        beta: float = QAOA_DEFAULT_BETA,
        depth_tolerance: float = 0.25,
        noise_aware: bool = True,
        reset_style: str = "cif",
        incremental: bool = True,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
    ):
        self.backend = backend
        self.gamma = gamma
        self.beta = beta
        self.depth_tolerance = depth_tolerance
        self.noise_aware = noise_aware
        self.reset_style = reset_style
        self.router = SRCaQR(
            backend,
            noise_aware=noise_aware,
            reset_style=reset_style,
            incremental=incremental,
            parallel=parallel,
            max_workers=max_workers,
        )

    @property
    def stats(self) -> RouteStats:
        """The SR router's counter/timer sink (accumulates across runs)."""
        return self.router.stats

    def run(
        self,
        graph: nx.Graph,
        qubit_limit: Optional[int] = None,
        objective: str = "swaps",
        trials: int = 3,
        seed_base: Optional[int] = None,
    ) -> SRCommutingResult:
        """Compile the QAOA circuit for *graph* with reuse-aware routing.

        Args:
            graph: problem graph (vertices ``0..n-1``).
            qubit_limit: optional hard qubit budget; when given, QS step
                reduces to it exactly instead of using the sweet spot.
            objective: ``"swaps"`` picks the candidate reuse level with the
                fewest SWAPs (ties: duration); ``"esp"`` maximises the
                estimated success probability — the right metric when the
                compiled circuit feeds a fidelity-sensitive application
                such as the Figs. 15-16 convergence experiments.
            trials: hint-seed trials per SR candidate (forwarded to the
                router's candidate × seed grid).
            seed_base: anchor of the router's hint-seed stream (forwarded
                to :meth:`SRCaQR.run`; ``None`` keeps the default).
        """
        if objective not in ("swaps", "esp"):
            raise ReuseError(f"unknown SR objective {objective!r}")
        qs = QSCaQRCommuting(
            graph,
            gamma=self.gamma,
            beta=self.beta,
            reset_style=self.reset_style,
        )
        router = self.router
        if qubit_limit is not None:
            point = qs.reduce_to(qubit_limit)
            if not point.feasible:
                raise ReuseError(
                    f"cannot reach {qubit_limit} qubits "
                    f"(floor is {qs.minimum_qubits()})"
                )
            routed = router.run(point.circuit, trials=trials, seed_base=seed_base)
            return SRCommutingResult(result=routed, qs_point=point, pairs=point.pairs)

        # SWAP reduction is the primary goal (Section 3.3); the imposed
        # reuse dependence is a tool, not a quota.  Route a few candidate
        # reuse levels — no-reuse, the sweet spot, and the knee between —
        # and keep the fewest-SWAP compilation (qubit saving still falls
        # out whenever reuse wins).
        sweep = qs.sweep(min_qubits=qs.minimum_qubits())
        sweet = find_sweet_spot(sweep, self.depth_tolerance)
        candidates = {id(sweep[0]): sweep[0], id(sweet): sweet}
        mid_width = (sweep[0].qubits + sweet.qubits) // 2
        mid = min(sweep, key=lambda p: abs(p.qubits - mid_width))
        candidates[id(mid)] = mid

        def _key(candidate: SRCommutingResult):
            if objective == "esp":
                from repro.sim.metrics import estimated_success_probability

                return (
                    -estimated_success_probability(
                        candidate.circuit, self.backend.calibration
                    ),
                )
            return (candidate.swap_count, candidate.duration_dt)

        best: Optional[SRCommutingResult] = None
        best_key = None
        for point in candidates.values():
            routed = router.run(point.circuit, trials=trials, seed_base=seed_base)
            candidate = SRCommutingResult(
                result=routed, qs_point=point, pairs=point.pairs
            )
            key = _key(candidate)
            if best_key is None or key < best_key:
                best, best_key = candidate, key
        assert best is not None
        return best
