"""Automatic application-type classification (regular vs commuting).

The paper's tool "can handle two different types of applications: the ones
with non-commuting gates, and the ones with commuting gates" — but the
user had to know which is which.  This module closes that gap: it
recognises QAOA-shaped circuits (a Hadamard prep layer, a block of
mutually commuting diagonal two-qubit gates, an RX mixer layer, terminal
measurement) and extracts the problem graph + angles, so
:func:`repro.compile_api.caqr_compile` can dispatch a plain circuit to the
commuting-gate pipeline automatically.

Recognition is conservative: any instruction outside the expected shape
makes the extractor return ``None`` and the circuit is treated as regular
(always sound — the commuting pipeline is an *optimisation*, never a
requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit

__all__ = ["CommutingStructure", "extract_commuting_structure"]

# diagonal two-qubit gates: all mutually commuting
_DIAGONAL_2Q = {"rzz", "cz", "cp", "crz"}


@dataclass
class CommutingStructure:
    """A recognised single-round QAOA-shaped circuit.

    Attributes:
        graph: the interaction (problem) graph.
        edge_angles: per-edge cost angle (the rzz/cp parameter; pi for cz).
        mixer_angles: per-qubit rx angle.
        measured: qubit -> classical bit of the terminal measurement.
    """

    graph: nx.Graph
    edge_angles: Dict[Tuple[int, int], float] = field(default_factory=dict)
    mixer_angles: Dict[int, float] = field(default_factory=dict)
    measured: Dict[int, int] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    def uniform_gamma(self) -> Optional[float]:
        """The common cost angle, when every edge shares one (rzz theta/2)."""
        values = {round(v, 12) for v in self.edge_angles.values()}
        return values.pop() / 2.0 if len(values) == 1 else None

    def uniform_beta(self) -> Optional[float]:
        """The common mixer angle, when every qubit shares one (rx theta/2)."""
        values = {round(v, 12) for v in self.mixer_angles.values()}
        return values.pop() / 2.0 if len(values) == 1 else None


def extract_commuting_structure(
    circuit: QuantumCircuit,
) -> Optional[CommutingStructure]:
    """Recognise a QAOA-shaped circuit; return its structure or ``None``.

    Accepted per-qubit instruction sequence (barriers ignored):

    1. exactly one ``h``;
    2. any number of diagonal two-qubit gates (``rzz``/``cz``/``cp``/``crz``)
       with at most one gate per qubit pair;
    3. exactly one ``rx`` mixer rotation;
    4. exactly one terminal ``measure``.
    """
    # per-qubit phase machine: 0=expect h, 1=cost gates, 2=mixed, 3=measured
    phase = [0] * circuit.num_qubits
    structure = CommutingStructure(graph=nx.Graph())
    structure.graph.add_nodes_from(range(circuit.num_qubits))

    for instruction in circuit.data:
        if instruction.is_directive():
            continue
        if instruction.condition is not None:
            return None
        name = instruction.name
        if name == "h" and len(instruction.qubits) == 1:
            q = instruction.qubits[0]
            if phase[q] != 0:
                return None
            phase[q] = 1
            continue
        if name in _DIAGONAL_2Q:
            a, b = instruction.qubits
            if phase[a] != 1 or phase[b] != 1:
                return None
            edge = (min(a, b), max(a, b))
            if edge in structure.edge_angles:
                return None  # one gate per pair (single round)
            angle = instruction.params[0] if instruction.params else 3.141592653589793
            structure.graph.add_edge(*edge)
            structure.edge_angles[edge] = float(angle)
            continue
        if name == "rx" and len(instruction.qubits) == 1:
            q = instruction.qubits[0]
            if phase[q] != 1:
                return None
            phase[q] = 2
            structure.mixer_angles[q] = float(instruction.params[0])
            continue
        if name == "measure":
            q = instruction.qubits[0]
            if phase[q] != 2:
                return None
            phase[q] = 3
            structure.measured[q] = instruction.clbits[0]
            continue
        return None  # anything else breaks the shape

    # every touched qubit must have completed the full lifecycle
    for q in range(circuit.num_qubits):
        if phase[q] not in (0, 3):
            return None
    touched = [q for q in range(circuit.num_qubits) if phase[q] == 3]
    if len(touched) < 2 or not structure.edge_angles:
        return None
    # untouched wires are idle: restrict the graph to touched qubits only
    # when they form a 0..k-1 prefix; otherwise bail out (conservative)
    if touched != list(range(len(touched))):
        return None
    if len(touched) != circuit.num_qubits:
        structure.graph = structure.graph.subgraph(touched).copy()
    return structure
