"""The CaQR passes: qubit-reuse conditions, QS-CaQR, SR-CaQR, tradeoffs."""

from repro.core.conditions import (
    ReuseAnalysis,
    ReusePair,
    condition1_ok,
    condition2_ok,
    is_valid_pair,
    valid_reuse_pairs,
)
from repro.core.evaluate import (
    PairScorer,
    add_reuse_dummy_node,
    batch_pair_costs,
    evaluate_pair_depth,
    evaluate_pair_duration,
    reuse_node_duration_dt,
    tail_path_lengths,
)
from repro.core.lifetime import (
    alive_profile,
    best_birth_order,
    lifetime_minimum_qubits,
    lifetime_schedule,
    vertex_separation_order,
)
from repro.core.lifetime_regular import (
    LifetimeRegularResult,
    greedy_gate_order,
    lifetime_compile_regular,
)
from repro.core.profile import (
    ReuseEvalStats,
    ReuseProfile,
    profile_circuit,
    profile_graph,
)
from repro.core.chains import ChainPlan, ChainReuse, ChainReuseResult
from repro.core.exact import ExactReuse, ExactReuseResult, exact_minimum_qubits
from repro.core.qs_caqr import QSCaQR, QSCaQRResult
from repro.core.windows import ReuseWindow, WindowAnalysis
from repro.core.session import ReuseSession
from repro.core.qs_commuting import (
    CommutingSchedule,
    QSCaQRCommuting,
    QSCommutingResult,
    materialize_commuting,
    minimum_qubits_by_coloring,
    schedule_commuting,
)
from repro.core.sr_caqr import SRCaQR, SRCaQRResult
from repro.core.structure import CommutingStructure, extract_commuting_structure
from repro.core.sr_commuting import SRCaQRCommuting, SRCommutingResult, find_sweet_spot
from repro.core.tradeoff import (
    ReuseBenefitReport,
    TradeoffPoint,
    assess_reuse_benefit,
    select_point,
    sweep_commuting,
    sweep_regular,
)
from repro.core.transform import ReuseTransformation, apply_reuse_chain, apply_reuse_pair

__all__ = [
    "ReusePair",
    "ReuseAnalysis",
    "condition1_ok",
    "condition2_ok",
    "is_valid_pair",
    "valid_reuse_pairs",
    "evaluate_pair_depth",
    "evaluate_pair_duration",
    "reuse_node_duration_dt",
    "add_reuse_dummy_node",
    "tail_path_lengths",
    "batch_pair_costs",
    "PairScorer",
    "ReuseSession",
    "ReuseEvalStats",
    "apply_reuse_pair",
    "apply_reuse_chain",
    "ReuseTransformation",
    "QSCaQR",
    "QSCaQRResult",
    "ExactReuse",
    "ExactReuseResult",
    "exact_minimum_qubits",
    "ReuseWindow",
    "WindowAnalysis",
    "ChainPlan",
    "ChainReuse",
    "ChainReuseResult",
    "lifetime_schedule",
    "lifetime_minimum_qubits",
    "vertex_separation_order",
    "best_birth_order",
    "alive_profile",
    "QSCaQRCommuting",
    "QSCommutingResult",
    "CommutingSchedule",
    "schedule_commuting",
    "materialize_commuting",
    "minimum_qubits_by_coloring",
    "SRCaQR",
    "SRCaQRResult",
    "CommutingStructure",
    "extract_commuting_structure",
    "ReuseProfile",
    "profile_graph",
    "profile_circuit",
    "lifetime_compile_regular",
    "LifetimeRegularResult",
    "greedy_gate_order",
    "SRCaQRCommuting",
    "SRCommutingResult",
    "find_sweet_spot",
    "TradeoffPoint",
    "sweep_regular",
    "sweep_commuting",
    "select_point",
    "ReuseBenefitReport",
    "assess_reuse_benefit",
]
