"""Incremental reuse-pair evaluation session (the QS-CaQR hot path).

The brute-force greedy loop rebuilds the dependency DAG, re-derives the
descendants bitsets, and re-runs the reuse-potential lookahead from
scratch for every candidate on every reduction step — O(steps × pairs × n)
closures.  :class:`ReuseSession` owns *one* DAG and *one* bitset cache for
the whole sweep and keeps them consistent under
:func:`~repro.core.transform.apply_reuse_pair`:

* applying a pair splices the measure/reset nodes into the session DAG and
  patches only the ancestor masks
  (:func:`repro.dag.reachability.update_masks_for_node`);
* candidate costs come from :func:`repro.core.evaluate.batch_pair_costs`
  over the session DAG (one ASAP/tail decomposition per step);
* the reuse-potential lookahead simulates a candidate's merge directly on
  the bitsets — the transformed circuit's Condition-1/2 relation is
  derived in O(labels²) word operations per candidate, with no trial
  circuit, DAG copy, or closure recomputation.

Wire bookkeeping happens in *label* space: labels are the qubit indices of
the materialised circuit at the current step (the numbering the paper's
one-pair-at-a-time loop uses), so the session reports the exact same pair
coordinates as the from-scratch path — the differential harness in
``tests/property/test_equivalence_diff.py`` pins that equivalence.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.core.conditions import ReusePair
from repro.core.matching import max_bipartite_matching_size
from repro.core.profile import ReuseEvalStats
from repro.core.transform import REUSE_LABEL, apply_reuse_pair
from repro.dag.dagcircuit import DAGCircuit, _wires
from repro.dag.reachability import descendants_bitsets, update_masks_for_node
from repro.exceptions import ReuseError

__all__ = ["ReuseSession", "POTENTIAL_WORKLOAD_THRESHOLD"]

# below (candidates x labels^2) the lookahead stays in-process
POTENTIAL_WORKLOAD_THRESHOLD = 200_000


def _lookahead_kernel() -> str:
    """Which lookahead kernel to run: ``"bitset"`` (default) or ``"nx"``.

    ``CAQR_LOOKAHEAD_KERNEL=nx`` selects the original networkx-based
    reference kernel; anything else (including unset) selects the
    vectorised bitset kernel.  Both return identical potentials — the
    maximum-matching size is unique — so the knob exists for differential
    testing and as the pre-optimisation benchmark arm.
    """
    kernel = os.environ.get("CAQR_LOOKAHEAD_KERNEL", "bitset").strip().lower()
    return "nx" if kernel == "nx" else "bitset"


class _WireGroup:
    """One physical wire of the evolving circuit: the original qubits
    merged onto it, their DAG nodes in wire order, and Condition-1 state."""

    __slots__ = ("gid", "rep", "nodes", "interacts")

    def __init__(self, gid: int, rep: int, nodes: List[int]):
        self.gid = gid
        self.rep = rep  # representative original qubit (for synthetic ops)
        self.nodes = nodes
        self.interacts: Set[int] = set()


def _potential_for_candidate(state: dict, pair: ReusePair) -> int:
    """Reuse-potential of the circuit after *pair*, from bitset state only.

    Mirrors ``QSCaQR._reuse_potential(apply_reuse_pair(...).circuit)``:
    the candidate's merge is simulated by (a) giving every wire that
    reaches the source wire the target wire's closure plus the new
    measure/reset bits, and (b) merging the two wires' masks, then the
    valid-pair relation is rebuilt and its maximum bipartite matching
    sized.  Bit positions ``next_id``/``next_id + 1`` stand in for the
    not-yet-inserted measure and reset nodes.
    """
    import networkx as nx

    a, b = pair.source, pair.target
    reach_op = state["reach_op"]
    reach_all = state["reach_all"]
    selfop = state["selfop"]
    gids = state["gids"]
    interacts = state["interacts"]
    nm = state["next_id"]
    # the reset node is always new; the measure node is only new when the
    # source wire has no terminal measurement to take over
    new_bits = 1 << (nm + 1)
    if not state["tmeasure"][a]:
        new_bits |= 1 << nm
    tr = reach_all[b] | new_bits
    smask = state["selfall"][a]

    labels = [i for i in range(state["n"]) if i != b]
    reach2: Dict[int, int] = {}
    self2: Dict[int, int] = {}
    used2: Dict[int, bool] = {}
    merged_interacts = interacts[a] | interacts[b]
    for i in labels:
        if i == a:
            reach2[i] = reach_op[a] | reach_op[b] | tr
            self2[i] = selfop[a] | selfop[b] | new_bits
            used2[i] = True
        else:
            reach = reach_op[i]
            if reach & smask:
                reach |= tr
            reach2[i] = reach
            self2[i] = selfop[i]
            used2[i] = state["used"][i]

    def _interacting(x: int, y: int) -> bool:
        if x == a:
            return gids[y] in merged_interacts
        if y == a:
            return gids[x] in merged_interacts
        return gids[y] in interacts[x]

    graph = nx.Graph()
    sources = set()
    for x in labels:
        if not used2[x]:
            continue
        for y in labels:
            if x == y or not used2[y]:
                continue
            if _interacting(x, y):
                continue  # Condition 1
            if reach2[y] & self2[x]:
                continue  # Condition 2: a gate on y precedes a gate on x
            graph.add_edge(("s", x), ("t", y))
            sources.add(("s", x))
    if not graph.number_of_edges():
        return 0
    matching = nx.algorithms.bipartite.hopcroft_karp_matching(graph, sources)
    return len(matching) // 2


def _derive_np_state(state: dict) -> dict:
    """Precompute the per-step overlap matrices the bitset kernel reads.

    The candidate-dependent bitset expressions in
    :func:`_potential_for_candidate` all factor through three label×label
    overlap relations, so the word-level work is done once per step here
    and each candidate evaluation degrades to (n, n) boolean algebra:

    * ``op_overlap[x, y]``  — ``selfop[x] & reach_op[y]`` is non-zero
      (Condition 2 of the unmodified wires);
    * ``all_overlap[x, y]`` — ``selfop[x] & reach_all[y]`` is non-zero
      (whether wire *x* holds gates inside candidate-target *y*'s closure,
      i.e. whether the transferred closure ``tr`` reaches wire *x*'s ops);
    * ``grabs[a, y]``       — ``selfall[a] & reach_op[y]`` is non-zero
      (whether wire *y* reaches candidate-source *a* and therefore
      inherits ``tr`` after the merge).

    The prospective measure/reset bits (``next_id``/``next_id + 1``) never
    intersect any existing mask, and both always land in ``tr`` and in the
    merged source wire's self-mask, so their only effect — forcing
    Condition 2 between the merged wire and every wire that inherits
    ``tr`` — is folded into the closed-form update in
    :func:`_potential_for_candidate_fast`.
    """
    n = state["n"]
    num_words = max(1, (state["next_id"] + 63) // 64)

    def _pack(masks: List[int]) -> np.ndarray:
        data = b"".join(m.to_bytes(num_words * 8, "little") for m in masks)
        return np.frombuffer(data, dtype="<u8").reshape(n, num_words)

    reach_op = _pack(state["reach_op"])
    reach_all = _pack(state["reach_all"])
    selfop = _pack(state["selfop"])
    selfall = _pack(state["selfall"])
    gids = state["gids"]
    interact = np.zeros((n, n), dtype=bool)
    for x, members in enumerate(state["interacts"]):
        if members:
            for y in range(n):
                if gids[y] in members:
                    interact[x, y] = True
    return {
        "n": n,
        "op_overlap": (selfop[:, None, :] & reach_op[None, :, :]).any(axis=2),
        "all_overlap": (selfop[:, None, :] & reach_all[None, :, :]).any(axis=2),
        "grabs": (selfall[:, None, :] & reach_op[None, :, :]).any(axis=2),
        "interact": interact,
        "used": np.array(state["used"], dtype=bool),
    }


def _potential_for_candidate_fast(np_state: dict, pair: ReusePair) -> int:
    """Bitset-kernel twin of :func:`_potential_for_candidate`.

    Evaluates the same post-merge Condition-1/2 relation from the
    precomputed overlap matrices and sizes the same maximum matching
    (Kuhn instead of Hopcroft–Karp; the size is unique), so the returned
    potential is identical bit for bit.
    """
    a, b = pair.source, pair.target
    n = np_state["n"]
    op_overlap = np_state["op_overlap"]
    transfer_hits = np_state["all_overlap"][:, b]  # selfop[x] & reach_all[b]
    inherits = np_state["grabs"][a].copy()  # wires whose reach grows by tr
    inherits[a] = True
    # Condition 2 after the merge: the base relation, plus tr reaching any
    # wire that inherits it, plus the merged wire's combined rows/columns.
    cond2 = op_overlap | (transfer_hits[:, None] & inherits[None, :])
    cond2[:, a] |= op_overlap[:, b]
    cond2[a, :] = op_overlap[a, :] | op_overlap[b, :] | inherits
    # Condition 1 after the merge: the source wire owns both interact sets.
    merged = np_state["interact"][a] | np_state["interact"][b]
    cond1 = np_state["interact"].copy()
    cond1[a, :] = merged
    cond1[:, a] = merged
    used2 = np_state["used"].copy()
    used2[a] = True
    valid = used2[:, None] & used2[None, :] & ~cond1 & ~cond2
    np.fill_diagonal(valid, False)
    valid[b, :] = False
    valid[:, b] = False
    if not valid.any():
        return 0
    packed = np.packbits(valid, axis=1, bitorder="little")
    rows = [int.from_bytes(packed[x].tobytes(), "little") for x in range(n)]
    return max_bipartite_matching_size(rows, n)


def _potential_chunk_worker(payload):
    """Process-pool entry point: lookahead for one chunk of candidates."""
    state, pairs = payload
    if _lookahead_kernel() == "nx":
        return [_potential_for_candidate(state, pair) for pair in pairs]
    np_state = _derive_np_state(state)
    return [_potential_for_candidate_fast(np_state, pair) for pair in pairs]


class ReuseSession:
    """One DAG + bitset cache shared across a whole greedy reduction sweep.

    Args:
        circuit: the input logical circuit.
        reset_style: reuse reset idiom (``"cif"`` or ``"builtin"``).
        parallel: fan the reuse-potential lookahead out to a process pool
            when the per-step workload is large enough.
        parallel_threshold: minimum ``candidates × labels²`` workload
            before fanning out.
        max_workers: pool size (default ``os.cpu_count()`` capped at 8).
        stats: counter/timer sink (one is created when omitted).
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        reset_style: str = "cif",
        parallel: bool = False,
        parallel_threshold: int = POTENTIAL_WORKLOAD_THRESHOLD,
        max_workers: Optional[int] = None,
        stats: Optional[ReuseEvalStats] = None,
    ):
        if reset_style not in ("cif", "builtin"):
            raise ReuseError(f"unknown reset style {reset_style!r}")
        self.reset_style = reset_style
        self.parallel = parallel
        self.parallel_threshold = parallel_threshold
        self.max_workers = max_workers or min(os.cpu_count() or 1, 8)
        self.stats = stats if stats is not None else ReuseEvalStats()
        self.circuit = circuit
        self.dag = DAGCircuit.from_circuit(circuit)
        self.masks = descendants_bitsets(self.dag)
        self.generation = 0
        self.pairs: List[ReusePair] = []
        self._num_clbits = circuit.num_clbits
        self._executor = None
        self._state_cache: Optional[dict] = None
        self._np_state_cache: Optional[dict] = None
        self._potential_cache: Dict[ReusePair, int] = {}

        self._labels: List[_WireGroup] = [
            _WireGroup(q, q, self.dag.nodes_on_qubit(q))
            for q in range(circuit.num_qubits)
        ]
        for instruction in circuit.data:
            if len(instruction.qubits) < 2:
                continue
            for qa in instruction.qubits:
                for qb in instruction.qubits:
                    if qa != qb:
                        self._labels[qa].interacts.add(qb)
        # last writer/reader per classical bit, for the feed-forward wire
        self._clbit_last: Dict[int, int] = {}
        for node_id in self.dag.op_nodes(include_directives=True):
            for kind, wire in _wires(self.dag.nodes[node_id].instruction):
                if kind == "c":
                    self._clbit_last[wire] = node_id

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down the lookahead process pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ReuseSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries ---------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self._labels)

    def nodes_by_label(self) -> Dict[int, List[int]]:
        """Current label -> DAG node ids on that wire (wire order)."""
        return {label: group.nodes for label, group in enumerate(self._labels)}

    def _has_terminal_measure(self, group: _WireGroup) -> bool:
        if not group.nodes:
            return False
        last = self.dag.nodes[group.nodes[-1]].instruction
        return (
            last is not None
            and last.name == "measure"
            and len(last.qubits) == 1
            and last.condition is None
        )

    def _state(self) -> dict:
        """Per-generation bitset aggregates over the wire groups."""
        if self._state_cache is not None:
            return self._state_cache
        masks = self.masks
        nodes = self.dag.nodes
        n = len(self._labels)
        reach_op = [0] * n
        reach_all = [0] * n
        selfop = [0] * n
        selfall = [0] * n
        used = [False] * n
        tmeasure = [False] * n
        for label, group in enumerate(self._labels):
            r_op = r_all = s_op = s_all = 0
            for node_id in group.nodes:
                bit = 1 << node_id
                closure = masks[node_id] | bit
                r_all |= closure
                s_all |= bit
                if not nodes[node_id].instruction.is_directive():
                    r_op |= closure
                    s_op |= bit
            reach_op[label] = r_op
            reach_all[label] = r_all
            selfop[label] = s_op
            selfall[label] = s_all
            used[label] = bool(group.nodes)
            tmeasure[label] = self._has_terminal_measure(group)
        self._np_state_cache = None
        self._state_cache = {
            "n": n,
            "reach_op": reach_op,
            "reach_all": reach_all,
            "selfop": selfop,
            "selfall": selfall,
            "gids": [group.gid for group in self._labels],
            "interacts": [set(group.interacts) for group in self._labels],
            "used": used,
            "tmeasure": tmeasure,
            "next_id": self.dag._next_id,
        }
        return self._state_cache

    def valid_pairs(self) -> List[ReusePair]:
        """Every valid reuse pair at the current step, in (source, target)
        label order — identical to ``ReuseAnalysis(circuit).valid_pairs()``
        on the materialised circuit."""
        state = self._state()
        used = [label for label in range(state["n"]) if state["used"][label]]
        gids = state["gids"]
        interacts = state["interacts"]
        reach_op = state["reach_op"]
        selfop = state["selfop"]
        pairs: List[ReusePair] = []
        for source in used:
            for target in used:
                if source == target:
                    continue
                if gids[target] in interacts[source]:
                    continue  # Condition 1
                if reach_op[target] & selfop[source]:
                    continue  # Condition 2
                pairs.append(ReusePair(source, target))
        return pairs

    # -- lookahead -------------------------------------------------------------

    def _np_state(self) -> dict:
        """Per-generation overlap matrices for the bitset lookahead kernel."""
        if self._np_state_cache is None:
            self._np_state_cache = _derive_np_state(self._state())
        return self._np_state_cache

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def reuse_potentials(
        self, pairs: Sequence[ReusePair]
    ) -> Dict[ReusePair, int]:
        """Post-merge reuse-matching bound per candidate, memoised per step."""
        missing = [p for p in pairs if p not in self._potential_cache]
        hits = len(pairs) - len(missing)
        if hits:
            self.stats.count("cache_hits", hits)
        if missing:
            self.stats.count("lookahead_evaluations", len(missing))
            state = self._state()
            workload = len(missing) * state["n"] * state["n"]
            if (
                self.parallel
                and len(missing) >= 2 * self.max_workers
                and workload >= self.parallel_threshold
            ):
                self.stats.count("parallel_batches")
                chunk = max(1, -(-len(missing) // self.max_workers))
                payloads = [
                    (state, missing[i : i + chunk])
                    for i in range(0, len(missing), chunk)
                ]
                values: List[int] = []
                for part in self._pool().map(_potential_chunk_worker, payloads):
                    values.extend(part)
            elif _lookahead_kernel() == "nx":
                self.stats.count("serial_batches")
                values = [
                    _potential_for_candidate(state, pair) for pair in missing
                ]
            else:
                self.stats.count("serial_batches")
                np_state = self._np_state()
                values = [
                    _potential_for_candidate_fast(np_state, pair)
                    for pair in missing
                ]
            self._potential_cache.update(zip(missing, values))
        return {p: self._potential_cache[p] for p in pairs}

    # -- mutation --------------------------------------------------------------

    def apply(self, pair: ReusePair) -> None:
        """Apply ``(source -> target)`` (labels of the current step).

        Splices the measure/reset nodes into the session DAG, patches the
        descendants bitsets incrementally, merges the wire groups, and
        re-materialises the circuit through the exact transformation the
        from-scratch path uses.
        """
        source_group = self._labels[pair.source]
        target_group = self._labels[pair.target]
        source_nodes = list(source_group.nodes)
        target_nodes = list(target_group.nodes)

        # 1. locate or create the source's measurement
        if self._has_terminal_measure(source_group):
            measure_node = source_nodes[-1]
            clbit = self.dag.nodes[measure_node].instruction.clbits[0]
            measure_is_new = False
        else:
            clbit = self._num_clbits
            self._num_clbits += 1
            measure_instruction = Instruction(
                "measure",
                (source_group.rep,),
                clbits=(clbit,),
                label=REUSE_LABEL,
            )
            measure_node = self.dag.add_instruction_node(
                measure_instruction, tag=REUSE_LABEL
            )
            for node_id in source_nodes:
                self.dag.add_edge(node_id, measure_node)
            self.stats.count(
                "mask_updates",
                len(update_masks_for_node(self.dag, self.masks, measure_node)),
            )
            measure_is_new = True

        # 2. the reset: conditional X (or built-in reset)
        if self.reset_style == "cif":
            reset_instruction = Instruction(
                "x", (source_group.rep,), condition=(clbit, 1), label=REUSE_LABEL
            )
        else:
            reset_instruction = Instruction(
                "reset", (source_group.rep,), label=REUSE_LABEL
            )
        reset_node = self.dag.add_instruction_node(
            reset_instruction, tag=REUSE_LABEL
        )
        self.dag.add_edge(measure_node, reset_node)
        for node_id in source_nodes:
            if node_id != measure_node:
                self.dag.add_edge(node_id, reset_node)
        # feed-forward wire: the reset reads the measure's classical bit, so
        # it also follows whatever last touched that bit (the mask guard
        # keeps exotic clbit sharing from introducing a cycle: the reset's
        # prospective descendants are exactly the target wire's closure)
        last_on_clbit = self._clbit_last.get(clbit)
        if last_on_clbit is not None and last_on_clbit != measure_node:
            downstream = 0
            for node_id in target_nodes:
                downstream |= self.masks[node_id] | (1 << node_id)
            if not downstream >> last_on_clbit & 1:
                self.dag.add_edge(last_on_clbit, reset_node)
        # 3. the target's gates run after the reset
        for node_id in target_nodes:
            self.dag.add_edge(reset_node, node_id)
        self.stats.count(
            "mask_updates",
            len(update_masks_for_node(self.dag, self.masks, reset_node)),
        )
        if self.reset_style == "cif":
            self._clbit_last[clbit] = reset_node

        # 4. merge the wire groups: source ops, measure, reset, target ops
        if measure_is_new:
            source_group.nodes.append(measure_node)
        source_group.nodes.append(reset_node)
        source_group.nodes.extend(target_nodes)
        source_group.interacts |= target_group.interacts
        for group in self._labels:
            if group is source_group or group is target_group:
                continue
            if target_group.gid in group.interacts:
                group.interacts.discard(target_group.gid)
                group.interacts.add(source_group.gid)
        source_group.interacts.discard(source_group.gid)
        source_group.interacts.discard(target_group.gid)
        del self._labels[pair.target]

        # 5. re-materialise through the reference transformation
        self.circuit = apply_reuse_pair(
            self.circuit, pair, reset_style=self.reset_style, validate=False
        ).circuit
        self.pairs.append(pair)
        self.generation += 1
        self._state_cache = None
        self._np_state_cache = None
        self._potential_cache.clear()
        self.stats.count("steps")
