"""Maximum bipartite matching over bitmask adjacency rows.

The reuse-potential lookahead bounds "how many reuse pairs remain after
this merge" with a maximum bipartite matching between source and target
wires (paper Fig. 9's feasibility relation).  The matching *size* is what
CaQR compares — and the size of a maximum matching is unique (König), so
any maximum-matching algorithm returns the exact value
``networkx.algorithms.bipartite.hopcroft_karp_matching`` would.

:func:`max_bipartite_matching_size` runs Kuhn's augmenting-path algorithm
directly on integer bitmasks (one Python int of target bits per source
row), avoiding the graph-object construction that dominated the
networkx-based lookahead.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["max_bipartite_matching_size"]


def max_bipartite_matching_size(rows: List[int], num_targets: int) -> int:
    """Size of a maximum matching in the bipartite graph ``source x has an
    edge to target y iff bit y of rows[x] is set``.

    Args:
        rows: one target-bitmask per source vertex.
        num_targets: number of target vertices (bit positions).

    Returns:
        The (unique) maximum-matching size.
    """
    match_of_target = [-1] * num_targets

    def _augment(source: int, banned: int) -> Tuple[bool, int]:
        """Try to match *source*, threading the per-phase visited mask."""
        available = rows[source] & ~banned
        while available:
            target_bit = available & -available
            available ^= target_bit
            banned |= target_bit
            target = target_bit.bit_length() - 1
            holder = match_of_target[target]
            if holder == -1:
                match_of_target[target] = source
                return True, banned
            grew, banned = _augment(holder, banned)
            if grew:
                match_of_target[target] = source
                return True, banned
        return False, banned

    size = 0
    for source, mask in enumerate(rows):
        if mask:
            grew, _ = _augment(source, 0)
            if grew:
                size += 1
    return size
