"""SR-CaQR: dynamic-circuit-aware mapping targeting SWAP reduction
(paper Section 3.3).

The router compiles the logical circuit layer by layer, mapping logical
qubits to physical qubits *lazily*:

* frontier gates **on the critical path** are scheduled immediately —
  their unmapped qubits get placed using the paper's Step-2 heuristics
  (qubit with more gates first; best-connected / lowest-error free
  physical qubit; partner placed at minimum distance, ties broken by
  readout / CNOT error);
* frontier gates **off the critical path** are *delayed*, so by the time
  their qubits must be placed, earlier logical qubits may have finished
  and released their physical qubits back into ``physicalList`` — placing
  a fresh logical qubit onto a released wire is a qubit reuse, and the
  broader choice of placements is what removes SWAPs;
* blocked two-qubit gates get SWAPs inserted one at a time along an
  error-aware shortest path (Step 3's "heuristic ... with the
  consideration of error variability").

A physical qubit is only released for reuse when its logical qubit's final
operation was a measurement (the paper's setting: reused qubits are
measured first — their outcome is still needed).

Two interchangeable scheduler engines are provided (``incremental=``):

* the default **incremental** engine maintains slack, the frontier, and
  per-qubit gate counts under node-resolution deltas — ALAP tail depths
  are fixed once (scheduled nodes are always frontier nodes, so the
  unscheduled set is an up-set and a node's successor chain never
  changes), ASAP labels are repaired by a worklist, and placement / SWAP
  scoring is vectorised against shared read-only distance matrices;
* the **reference** engine re-derives everything from the full DAG each
  round with scalar scoring — the pre-optimisation router, kept as the
  differential-testing and benchmarking baseline.

Both engines emit bit-identical circuits; ``tests/property`` pins them
against each other.  ``SRCaQR.run`` can fan its candidate × hint-seed
trial grid out to a process pool (``parallel=`` / ``CAQR_ROUTE_WORKERS``)
with a grid-ordered reduction that keeps the selection bit-identical to
the serial sweep (see ``docs/ROUTER.md``).
"""

from __future__ import annotations

import heapq
import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import HardwareError, ReuseError, TranspilerError
from repro.hardware.backends import Backend
from repro.transpiler.basis import decompose_to_two_qubit
from repro.transpiler.layout import Layout
from repro.transpiler.sabre import _route_workers, sabre_layout
from repro.transpiler.scheduling import circuit_duration_dt
from repro.transpiler.stats import RouteStats

__all__ = ["SRCaQRResult", "SRCaQR"]

_FRESH = ("fresh", None)
_DIRTY = ("dirty", None)


@dataclass
class SRCaQRResult:
    """Output of the SR-CaQR router.

    Attributes:
        circuit: physical circuit (indices are device qubits) with SWAPs
            and the reuse reset operations inserted.
        swap_count: SWAPs inserted.
        reuse_count: times a logical qubit was placed on a released wire.
        qubits_used: distinct physical qubits that carried operations.
        depth / duration_dt: metrics of the physical circuit.
    """

    circuit: QuantumCircuit
    swap_count: int
    reuse_count: int
    qubits_used: int
    depth: int
    duration_dt: int


def _sr_trial_worker(payload):
    """Module-level adapter: run one (candidate, hint-seed) grid cell in a
    worker process and ship its result + stats back for merging."""
    router, circuit, hint_seed = payload
    router.stats = RouteStats()
    result = router._run_once(circuit, hint_seed=hint_seed)
    return result, router.stats


class SRCaQR:
    """Swap-reduction CaQR for regular applications.

    Args:
        backend: target device (coupling + calibration).
        noise_aware: weight SWAP paths and placement by calibration errors
            (when off, plain hop distance is used — the ablation knob).
        reset_style: reset idiom used at reuse points.
        incremental: use the incremental scheduler engine (default); the
            from-scratch reference engine is kept for differential testing
            and benchmarking.
        parallel: ``True`` forces the trial grid onto a process pool,
            ``False`` forces the serial sweep, ``None`` (default) uses the
            pool only when more than one worker (``CAQR_ROUTE_WORKERS``)
            and more than one grid cell are available.
        max_workers: worker-pool size cap (default ``CAQR_ROUTE_WORKERS``
            or ``min(cpu_count, 8)``).
    """

    def __init__(
        self,
        backend: Backend,
        noise_aware: bool = True,
        reset_style: str = "cif",
        incremental: bool = True,
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
    ):
        self.backend = backend
        self.noise_aware = noise_aware
        self.reset_style = reset_style
        self.incremental = incremental
        self.parallel = parallel
        self.max_workers = max_workers
        self.stats = RouteStats()
        self._error_graph = self._build_error_graph()
        # error-weighted all-pairs distances for SWAP scoring, packed into
        # a read-only ndarray shared across every trial (and, pickled, with
        # every worker process); on a noise-blind run these equal hop
        # distances
        self._error_distance = self._build_error_distance()
        num_qubits = self.backend.num_qubits
        adjacency = np.zeros((num_qubits, num_qubits), dtype=bool)
        link_error = np.ones((num_qubits, num_qubits), dtype=np.float64)
        for a, b in self.backend.coupling.edges:
            adjacency[a, b] = adjacency[b, a] = True
            error = self.backend.calibration.get_cx_error(a, b)
            link_error[a, b] = link_error[b, a] = error
        adjacency.setflags(write=False)
        link_error.setflags(write=False)
        self._adjacency_matrix = adjacency
        self._link_error = link_error
        readout = np.array(
            [
                self.backend.calibration.get_readout_error(p)
                for p in range(num_qubits)
            ],
            dtype=np.float64,
        )
        readout.setflags(write=False)
        self._readout_error = readout

    def _build_error_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.backend.num_qubits))
        for a, b in self.backend.coupling.edges:
            if self.noise_aware:
                error = self.backend.calibration.get_cx_error(a, b)
                weight = -math.log(max(1.0 - error, 1e-9))
            else:
                weight = 1.0
            graph.add_edge(a, b, weight=weight)
        return graph

    def _build_error_distance(self) -> np.ndarray:
        """All-pairs error-weighted distances as a read-only ndarray."""
        self.stats.count("distance_cache_builds")
        num_qubits = self.backend.num_qubits
        matrix = np.full((num_qubits, num_qubits), np.inf, dtype=np.float64)
        for source, lengths in nx.all_pairs_dijkstra_path_length(
            self._error_graph, weight="weight"
        ):
            for target, weight in lengths.items():
                matrix[source, target] = weight
        matrix.setflags(write=False)
        return matrix

    # -- the main pass -------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        trials: int = 3,
        qs_assist: bool = True,
        objective: str = "swaps",
        parallel: Optional[bool] = None,
        seed_base: Optional[int] = None,
    ) -> SRCaQRResult:
        """Compile *circuit* onto the backend with lazy mapping and reuse.

        The circuit may be *wider* than the device: reuse frees wires, so
        only the number of concurrently-live logical qubits is bounded
        (a :class:`~repro.exceptions.ReuseError` is raised if the free
        pool is ever exhausted).

        Several placement-hint seeds are tried (*trials*), and — mirroring
        SR-CaQR-commuting's Step 1 — with *qs_assist* the router also
        evaluates a few QS-CaQR pre-transformed versions of the circuit
        (imposed reuse dependencies lower mapping congestion on dense
        circuits).  Under the default *objective* the compilation with the
        fewest SWAPs (ties: shortest duration) wins; ``objective="esp"``
        instead maximises the estimated success probability against the
        backend calibration (the paper's fidelity metric — "improved
        estimated success probability").

        The candidate × hint-seed grid cells are independent; with
        *parallel* (or the constructor knob) they fan out to a process
        pool.  Cells are reduced in grid order with a strict ``<`` on the
        objective key, so the parallel sweep selects the exact result the
        serial sweep would.

        *seed_base* anchors the hint-seed stream (default 17): callers
        racing several SR variants over the same circuit can hand each
        lane a distinct base so the lanes explore distinct placement
        streams instead of re-deriving the same seeds.  The hint-less
        first trial is kept regardless, so any base still covers the
        no-hint baseline.
        """
        if objective not in ("swaps", "esp"):
            raise ReuseError(f"unknown SR objective {objective!r}")
        if trials < 1:
            raise ReuseError(f"SR-CaQR needs at least one trial, got {trials}")
        candidates = [circuit]
        if qs_assist and not circuit.has_dynamic_operations():
            from repro.core.qs_caqr import QSCaQR

            sweep = QSCaQR(reset_style=self.reset_style).sweep(circuit)[1:]
            if len(sweep) > 3:
                step = len(sweep) / 3.0
                sweep = [sweep[int(i * step)] for i in range(3)]
            candidates.extend(point.circuit for point in sweep)

        def _key(result: SRCaQRResult):
            if objective == "esp":
                from repro.sim.metrics import estimated_success_probability

                return (
                    -estimated_success_probability(
                        result.circuit, self.backend.calibration
                    ),
                )
            return (result.swap_count, result.duration_dt)

        base = 17 if seed_base is None else int(seed_base)
        seeds: List[Optional[int]] = [None] + [
            base + 24 * t for t in range(trials - 1)
        ]
        grid = [
            (candidate, seed) for candidate in candidates for seed in seeds
        ]
        requested = parallel if parallel is not None else self.parallel
        workers = self.max_workers or _route_workers()
        use_parallel = (
            requested
            if requested is not None
            else (workers > 1 and len(grid) > 1)
        )

        results: List[SRCaQRResult]
        with self.stats.timed("sr_run"):
            if use_parallel and len(grid) > 1:
                payloads = [(self, candidate, seed) for candidate, seed in grid]
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(grid))
                ) as pool:
                    outcomes = list(pool.map(_sr_trial_worker, payloads))
                results = []
                for result, trial_stats in outcomes:
                    self.stats.merge(trial_stats)
                    results.append(result)
                self.stats.count("parallel_trials", len(grid))
            else:
                results = [
                    self._run_once(candidate, hint_seed=seed)
                    for candidate, seed in grid
                ]
                self.stats.count("serial_trials", len(grid))
        self.stats.count("sr_trials", len(grid))

        best: Optional[SRCaQRResult] = None
        best_key = None
        for result in results:
            key = _key(result)
            if best_key is None or key < best_key:
                best, best_key = result, key
        assert best is not None
        self.stats.count("reuses", best.reuse_count)
        return best

    def _hints(self, flat: QuantumCircuit, hint_seed: Optional[int]) -> Dict[int, int]:
        """Placement hints (the paper's "benefit future gates by lookahead"):
        a SABRE layout search suggests where each logical qubit would sit
        in a good global placement; lazy mapping prefers the hinted spot
        when it is free, and otherwise falls back to the local heuristics.
        """
        coupling = self.backend.coupling
        if hint_seed is None or flat.num_qubits > coupling.num_qubits:
            return {}
        try:
            hint_layout = sabre_layout(
                flat,
                coupling,
                seed=hint_seed,
                iterations=2,
                trials=2,
                parallel=False,
                stats=self.stats,
            )
        except (TranspilerError, HardwareError):
            # expected failures only (stalled routing, disconnected device):
            # the router maps without hints; programming errors propagate
            self.stats.count("hint_fallbacks")
            return {}
        return hint_layout.as_dict()

    def _run_once(
        self, circuit: QuantumCircuit, hint_seed: Optional[int]
    ) -> SRCaQRResult:
        if self.incremental:
            return self._run_once_incremental(circuit, hint_seed)
        return self._run_once_reference(circuit, hint_seed)

    # -- incremental engine --------------------------------------------------------

    def _run_once_incremental(
        self, circuit: QuantumCircuit, hint_seed: Optional[int]
    ) -> SRCaQRResult:
        flat = decompose_to_two_qubit(circuit)
        dag = DAGCircuit.from_circuit(flat)
        coupling = self.backend.coupling
        num_physical = self.backend.num_qubits
        stats = self.stats
        stats.count("distance_cache_hits")

        hints = self._hints(flat, hint_seed)

        node_count = len(dag.nodes)
        in_degree: Dict[int, int] = {n: dag.in_degree(n) for n in dag.nodes}
        unscheduled: Set[int] = set(dag.nodes)

        # per-qubit instruction-node index: replaces the O(N) full-order
        # scans of dag.nodes_on_qubit in partner lookup / finishing checks
        nodes_by_qubit: List[List[int]] = [[] for _ in range(flat.num_qubits)]
        remaining_gates: Dict[int, int] = {q: 0 for q in range(flat.num_qubits)}
        last_op: Dict[int, Optional[Instruction]] = {
            q: None for q in range(flat.num_qubits)
        }
        for node_id in dag._order:
            instruction = dag.nodes[node_id].instruction
            if instruction is None:
                continue
            for q in instruction.qubits:
                nodes_by_qubit[q].append(node_id)
                remaining_gates[q] += 1

        layout = Layout(flat.num_qubits, num_physical)
        out = QuantumCircuit(num_physical, flat.num_clbits, flat.name)
        wire_state: Dict[int, Tuple[str, Optional[int]]] = {
            p: _FRESH for p in range(num_physical)
        }
        ever_used: Set[int] = set()
        swap_count = 0
        reuse_count = 0
        force_map = False
        wait_budget: Dict[int, int] = {q: 16 for q in range(flat.num_qubits)}

        distance = coupling.distance_matrix()
        error_distance = self._error_distance
        adjacency = self._adjacency_matrix
        readout_error = self._readout_error
        link_error = self._link_error

        # -- incremental slack state -------------------------------------------------
        #
        # Only frontier nodes (in-degree 0 within the unscheduled sub-DAG)
        # are ever scheduled, so the unscheduled set is an up-set: every
        # successor of an unscheduled node is itself unscheduled.  The
        # ALAP side of slack therefore never changes — alap[n] equals
        # horizon - depth_below[n] with depth_below fixed by the full DAG —
        # and only the ASAP labels need repairing when predecessors resolve.
        depth_below = [0] * node_count
        for node_id in range(node_count - 1, -1, -1):
            successors = dag.successors(node_id)
            if successors:
                depth_below[node_id] = 1 + max(
                    depth_below[s] for s in successors
                )
        asap = [0] * node_count
        for node_id in range(node_count):
            asap[node_id] = 1 + max(
                (asap[p] for p in dag.predecessors(node_id)), default=0
            )
        # lazy max-heap over current ASAP labels (horizon queries)
        asap_heap = [(-asap[n], n) for n in range(node_count)]
        heapq.heapify(asap_heap)
        dirty: Set[int] = set()
        frontier_set: Set[int] = {n for n in dag.nodes if in_degree[n] == 0}
        slack_cache_valid = False
        cached_frontier: List[int] = []
        slack: Dict[int, int] = {}
        recomputes = 0
        avoided = 0
        node_updates = 0
        candidates_scored = 0

        # -- inner helpers ---------------------------------------------------------

        def _drain_dirty() -> None:
            """Repair ASAP labels invalidated by resolved predecessors.

            Node ids from ``DAGCircuit.from_circuit`` ascend topologically
            (every edge runs low → high), so draining the worklist in
            ascending id order sees final predecessor labels."""
            nonlocal node_updates
            if not dirty:
                return
            work = [n for n in dirty if n in unscheduled]
            dirty.clear()
            heapq.heapify(work)
            pending = set(work)
            while work:
                node_id = heapq.heappop(work)
                pending.discard(node_id)
                fresh = 1 + max(
                    (
                        asap[p]
                        for p in dag.predecessors(node_id)
                        if p in unscheduled
                    ),
                    default=0,
                )
                if fresh != asap[node_id]:
                    asap[node_id] = fresh
                    heapq.heappush(asap_heap, (-fresh, node_id))
                    node_updates += 1
                    for successor in dag.successors(node_id):
                        if successor not in pending:
                            pending.add(successor)
                            heapq.heappush(work, successor)

        def _horizon() -> int:
            while asap_heap:
                value, node_id = asap_heap[0]
                if node_id in unscheduled and asap[node_id] == -value:
                    return -value
                heapq.heappop(asap_heap)
            return 0

        def _ordered_frontier() -> List[int]:
            """Frontier sorted critical-path-first: by (slack, node id),
            matching the reference engine's stable sort of the
            insertion-ordered frontier by slack.  Rounds that scheduled
            nothing (SWAP insertion, force-map transitions) reuse the
            cached ordering — the unscheduled set did not change."""
            nonlocal slack_cache_valid, cached_frontier, slack
            nonlocal recomputes, avoided
            if slack_cache_valid:
                avoided += 1
                return cached_frontier
            recomputes += 1
            _drain_dirty()
            horizon = _horizon()
            slack = {
                n: horizon - depth_below[n] - asap[n] for n in frontier_set
            }
            cached_frontier = sorted(
                frontier_set, key=lambda n: (slack[n], n)
            )
            slack_cache_valid = True
            return cached_frontier

        def _mark_scheduled(node_id: int) -> None:
            nonlocal slack_cache_valid
            unscheduled.discard(node_id)
            frontier_set.discard(node_id)
            slack_cache_valid = False
            for successor in dag.successors(node_id):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    frontier_set.add(successor)
                dirty.add(successor)
            instruction = dag.nodes[node_id].instruction
            if instruction is None:
                return
            for q in instruction.qubits:
                remaining_gates[q] -= 1
                last_op[q] = instruction
            # targeted reclaim: only this instruction's qubits can have
            # just finished (a qubit is never mapped after its last gate)
            for q in instruction.qubits:
                if remaining_gates[q] == 0 and layout.is_mapped(q):
                    final = last_op[q]
                    physical = layout.release(q)
                    if final is not None and final.name == "measure":
                        wire_state[physical] = ("measured", final.clbits[0])
                    else:
                        wire_state[physical] = _DIRTY

        def _emit(node_id: int) -> None:
            instruction = dag.nodes[node_id].instruction
            mapped = instruction.remapped(lambda q: layout.physical(q))
            out.append(mapped)
            ever_used.update(mapped.qubits)
            _mark_scheduled(node_id)

        def _prepare_wire(physical: int) -> None:
            """Reset a reused wire before its new logical qubit starts."""
            nonlocal reuse_count
            state, clbit = wire_state[physical]
            if state == "fresh":
                return
            reuse_count += 1
            if state == "dirty":
                clbit = out.num_clbits
                out.add_clbits(1)
                out.measure(physical, clbit)
            if self.reset_style == "cif":
                out.x(physical).c_if(clbit, 1)
            else:
                out.reset(physical)
            wire_state[physical] = _FRESH

        def _future_partners(logical: int) -> List[int]:
            """Physical positions of already-mapped future gate partners."""
            partners: List[int] = []
            for node_id in nodes_by_qubit[logical]:
                if node_id not in unscheduled:
                    continue
                instruction = dag.nodes[node_id].instruction
                for other in instruction.qubits:
                    if other != logical and layout.is_mapped(other):
                        partners.append(layout.physical(other))
            return partners

        def _finishing_soon(occupant: int) -> bool:
            """Occupant is in its 1Q/measure tail: the wire frees shortly."""
            if remaining_gates[occupant] > 3:
                return False
            return all(
                len(dag.nodes[n].instruction.qubits) == 1
                for n in nodes_by_qubit[occupant]
                if n in unscheduled
            )

        def _map_first(logical: int) -> bool:
            nonlocal candidates_scored
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            partners = _future_partners(logical)
            free_arr = np.asarray(free, dtype=np.int64)
            # wait for an imminently-freed wire next to a mapped partner
            # rather than settling for a distant placement (paper Fig. 5)
            if partners and not force_map and wait_budget[logical] > 0:
                best_free = distance[np.ix_(partners, free)].min()
                if best_free > 1:
                    for partner_physical in partners:
                        for neighbor in coupling.neighbors(partner_physical):
                            occupant = layout.logical(neighbor)
                            if occupant is not None and _finishing_soon(occupant):
                                wait_budget[logical] -= 1
                                return False

            # vectorised version of the scalar score tuple
            # (partner_cost, off_hint, -free_degree, readout, physical):
            # np.lexsort's primary key comes last, and the unique physical
            # index makes the order total, so the selected qubit is exactly
            # the tuple-minimising one
            if partners:
                partner_cost = distance[np.ix_(free, partners)].sum(axis=1)
            else:
                partner_cost = np.zeros(len(free), dtype=np.int64)
            unoccupied = np.zeros(num_physical, dtype=bool)
            unoccupied[free_arr] = True
            free_degree = (adjacency[free_arr] & unoccupied).sum(axis=1)
            hint = hints.get(logical)
            if hint is None:
                off_hint = np.ones(len(free), dtype=np.int64)
            else:
                off_hint = (free_arr != hint).astype(np.int64)
            if self.noise_aware:
                readout = readout_error[free_arr]
            else:
                readout = np.zeros(len(free), dtype=np.float64)
            candidates_scored += len(free)
            order = np.lexsort(
                (free_arr, readout, -free_degree, off_hint, partner_cost)
            )
            physical = int(free_arr[order[0]])
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _map_second(logical: int, partner_physical: int) -> bool:
            nonlocal candidates_scored
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            free_arr = np.asarray(free, dtype=np.int64)
            hops = distance[partner_physical, free_arr]
            # Prefer *waiting* over a distant placement when a neighbour of
            # the partner is about to be released — the released wire is a
            # SWAP-free reuse spot (the crux of SR-CaQR, paper Fig. 5).
            if not force_map and wait_budget[logical] > 0:
                if hops.min() > 1:
                    for neighbor in coupling.neighbors(partner_physical):
                        occupant = layout.logical(neighbor)
                        if occupant is not None and _finishing_soon(occupant):
                            wait_budget[logical] -= 1
                            return False

            # vectorised (hops, off_hint, readout + link, physical)
            if self.noise_aware:
                quality = readout_error[free_arr] + link_error[
                    partner_physical, free_arr
                ]
            else:
                quality = np.zeros(len(free), dtype=np.float64)
            hint = hints.get(logical)
            if hint is None:
                off_hint = np.ones(len(free), dtype=np.int64)
            else:
                off_hint = (free_arr != hint).astype(np.int64)
            candidates_scored += len(free)
            order = np.lexsort((free_arr, quality, off_hint, hops))
            physical = int(free_arr[order[0]])
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _map_gate_qubits(instruction: Instruction) -> bool:
            unmapped = [q for q in instruction.qubits if not layout.is_mapped(q)]
            if len(unmapped) == 2:
                # the qubit with more gates on it is placed first (Step 2)
                first, second = sorted(
                    unmapped, key=lambda q: -remaining_gates[q]
                )
                if not _map_first(first):
                    return False
                return _map_second(second, layout.physical(first))
            if len(unmapped) == 1 and len(instruction.qubits) == 2:
                other = next(
                    q for q in instruction.qubits if q != unmapped[0]
                )
                return _map_second(unmapped[0], layout.physical(other))
            if unmapped:
                return _map_first(unmapped[0])
            return True

        def _lookahead_gates(blocked: List[int]) -> List[int]:
            """Nearest fully-mapped 2Q descendants of the blocked gates."""
            result: List[int] = []
            queue = list(blocked)
            seen = set(queue)
            while queue and len(result) < 20:
                node_id = queue.pop(0)
                for successor in sorted(dag.successors(node_id)):
                    if successor in seen:
                        continue
                    seen.add(successor)
                    instruction = dag.nodes[successor].instruction
                    if (
                        instruction is not None
                        and len(instruction.qubits) == 2
                        and all(layout.is_mapped(q) for q in instruction.qubits)
                    ):
                        result.append(successor)
                    queue.append(successor)
            return result

        last_swap: List[Optional[Tuple[int, int]]] = [None]

        def _insert_swap_toward(blocked: List[int]) -> None:
            """SABRE-style scoring: pick the swap minimising the summed
            error-weighted distance of every blocked gate, plus a damped
            look-ahead term over upcoming mapped gates."""
            nonlocal swap_count, candidates_scored
            ahead = _lookahead_gates(blocked)
            candidates: Set[Tuple[int, int]] = set()
            for node_id in blocked:
                for q in dag.nodes[node_id].instruction.qubits:
                    physical = layout.physical(q)
                    for neighbor in coupling.neighbors(physical):
                        candidates.add(tuple(sorted((physical, neighbor))))
            if len(candidates) > 1:
                candidates.discard(last_swap[0])  # don't undo the last swap
            if not candidates:
                raise ReuseError("no SWAP candidates for blocked gates")

            cand_list = list(candidates)
            cand = np.array(cand_list, dtype=np.int64)
            a_col = cand[:, 0][:, None]
            b_col = cand[:, 1][:, None]

            def _cost_sums(gates: List[int]) -> np.ndarray:
                pairs = np.array(
                    [
                        [
                            layout.physical(q)
                            for q in dag.nodes[g].instruction.qubits
                        ]
                        for g in gates
                    ],
                    dtype=np.int64,
                )
                pa = pairs[:, 0][None, :]
                pb = pairs[:, 1][None, :]
                pa = np.where(pa == a_col, b_col, np.where(pa == b_col, a_col, pa))
                pb = np.where(pb == a_col, b_col, np.where(pb == b_col, a_col, pb))
                # cumulative (left-to-right) sums replicate the reference
                # engine's sequential float additions bit for bit —
                # np.sum's pairwise reduction would round differently
                return np.cumsum(error_distance[pa, pb], axis=1)[:, -1]

            scores = _cost_sums(blocked) / len(blocked)
            if ahead:
                scores = scores + 0.5 * _cost_sums(ahead) / len(ahead)
            candidates_scored += len(cand_list)
            best_index = min(
                range(len(cand_list)),
                key=lambda i: (scores[i], cand_list[i]),
            )
            a, b = cand_list[best_index]
            out.swap(a, b)
            ever_used.update((a, b))
            layout.swap_physical(a, b)
            wire_state[a], wire_state[b] = wire_state[b], wire_state[a]
            last_swap[0] = (a, b)
            swap_count += 1

        # -- main loop -----------------------------------------------------------------

        while unscheduled:
            frontier = _ordered_frontier()
            round_slack = slack
            scheduled_any = False
            mapping_starved = False
            blocked: List[int] = []
            # critical gates first so they grab free wires before delayable
            # ones (and wires reclaimed mid-round serve later gates)
            for node_id in frontier:
                instruction = dag.nodes[node_id].instruction
                if instruction is None or instruction.is_directive():
                    _mark_scheduled(node_id)
                    scheduled_any = True
                    continue
                fully_mapped = all(layout.is_mapped(q) for q in instruction.qubits)
                if not fully_mapped:
                    if round_slack.get(node_id, 0) > 0 and not force_map:
                        continue  # delay off-critical gates (Step 2)
                    if not _map_gate_qubits(instruction):
                        mapping_starved = True
                        continue  # no free wire yet; retry next round
                if len(instruction.qubits) == 2:
                    pa, pb = (layout.physical(q) for q in instruction.qubits)
                    if not coupling.are_adjacent(pa, pb):
                        blocked.append(node_id)
                        continue
                _emit(node_id)
                scheduled_any = True
            if scheduled_any:
                force_map = False
                continue
            if blocked:
                # bring the blocked frontier one SWAP closer (SABRE scoring)
                _insert_swap_toward(blocked)
                force_map = False
                continue
            if force_map:
                if mapping_starved:
                    raise ReuseError(
                        "device too small: all physical qubits are live and "
                        "no wire can be freed (circuit needs more concurrent "
                        "qubits than the device has)"
                    )
                raise ReuseError("SR-CaQR made no progress (internal error)")
            force_map = True

        stats.count("slack_recomputes", recomputes)
        stats.count("slack_recomputes_avoided", avoided)
        stats.count("slack_node_updates", node_updates)
        stats.count("swap_candidates_scored", candidates_scored)
        stats.count("swaps_inserted", swap_count)
        return SRCaQRResult(
            circuit=out,
            swap_count=swap_count,
            reuse_count=reuse_count,
            qubits_used=len(ever_used),
            depth=out.depth(),
            duration_dt=circuit_duration_dt(out, self.backend.calibration),
        )

    # -- reference engine ----------------------------------------------------------

    def _run_once_reference(
        self, circuit: QuantumCircuit, hint_seed: Optional[int]
    ) -> SRCaQRResult:
        """The pre-optimisation router: slack, frontier, and reclaim are
        re-derived from the full DAG every round with scalar scoring.  Kept
        bit-identical to the incremental engine (``tests/property`` pins
        them against each other) as the differential/benchmark baseline."""
        flat = decompose_to_two_qubit(circuit)
        dag = DAGCircuit.from_circuit(flat)
        coupling = self.backend.coupling
        stats = self.stats
        stats.count("distance_cache_hits")

        hints = self._hints(flat, hint_seed)

        in_degree: Dict[int, int] = {n: dag.in_degree(n) for n in dag.nodes}
        unscheduled: Set[int] = set(dag.nodes)
        remaining_gates: Dict[int, int] = {q: 0 for q in range(flat.num_qubits)}
        last_op: Dict[int, Optional[Instruction]] = {
            q: None for q in range(flat.num_qubits)
        }
        for node_id in dag.op_nodes(include_directives=True):
            instruction = dag.nodes[node_id].instruction
            for q in instruction.qubits:
                remaining_gates[q] += 1

        layout = Layout(flat.num_qubits, self.backend.num_qubits)
        out = QuantumCircuit(self.backend.num_qubits, flat.num_clbits, flat.name)
        wire_state: Dict[int, Tuple[str, Optional[int]]] = {
            p: _FRESH for p in range(self.backend.num_qubits)
        }
        ever_used: Set[int] = set()
        swap_count = 0
        reuse_count = 0
        force_map = False
        # bounded patience per logical qubit when waiting for a wire to free
        wait_budget: Dict[int, int] = {q: 16 for q in range(flat.num_qubits)}

        # -- inner helpers ---------------------------------------------------------

        def _slack() -> Dict[int, int]:
            """Unit-weight slack over the unscheduled sub-DAG."""
            stats.count("slack_recomputes")
            order = [n for n in dag.topological_order() if n in unscheduled]
            asap: Dict[int, int] = {}
            for node_id in order:
                start = max(
                    (
                        asap[p]
                        for p in dag.predecessors(node_id)
                        if p in unscheduled
                    ),
                    default=0,
                )
                asap[node_id] = start + 1
            horizon = max(asap.values(), default=0)
            alap: Dict[int, int] = {}
            for node_id in reversed(order):
                successors = [s for s in dag.successors(node_id) if s in unscheduled]
                if not successors:
                    alap[node_id] = horizon
                else:
                    alap[node_id] = min(alap[s] - 1 for s in successors)
            return {n: alap[n] - asap[n] for n in order}

        def _frontier() -> List[int]:
            return [n for n in dag._order if n in unscheduled and in_degree[n] == 0]

        def _mark_scheduled(node_id: int) -> None:
            unscheduled.discard(node_id)
            instruction = dag.nodes[node_id].instruction
            for successor in dag.successors(node_id):
                in_degree[successor] -= 1
            if instruction is None:
                return
            for q in instruction.qubits:
                remaining_gates[q] -= 1
                last_op[q] = instruction
            _reclaim()

        def _reclaim() -> None:
            """Release finished logical qubits back to the physical pool."""
            for q in range(flat.num_qubits):
                if remaining_gates[q] == 0 and layout.is_mapped(q):
                    final = last_op[q]
                    physical = layout.release(q)
                    if final is not None and final.name == "measure":
                        wire_state[physical] = ("measured", final.clbits[0])
                    else:
                        wire_state[physical] = _DIRTY

        def _emit(node_id: int) -> None:
            instruction = dag.nodes[node_id].instruction
            mapped = instruction.remapped(lambda q: layout.physical(q))
            out.append(mapped)
            ever_used.update(mapped.qubits)
            _mark_scheduled(node_id)

        def _prepare_wire(physical: int) -> None:
            """Reset a reused wire before its new logical qubit starts."""
            nonlocal reuse_count
            state, clbit = wire_state[physical]
            if state == "fresh":
                return
            reuse_count += 1
            if state == "dirty":
                clbit = out.num_clbits
                out.add_clbits(1)
                out.measure(physical, clbit)
            if self.reset_style == "cif":
                out.x(physical).c_if(clbit, 1)
            else:
                out.reset(physical)
            wire_state[physical] = _FRESH

        def _future_partners(logical: int) -> List[int]:
            """Physical positions of already-mapped future gate partners."""
            partners: List[int] = []
            for node_id in dag.nodes_on_qubit(logical):
                if node_id not in unscheduled:
                    continue
                instruction = dag.nodes[node_id].instruction
                for other in instruction.qubits:
                    if other != logical and layout.is_mapped(other):
                        partners.append(layout.physical(other))
            return partners

        def _free_degree(physical: int) -> int:
            return sum(
                1
                for neighbor in coupling.neighbors(physical)
                if layout.logical(neighbor) is None
            )

        def _map_first(logical: int) -> bool:
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            partners = _future_partners(logical)
            distance = coupling.distance_matrix()
            # wait for an imminently-freed wire next to a mapped partner
            # rather than settling for a distant placement (paper Fig. 5)
            if partners and not force_map and wait_budget[logical] > 0:
                best_free = min(
                    distance[p][f] for p in partners for f in free
                )
                if best_free > 1:
                    for partner_physical in partners:
                        for neighbor in coupling.neighbors(partner_physical):
                            occupant = layout.logical(neighbor)
                            if occupant is not None and _finishing_soon(occupant):
                                wait_budget[logical] -= 1
                                return False

            def score(physical: int):
                partner_cost = sum(distance[physical][p] for p in partners)
                readout = (
                    self.backend.calibration.get_readout_error(physical)
                    if self.noise_aware
                    else 0.0
                )
                off_hint = 0 if hints.get(logical) == physical else 1
                return (
                    partner_cost,
                    off_hint,
                    -_free_degree(physical),
                    readout,
                    physical,
                )

            physical = min(free, key=score)
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _finishing_soon(occupant: int) -> bool:
            """Occupant is in its 1Q/measure tail: the wire frees shortly."""
            if remaining_gates[occupant] > 3:
                return False
            return all(
                len(dag.nodes[n].instruction.qubits) == 1
                for n in dag.nodes_on_qubit(occupant)
                if n in unscheduled
            )

        def _map_second(logical: int, partner_physical: int) -> bool:
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            distance = coupling.distance_matrix()
            # Prefer *waiting* over a distant placement when a neighbour of
            # the partner is about to be released — the released wire is a
            # SWAP-free reuse spot (the crux of SR-CaQR, paper Fig. 5).
            if not force_map and wait_budget[logical] > 0:
                best_free = min(distance[partner_physical][p] for p in free)
                if best_free > 1:
                    for neighbor in coupling.neighbors(partner_physical):
                        occupant = layout.logical(neighbor)
                        if occupant is not None and _finishing_soon(occupant):
                            wait_budget[logical] -= 1
                            return False

            def score(physical: int):
                hops = distance[partner_physical][physical]
                if self.noise_aware:
                    readout = self.backend.calibration.get_readout_error(physical)
                    link = (
                        self.backend.calibration.get_cx_error(physical, partner_physical)
                        if coupling.are_adjacent(physical, partner_physical)
                        else 1.0
                    )
                else:
                    readout = link = 0.0
                off_hint = 0 if hints.get(logical) == physical else 1
                return (hops, off_hint, readout + link, physical)

            physical = min(free, key=score)
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _map_gate_qubits(instruction: Instruction) -> bool:
            unmapped = [q for q in instruction.qubits if not layout.is_mapped(q)]
            if len(unmapped) == 2:
                # the qubit with more gates on it is placed first (Step 2)
                first, second = sorted(
                    unmapped, key=lambda q: -remaining_gates[q]
                )
                if not _map_first(first):
                    return False
                return _map_second(second, layout.physical(first))
            if len(unmapped) == 1 and len(instruction.qubits) == 2:
                other = next(
                    q for q in instruction.qubits if q != unmapped[0]
                )
                return _map_second(unmapped[0], layout.physical(other))
            if unmapped:
                return _map_first(unmapped[0])
            return True

        def _lookahead_gates(blocked: List[int]) -> List[int]:
            """Nearest fully-mapped 2Q descendants of the blocked gates."""
            result: List[int] = []
            queue = list(blocked)
            seen = set(queue)
            while queue and len(result) < 20:
                node_id = queue.pop(0)
                for successor in sorted(dag.successors(node_id)):
                    if successor in seen:
                        continue
                    seen.add(successor)
                    instruction = dag.nodes[successor].instruction
                    if (
                        instruction is not None
                        and len(instruction.qubits) == 2
                        and all(layout.is_mapped(q) for q in instruction.qubits)
                    ):
                        result.append(successor)
                    queue.append(successor)
            return result

        last_swap: List[Optional[Tuple[int, int]]] = [None]

        def _insert_swap_toward(blocked: List[int]) -> None:
            """SABRE-style scoring: pick the swap minimising the summed
            error-weighted distance of every blocked gate, plus a damped
            look-ahead term over upcoming mapped gates."""
            nonlocal swap_count
            ahead = _lookahead_gates(blocked)
            candidates: Set[Tuple[int, int]] = set()
            for node_id in blocked:
                for q in dag.nodes[node_id].instruction.qubits:
                    physical = layout.physical(q)
                    for neighbor in coupling.neighbors(physical):
                        candidates.add(tuple(sorted((physical, neighbor))))
            if len(candidates) > 1:
                candidates.discard(last_swap[0])  # don't undo the last swap

            def _pair_cost(node_id: int, swap: Tuple[int, int]) -> float:
                a, b = swap
                pa, pb = (layout.physical(q) for q in dag.nodes[node_id].instruction.qubits)
                pa = b if pa == a else a if pa == b else pa
                pb = b if pb == a else a if pb == b else pb
                return self._error_distance[pa][pb]

            def _score(swap: Tuple[int, int]) -> float:
                front = sum(_pair_cost(node_id, swap) for node_id in blocked)
                future = sum(_pair_cost(node_id, swap) for node_id in ahead)
                return front / len(blocked) + (
                    0.5 * future / len(ahead) if ahead else 0.0
                )

            if not candidates:
                raise ReuseError("no SWAP candidates for blocked gates")
            stats.count("swap_candidates_scored", len(candidates))
            a, b = min(candidates, key=lambda swap: (_score(swap), swap))
            out.swap(a, b)
            ever_used.update((a, b))
            layout.swap_physical(a, b)
            wire_state[a], wire_state[b] = wire_state[b], wire_state[a]
            last_swap[0] = (a, b)
            swap_count += 1

        # -- main loop -----------------------------------------------------------------

        while unscheduled:
            slack = _slack()
            scheduled_any = False
            mapping_starved = False
            blocked: List[int] = []
            # critical gates first so they grab free wires before delayable
            # ones (and wires reclaimed mid-round serve later gates)
            frontier = sorted(_frontier(), key=lambda n: slack.get(n, 0))
            for node_id in frontier:
                instruction = dag.nodes[node_id].instruction
                if instruction is None or instruction.is_directive():
                    _mark_scheduled(node_id)
                    scheduled_any = True
                    continue
                fully_mapped = all(layout.is_mapped(q) for q in instruction.qubits)
                if not fully_mapped:
                    if slack.get(node_id, 0) > 0 and not force_map:
                        continue  # delay off-critical gates (Step 2)
                    if not _map_gate_qubits(instruction):
                        mapping_starved = True
                        continue  # no free wire yet; retry next round
                if len(instruction.qubits) == 2:
                    pa, pb = (layout.physical(q) for q in instruction.qubits)
                    if not coupling.are_adjacent(pa, pb):
                        blocked.append(node_id)
                        continue
                _emit(node_id)
                scheduled_any = True
            if scheduled_any:
                force_map = False
                continue
            if blocked:
                # bring the blocked frontier one SWAP closer (SABRE scoring)
                _insert_swap_toward(blocked)
                force_map = False
                continue
            if force_map:
                if mapping_starved:
                    raise ReuseError(
                        "device too small: all physical qubits are live and "
                        "no wire can be freed (circuit needs more concurrent "
                        "qubits than the device has)"
                    )
                raise ReuseError("SR-CaQR made no progress (internal error)")
            force_map = True

        stats.count("swaps_inserted", swap_count)
        return SRCaQRResult(
            circuit=out,
            swap_count=swap_count,
            reuse_count=reuse_count,
            qubits_used=len(ever_used),
            depth=out.depth(),
            duration_dt=circuit_duration_dt(out, self.backend.calibration),
        )
