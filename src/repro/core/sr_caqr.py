"""SR-CaQR: dynamic-circuit-aware mapping targeting SWAP reduction
(paper Section 3.3).

The router compiles the logical circuit layer by layer, mapping logical
qubits to physical qubits *lazily*:

* frontier gates **on the critical path** are scheduled immediately —
  their unmapped qubits get placed using the paper's Step-2 heuristics
  (qubit with more gates first; best-connected / lowest-error free
  physical qubit; partner placed at minimum distance, ties broken by
  readout / CNOT error);
* frontier gates **off the critical path** are *delayed*, so by the time
  their qubits must be placed, earlier logical qubits may have finished
  and released their physical qubits back into ``physicalList`` — placing
  a fresh logical qubit onto a released wire is a qubit reuse, and the
  broader choice of placements is what removes SWAPs;
* blocked two-qubit gates get SWAPs inserted one at a time along an
  error-aware shortest path (Step 3's "heuristic ... with the
  consideration of error variability").

A physical qubit is only released for reuse when its logical qubit's final
operation was a measurement (the paper's setting: reused qubits are
measured first — their outcome is still needed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import ReuseError
from repro.hardware.backends import Backend
from repro.transpiler.basis import decompose_to_two_qubit
from repro.transpiler.layout import Layout
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["SRCaQRResult", "SRCaQR"]

_FRESH = ("fresh", None)
_DIRTY = ("dirty", None)


@dataclass
class SRCaQRResult:
    """Output of the SR-CaQR router.

    Attributes:
        circuit: physical circuit (indices are device qubits) with SWAPs
            and the reuse reset operations inserted.
        swap_count: SWAPs inserted.
        reuse_count: times a logical qubit was placed on a released wire.
        qubits_used: distinct physical qubits that carried operations.
        depth / duration_dt: metrics of the physical circuit.
    """

    circuit: QuantumCircuit
    swap_count: int
    reuse_count: int
    qubits_used: int
    depth: int
    duration_dt: int


class SRCaQR:
    """Swap-reduction CaQR for regular applications.

    Args:
        backend: target device (coupling + calibration).
        noise_aware: weight SWAP paths and placement by calibration errors
            (when off, plain hop distance is used — the ablation knob).
        reset_style: reset idiom used at reuse points.
    """

    def __init__(
        self,
        backend: Backend,
        noise_aware: bool = True,
        reset_style: str = "cif",
    ):
        self.backend = backend
        self.noise_aware = noise_aware
        self.reset_style = reset_style
        self._error_graph = self._build_error_graph()
        # error-weighted all-pairs distances for SWAP scoring; on a
        # noise-blind run these equal hop distances
        self._error_distance: Dict[int, Dict[int, float]] = dict(
            nx.all_pairs_dijkstra_path_length(self._error_graph, weight="weight")
        )

    def _build_error_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.backend.num_qubits))
        for a, b in self.backend.coupling.edges:
            if self.noise_aware:
                error = self.backend.calibration.get_cx_error(a, b)
                weight = -math.log(max(1.0 - error, 1e-9))
            else:
                weight = 1.0
            graph.add_edge(a, b, weight=weight)
        return graph

    # -- the main pass -------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        trials: int = 3,
        qs_assist: bool = True,
        objective: str = "swaps",
    ) -> SRCaQRResult:
        """Compile *circuit* onto the backend with lazy mapping and reuse.

        The circuit may be *wider* than the device: reuse frees wires, so
        only the number of concurrently-live logical qubits is bounded
        (a :class:`~repro.exceptions.ReuseError` is raised if the free
        pool is ever exhausted).

        Several placement-hint seeds are tried (*trials*), and — mirroring
        SR-CaQR-commuting's Step 1 — with *qs_assist* the router also
        evaluates a few QS-CaQR pre-transformed versions of the circuit
        (imposed reuse dependencies lower mapping congestion on dense
        circuits).  Under the default *objective* the compilation with the
        fewest SWAPs (ties: shortest duration) wins; ``objective="esp"``
        instead maximises the estimated success probability against the
        backend calibration (the paper's fidelity metric — "improved
        estimated success probability").
        """
        if objective not in ("swaps", "esp"):
            raise ReuseError(f"unknown SR objective {objective!r}")
        candidates = [circuit]
        if qs_assist and not circuit.has_dynamic_operations():
            from repro.core.qs_caqr import QSCaQR

            sweep = QSCaQR(reset_style=self.reset_style).sweep(circuit)[1:]
            if len(sweep) > 3:
                step = len(sweep) / 3.0
                sweep = [sweep[int(i * step)] for i in range(3)]
            candidates.extend(point.circuit for point in sweep)

        def _key(result: SRCaQRResult):
            if objective == "esp":
                from repro.sim.metrics import estimated_success_probability

                return (
                    -estimated_success_probability(
                        result.circuit, self.backend.calibration
                    ),
                )
            return (result.swap_count, result.duration_dt)

        seeds = [None] + [17 + 24 * t for t in range(max(trials - 1, 1))]
        best: Optional[SRCaQRResult] = None
        best_key = None
        for candidate in candidates:
            for seed in seeds:
                result = self._run_once(candidate, hint_seed=seed)
                key = _key(result)
                if best_key is None or key < best_key:
                    best, best_key = result, key
        assert best is not None
        return best

    def _run_once(
        self, circuit: QuantumCircuit, hint_seed: Optional[int]
    ) -> SRCaQRResult:
        flat = decompose_to_two_qubit(circuit)
        dag = DAGCircuit.from_circuit(flat)
        coupling = self.backend.coupling

        # Placement hints (the paper's "benefit future gates by lookahead"):
        # a SABRE layout search suggests where each logical qubit would sit
        # in a good global placement; lazy mapping prefers the hinted spot
        # when it is free, and otherwise falls back to the local heuristics.
        hints: Dict[int, int] = {}
        if hint_seed is not None and flat.num_qubits <= coupling.num_qubits:
            from repro.transpiler.sabre import sabre_layout

            try:
                hint_layout = sabre_layout(
                    flat, coupling, seed=hint_seed, iterations=2, trials=2
                )
                hints = hint_layout.as_dict()
            except Exception:
                hints = {}

        in_degree: Dict[int, int] = {n: dag.in_degree(n) for n in dag.nodes}
        unscheduled: Set[int] = set(dag.nodes)
        remaining_gates: Dict[int, int] = {q: 0 for q in range(flat.num_qubits)}
        last_op: Dict[int, Optional[Instruction]] = {
            q: None for q in range(flat.num_qubits)
        }
        for node_id in dag.op_nodes(include_directives=True):
            instruction = dag.nodes[node_id].instruction
            for q in instruction.qubits:
                remaining_gates[q] += 1

        layout = Layout(flat.num_qubits, self.backend.num_qubits)
        out = QuantumCircuit(self.backend.num_qubits, flat.num_clbits, flat.name)
        wire_state: Dict[int, Tuple[str, Optional[int]]] = {
            p: _FRESH for p in range(self.backend.num_qubits)
        }
        ever_used: Set[int] = set()
        swap_count = 0
        reuse_count = 0
        force_map = False
        # bounded patience per logical qubit when waiting for a wire to free
        wait_budget: Dict[int, int] = {q: 16 for q in range(flat.num_qubits)}

        # -- inner helpers ---------------------------------------------------------

        def _slack() -> Dict[int, int]:
            """Unit-weight slack over the unscheduled sub-DAG."""
            order = [n for n in dag.topological_order() if n in unscheduled]
            asap: Dict[int, int] = {}
            for node_id in order:
                start = max(
                    (
                        asap[p]
                        for p in dag.predecessors(node_id)
                        if p in unscheduled
                    ),
                    default=0,
                )
                asap[node_id] = start + 1
            horizon = max(asap.values(), default=0)
            alap: Dict[int, int] = {}
            for node_id in reversed(order):
                successors = [s for s in dag.successors(node_id) if s in unscheduled]
                if not successors:
                    alap[node_id] = horizon
                else:
                    alap[node_id] = min(alap[s] - 1 for s in successors)
            return {n: alap[n] - asap[n] for n in order}

        def _frontier() -> List[int]:
            return [n for n in dag._order if n in unscheduled and in_degree[n] == 0]

        def _mark_scheduled(node_id: int) -> None:
            unscheduled.discard(node_id)
            instruction = dag.nodes[node_id].instruction
            for successor in dag.successors(node_id):
                in_degree[successor] -= 1
            if instruction is None:
                return
            for q in instruction.qubits:
                remaining_gates[q] -= 1
                last_op[q] = instruction
            _reclaim()

        def _reclaim() -> None:
            """Release finished logical qubits back to the physical pool."""
            for q in range(flat.num_qubits):
                if remaining_gates[q] == 0 and layout.is_mapped(q):
                    final = last_op[q]
                    physical = layout.release(q)
                    if final is not None and final.name == "measure":
                        wire_state[physical] = ("measured", final.clbits[0])
                    else:
                        wire_state[physical] = _DIRTY

        def _emit(node_id: int) -> None:
            instruction = dag.nodes[node_id].instruction
            mapped = instruction.remapped(lambda q: layout.physical(q))
            out.append(mapped)
            ever_used.update(mapped.qubits)
            _mark_scheduled(node_id)

        def _prepare_wire(physical: int) -> None:
            """Reset a reused wire before its new logical qubit starts."""
            nonlocal reuse_count
            state, clbit = wire_state[physical]
            if state == "fresh":
                return
            reuse_count += 1
            if state == "dirty":
                clbit = out.num_clbits
                out.add_clbits(1)
                out.measure(physical, clbit)
            if self.reset_style == "cif":
                out.x(physical).c_if(clbit, 1)
            else:
                out.reset(physical)
            wire_state[physical] = _FRESH

        def _future_partners(logical: int) -> List[int]:
            """Physical positions of already-mapped future gate partners."""
            partners: List[int] = []
            for node_id in dag.nodes_on_qubit(logical):
                if node_id not in unscheduled:
                    continue
                instruction = dag.nodes[node_id].instruction
                for other in instruction.qubits:
                    if other != logical and layout.is_mapped(other):
                        partners.append(layout.physical(other))
            return partners

        def _free_degree(physical: int) -> int:
            return sum(
                1
                for neighbor in coupling.neighbors(physical)
                if layout.logical(neighbor) is None
            )

        def _map_first(logical: int) -> bool:
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            partners = _future_partners(logical)
            distance = coupling.distance_matrix()
            # wait for an imminently-freed wire next to a mapped partner
            # rather than settling for a distant placement (paper Fig. 5)
            if partners and not force_map and wait_budget[logical] > 0:
                best_free = min(
                    distance[p][f] for p in partners for f in free
                )
                if best_free > 1:
                    for partner_physical in partners:
                        for neighbor in coupling.neighbors(partner_physical):
                            occupant = layout.logical(neighbor)
                            if occupant is not None and _finishing_soon(occupant):
                                wait_budget[logical] -= 1
                                return False

            def score(physical: int):
                partner_cost = sum(distance[physical][p] for p in partners)
                readout = (
                    self.backend.calibration.get_readout_error(physical)
                    if self.noise_aware
                    else 0.0
                )
                off_hint = 0 if hints.get(logical) == physical else 1
                return (
                    partner_cost,
                    off_hint,
                    -_free_degree(physical),
                    readout,
                    physical,
                )

            physical = min(free, key=score)
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _finishing_soon(occupant: int) -> bool:
            """Occupant is in its 1Q/measure tail: the wire frees shortly."""
            if remaining_gates[occupant] > 3:
                return False
            return all(
                len(dag.nodes[n].instruction.qubits) == 1
                for n in dag.nodes_on_qubit(occupant)
                if n in unscheduled
            )

        def _map_second(logical: int, partner_physical: int) -> bool:
            free = layout.free_physical()
            if not free:
                return False  # pool exhausted; retry after wires are freed
            distance = coupling.distance_matrix()
            # Prefer *waiting* over a distant placement when a neighbour of
            # the partner is about to be released — the released wire is a
            # SWAP-free reuse spot (the crux of SR-CaQR, paper Fig. 5).
            if not force_map and wait_budget[logical] > 0:
                best_free = min(distance[partner_physical][p] for p in free)
                if best_free > 1:
                    for neighbor in coupling.neighbors(partner_physical):
                        occupant = layout.logical(neighbor)
                        if occupant is not None and _finishing_soon(occupant):
                            wait_budget[logical] -= 1
                            return False

            def score(physical: int):
                hops = distance[partner_physical][physical]
                if self.noise_aware:
                    readout = self.backend.calibration.get_readout_error(physical)
                    link = (
                        self.backend.calibration.get_cx_error(physical, partner_physical)
                        if coupling.are_adjacent(physical, partner_physical)
                        else 1.0
                    )
                else:
                    readout = link = 0.0
                off_hint = 0 if hints.get(logical) == physical else 1
                return (hops, off_hint, readout + link, physical)

            physical = min(free, key=score)
            _prepare_wire(physical)
            layout.assign(logical, physical)
            return True

        def _map_gate_qubits(instruction: Instruction) -> bool:
            unmapped = [q for q in instruction.qubits if not layout.is_mapped(q)]
            if len(unmapped) == 2:
                # the qubit with more gates on it is placed first (Step 2)
                first, second = sorted(
                    unmapped, key=lambda q: -remaining_gates[q]
                )
                if not _map_first(first):
                    return False
                return _map_second(second, layout.physical(first))
            if len(unmapped) == 1 and len(instruction.qubits) == 2:
                other = next(
                    q for q in instruction.qubits if q != unmapped[0]
                )
                return _map_second(unmapped[0], layout.physical(other))
            if unmapped:
                return _map_first(unmapped[0])
            return True

        def _lookahead_gates(blocked: List[int]) -> List[int]:
            """Nearest fully-mapped 2Q descendants of the blocked gates."""
            result: List[int] = []
            queue = list(blocked)
            seen = set(queue)
            while queue and len(result) < 20:
                node_id = queue.pop(0)
                for successor in sorted(dag.successors(node_id)):
                    if successor in seen:
                        continue
                    seen.add(successor)
                    instruction = dag.nodes[successor].instruction
                    if (
                        instruction is not None
                        and len(instruction.qubits) == 2
                        and all(layout.is_mapped(q) for q in instruction.qubits)
                    ):
                        result.append(successor)
                    queue.append(successor)
            return result

        last_swap: List[Optional[Tuple[int, int]]] = [None]

        def _insert_swap_toward(blocked: List[int]) -> None:
            """SABRE-style scoring: pick the swap minimising the summed
            error-weighted distance of every blocked gate, plus a damped
            look-ahead term over upcoming mapped gates."""
            nonlocal swap_count
            ahead = _lookahead_gates(blocked)
            candidates: Set[Tuple[int, int]] = set()
            for node_id in blocked:
                for q in dag.nodes[node_id].instruction.qubits:
                    physical = layout.physical(q)
                    for neighbor in coupling.neighbors(physical):
                        candidates.add(tuple(sorted((physical, neighbor))))
            if len(candidates) > 1:
                candidates.discard(last_swap[0])  # don't undo the last swap

            def _pair_cost(node_id: int, swap: Tuple[int, int]) -> float:
                a, b = swap
                pa, pb = (layout.physical(q) for q in dag.nodes[node_id].instruction.qubits)
                pa = b if pa == a else a if pa == b else pa
                pb = b if pb == a else a if pb == b else pb
                return self._error_distance[pa][pb]

            def _score(swap: Tuple[int, int]) -> float:
                front = sum(_pair_cost(node_id, swap) for node_id in blocked)
                future = sum(_pair_cost(node_id, swap) for node_id in ahead)
                return front / len(blocked) + (
                    0.5 * future / len(ahead) if ahead else 0.0
                )

            if not candidates:
                raise ReuseError("no SWAP candidates for blocked gates")
            a, b = min(candidates, key=lambda swap: (_score(swap), swap))
            out.swap(a, b)
            ever_used.update((a, b))
            layout.swap_physical(a, b)
            wire_state[a], wire_state[b] = wire_state[b], wire_state[a]
            last_swap[0] = (a, b)
            swap_count += 1

        # -- main loop -----------------------------------------------------------------

        while unscheduled:
            slack = _slack()
            scheduled_any = False
            mapping_starved = False
            blocked: List[int] = []
            # critical gates first so they grab free wires before delayable
            # ones (and wires reclaimed mid-round serve later gates)
            frontier = sorted(_frontier(), key=lambda n: slack.get(n, 0))
            for node_id in frontier:
                instruction = dag.nodes[node_id].instruction
                if instruction is None or instruction.is_directive():
                    _mark_scheduled(node_id)
                    scheduled_any = True
                    continue
                fully_mapped = all(layout.is_mapped(q) for q in instruction.qubits)
                if not fully_mapped:
                    if slack.get(node_id, 0) > 0 and not force_map:
                        continue  # delay off-critical gates (Step 2)
                    if not _map_gate_qubits(instruction):
                        mapping_starved = True
                        continue  # no free wire yet; retry next round
                if len(instruction.qubits) == 2:
                    pa, pb = (layout.physical(q) for q in instruction.qubits)
                    if not coupling.are_adjacent(pa, pb):
                        blocked.append(node_id)
                        continue
                _emit(node_id)
                scheduled_any = True
            if scheduled_any:
                force_map = False
                continue
            if blocked:
                # bring the blocked frontier one SWAP closer (SABRE scoring)
                _insert_swap_toward(blocked)
                force_map = False
                continue
            if force_map:
                if mapping_starved:
                    raise ReuseError(
                        "device too small: all physical qubits are live and "
                        "no wire can be freed (circuit needs more concurrent "
                        "qubits than the device has)"
                    )
                raise ReuseError("SR-CaQR made no progress (internal error)")
            force_map = True

        return SRCaQRResult(
            circuit=out,
            swap_count=swap_count,
            reuse_count=reuse_count,
            qubits_used=len(ever_used),
            depth=out.depth(),
            duration_dt=circuit_duration_dt(out, self.backend.calibration),
        )
