"""Event-driven deep reuse for *regular* (non-commuting) circuits.

The pair-greedy (:class:`repro.core.qs_caqr.QSCaQR`) reduces one wire at a
time, re-analysing after every merge.  This module reaches the same goal
in one sweep using the lifetime principle of :mod:`repro.core.lifetime`,
specialised to a fixed dependency DAG:

* choose a topological order of the gates that greedily minimises the
  number of *live* qubits (a qubit is live from its first to its last
  gate in the chosen order);
* emit the gates in that order onto physical wires, seating each newly
  started qubit on a freed wire whenever one exists — every such seat is
  a qubit reuse, realised with the paper's measure + conditional-X reset.

Validity is by construction: a wire is only freed once its occupant's
gates are all emitted, so the seated qubit's operations all come later
(Condition 2), and a shared gate between occupant and seated qubit is
impossible (it would have kept the occupant alive — Condition 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.dag.dagcircuit import DAGCircuit
from repro.exceptions import ReuseError

__all__ = ["LifetimeRegularResult", "greedy_gate_order", "lifetime_compile_regular"]


@dataclass
class LifetimeRegularResult:
    """Output of :func:`lifetime_compile_regular`.

    Attributes:
        circuit: the transformed dynamic circuit.
        qubits: wires used (the compiled width).
        reuse_count: number of wire seats (reuses) performed.
        peak_live: maximum simultaneously-live logical qubits — equals
            ``qubits`` (the construction is tight).
    """

    circuit: QuantumCircuit
    qubits: int
    reuse_count: int
    peak_live: int


def greedy_gate_order(circuit: QuantumCircuit) -> List[int]:
    """Topological gate order greedily minimising live qubits.

    Returns indices into ``circuit.data``.  Scoring per candidate gate:
    fewest newly-introduced qubits first, most retired qubits second —
    the regular-circuit analogue of the vertex-separation greedy.
    """
    dag = DAGCircuit.from_circuit(circuit)
    in_degree = {node: dag.in_degree(node) for node in dag.nodes}
    remaining: Dict[int, int] = {}
    for node in dag.op_nodes(include_directives=True):
        for q in dag.nodes[node].instruction.qubits:
            remaining[q] = remaining.get(q, 0) + 1
    live: Set[int] = set()
    frontier = [node for node, degree in in_degree.items() if degree == 0]
    order: List[int] = []

    while frontier:
        def _score(node: int):
            instruction = dag.nodes[node].instruction
            introduces = sum(1 for q in instruction.qubits if q not in live)
            retires = sum(
                1 for q in instruction.qubits if remaining[q] == 1
            )
            # prefer continuing work on already-live qubits over opening
            # fresh ones — this is what lets star circuits retire each
            # satellite before the next one starts
            touches_live = sum(1 for q in instruction.qubits if q in live)
            return (introduces - retires, introduces, -touches_live, node)

        node = min(frontier, key=_score)
        frontier.remove(node)
        order.append(node)
        instruction = dag.nodes[node].instruction
        for q in instruction.qubits:
            live.add(q)
            remaining[q] -= 1
            if remaining[q] == 0:
                live.discard(q)
        for successor in dag.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                frontier.append(successor)
    if len(order) != len(circuit.data):
        raise ReuseError("gate ordering did not cover the circuit (cycle?)")
    return order


def lifetime_compile_regular(
    circuit: QuantumCircuit,
    reset_style: str = "cif",
    order: Optional[List[int]] = None,
) -> LifetimeRegularResult:
    """Compile *circuit* to its lifetime-minimal width in one sweep.

    Args:
        circuit: input logical circuit (no prior dynamic reuse required —
            existing measurements are reused as the reset's source).
        reset_style: ``"cif"`` or ``"builtin"``.
        order: explicit gate order (indices into ``circuit.data``);
            defaults to :func:`greedy_gate_order`.
    """
    if reset_style not in ("cif", "builtin"):
        raise ReuseError(f"unknown reset style {reset_style!r}")
    gate_order = order if order is not None else greedy_gate_order(circuit)
    if sorted(gate_order) != list(range(len(circuit.data))):
        raise ReuseError("order must be a permutation of the instruction indices")

    remaining: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for instruction in circuit.data:
        for q in instruction.qubits:
            remaining[q] += 1

    # first pass: compute the peak width so the output circuit can be sized
    live: Set[int] = set()
    peak = 0
    for index in gate_order:
        for q in circuit.data[index].qubits:
            live.add(q)
        peak = max(peak, len(live))
        for q in circuit.data[index].qubits:
            remaining[q] -= 1
            if remaining[q] == 0:
                live.discard(q)
    peak = max(peak, 1)

    # second pass: emit
    for instruction in circuit.data:
        for q in instruction.qubits:
            remaining[q] += 1
    out = QuantumCircuit(peak, circuit.num_clbits, circuit.name)
    wire_of: Dict[int, int] = {}
    fresh_wires = list(range(peak))
    # freed wires carry the state "resettable via clbit c" or "dirty"
    freed: List[Tuple[int, Optional[int]]] = []  # (wire, measure clbit or None)
    reuse_count = 0
    last_instruction_on_qubit: Dict[int, Instruction] = {}

    def _seat(q: int) -> None:
        nonlocal reuse_count
        if freed:
            wire, clbit = freed.pop(0)
            reuse_count += 1
            if clbit is None:
                clbit = out.num_clbits
                out.add_clbits(1)
                out.measure(wire, clbit)
            if reset_style == "cif":
                out.x(wire).c_if(clbit, 1)
            else:
                out.reset(wire)
        else:
            if not fresh_wires:
                raise ReuseError("wire accounting underflow (internal error)")
            wire = fresh_wires.pop(0)
        wire_of[q] = wire

    for index in gate_order:
        instruction = circuit.data[index]
        for q in instruction.qubits:
            if q not in wire_of:
                _seat(q)
        out.append(instruction.remapped(lambda q: wire_of[q]))
        for q in instruction.qubits:
            last_instruction_on_qubit[q] = instruction
            remaining[q] -= 1
            if remaining[q] == 0:
                wire = wire_of.pop(q)
                final = last_instruction_on_qubit[q]
                clbit = (
                    final.clbits[0]
                    if final.name == "measure" and final.condition is None
                    else None
                )
                freed.append((wire, clbit))
    return LifetimeRegularResult(
        circuit=out,
        qubits=out.num_used_qubits(),
        reuse_count=reuse_count,
        peak_live=peak,
    )
