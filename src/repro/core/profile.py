"""Structural reuse profiling of interaction graphs.

Quantifies *why* an application is (or is not) reuse-friendly before any
compilation happens — the paper's intuition ("the power-law graph contains
more vertices with low degrees ... the large degree node dominates the
overall depth") turned into measurable quantities:

* the **coloring bound** (paper's optimistic minimum, Fig. 10),
* the **lifetime floor** (the vertex-separation-based width the scheduler
  can actually realise — see :mod:`repro.core.lifetime`),
* **hub dominance** and degree-tail statistics, and
* the paper's depth lower bound (the maximum degree: that qubit's gates
  serialise).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.lifetime import lifetime_minimum_qubits
from repro.core.qs_commuting import minimum_qubits_by_coloring

__all__ = ["ReuseProfile", "profile_graph", "profile_circuit"]


@dataclass(frozen=True)
class ReuseProfile:
    """Structural reuse indicators of one interaction graph.

    Attributes:
        num_qubits / num_edges: size of the interaction graph.
        max_degree: depth lower bound for commuting circuits (the hub's
            gates serialise).
        median_degree: degree of the typical qubit.
        hub_dominance: fraction of all edge endpoints incident to the top
            10 % highest-degree vertices (1.0 = perfectly hub-concentrated).
        coloring_bound: chromatic (optimistic) minimum width — a lower
            bound that lifetimes may not achieve (see DESIGN.md).
        lifetime_floor: width the lifetime scheduler realises — the
            practical minimum for commuting circuits.
        max_saving: ``1 - lifetime_floor / num_qubits``.
    """

    num_qubits: int
    num_edges: int
    max_degree: int
    median_degree: float
    hub_dominance: float
    coloring_bound: int
    lifetime_floor: int

    @property
    def max_saving(self) -> float:
        if self.num_qubits == 0:
            return 0.0
        return 1.0 - self.lifetime_floor / self.num_qubits

    def summary(self) -> str:
        """One-paragraph human-readable interpretation."""
        return (
            f"{self.num_qubits} qubits, {self.num_edges} interactions; "
            f"max degree {self.max_degree} (depth lower bound), "
            f"median degree {self.median_degree:g}, "
            f"hub dominance {self.hub_dominance:.0%}. "
            f"Coloring bound {self.coloring_bound}, achievable floor "
            f"{self.lifetime_floor} ({self.max_saving:.0%} saving)."
        )


def profile_graph(graph: nx.Graph) -> ReuseProfile:
    """Profile an interaction/problem graph (commuting semantics)."""
    n = graph.number_of_nodes()
    if n == 0:
        return ReuseProfile(0, 0, 0, 0.0, 0.0, 0, 0)
    degrees = sorted((d for _v, d in graph.degree()), reverse=True)
    hubs = max(1, n // 10)
    endpoint_total = sum(degrees) or 1
    hub_dominance = sum(degrees[:hubs]) / endpoint_total
    middle = degrees[len(degrees) // 2]
    return ReuseProfile(
        num_qubits=n,
        num_edges=graph.number_of_edges(),
        max_degree=degrees[0],
        median_degree=float(middle),
        hub_dominance=hub_dominance,
        coloring_bound=minimum_qubits_by_coloring(graph),
        lifetime_floor=lifetime_minimum_qubits(graph) if graph.number_of_edges() else 1,
    )


def profile_circuit(circuit: QuantumCircuit) -> ReuseProfile:
    """Profile a circuit through its qubit interaction graph.

    Note: for *regular* circuits the lifetime floor is optimistic (gate
    dependencies constrain reuse further than the interaction graph does);
    use :func:`repro.core.tradeoff.assess_reuse_benefit` for the exact
    regular-circuit answer.
    """
    graph = circuit.interaction_graph()
    used = circuit.used_qubits()
    if used and len(used) != circuit.num_qubits:
        graph = graph.subgraph(used)
    # lifetime analysis expects vertices 0..n-1: relabel in sorted order
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return profile_graph(graph)
