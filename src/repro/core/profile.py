"""Structural reuse profiling of interaction graphs, plus runtime counters.

Quantifies *why* an application is (or is not) reuse-friendly before any
compilation happens — the paper's intuition ("the power-law graph contains
more vertices with low degrees ... the large degree node dominates the
overall depth") turned into measurable quantities:

* the **coloring bound** (paper's optimistic minimum, Fig. 10),
* the **lifetime floor** (the vertex-separation-based width the scheduler
  can actually realise — see :mod:`repro.core.lifetime`),
* **hub dominance** and degree-tail statistics, and
* the paper's depth lower bound (the maximum degree: that qubit's gates
  serialise).

It also hosts :class:`ReuseEvalStats`, the counter/timer sink the
incremental evaluation engine (see :mod:`repro.core.session` and
:class:`repro.core.evaluate.PairScorer`) reports into, so benchmarks can
print cache hit-rates and per-step evaluation time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.lifetime import lifetime_minimum_qubits
from repro.core.qs_commuting import minimum_qubits_by_coloring

__all__ = [
    "ReuseProfile",
    "profile_graph",
    "profile_circuit",
    "ReuseEvalStats",
]


@dataclass(frozen=True)
class ReuseProfile:
    """Structural reuse indicators of one interaction graph.

    Attributes:
        num_qubits / num_edges: size of the interaction graph.
        max_degree: depth lower bound for commuting circuits (the hub's
            gates serialise).
        median_degree: degree of the typical qubit.
        hub_dominance: fraction of all edge endpoints incident to the top
            10 % highest-degree vertices (1.0 = perfectly hub-concentrated).
        coloring_bound: chromatic (optimistic) minimum width — a lower
            bound that lifetimes may not achieve (see DESIGN.md).
        lifetime_floor: width the lifetime scheduler realises — the
            practical minimum for commuting circuits.
        max_saving: ``1 - lifetime_floor / num_qubits``.
    """

    num_qubits: int
    num_edges: int
    max_degree: int
    median_degree: float
    hub_dominance: float
    coloring_bound: int
    lifetime_floor: int

    @property
    def max_saving(self) -> float:
        if self.num_qubits == 0:
            return 0.0
        return 1.0 - self.lifetime_floor / self.num_qubits

    def summary(self) -> str:
        """One-paragraph human-readable interpretation."""
        return (
            f"{self.num_qubits} qubits, {self.num_edges} interactions; "
            f"max degree {self.max_degree} (depth lower bound), "
            f"median degree {self.median_degree:g}, "
            f"hub dominance {self.hub_dominance:.0%}. "
            f"Coloring bound {self.coloring_bound}, achievable floor "
            f"{self.lifetime_floor} ({self.max_saving:.0%} saving)."
        )


def profile_graph(graph: nx.Graph) -> ReuseProfile:
    """Profile an interaction/problem graph (commuting semantics)."""
    n = graph.number_of_nodes()
    if n == 0:
        return ReuseProfile(0, 0, 0, 0.0, 0.0, 0, 0)
    degrees = sorted((d for _v, d in graph.degree()), reverse=True)
    hubs = max(1, n // 10)
    endpoint_total = sum(degrees) or 1
    hub_dominance = sum(degrees[:hubs]) / endpoint_total
    middle = degrees[len(degrees) // 2]
    return ReuseProfile(
        num_qubits=n,
        num_edges=graph.number_of_edges(),
        max_degree=degrees[0],
        median_degree=float(middle),
        hub_dominance=hub_dominance,
        coloring_bound=minimum_qubits_by_coloring(graph),
        lifetime_floor=lifetime_minimum_qubits(graph) if graph.number_of_edges() else 1,
    )


def profile_circuit(circuit: QuantumCircuit) -> ReuseProfile:
    """Profile a circuit through its qubit interaction graph.

    Note: for *regular* circuits the lifetime floor is optimistic (gate
    dependencies constrain reuse further than the interaction graph does);
    use :func:`repro.core.tradeoff.assess_reuse_benefit` for the exact
    regular-circuit answer.
    """
    graph = circuit.interaction_graph()
    used = circuit.used_qubits()
    if used and len(used) != circuit.num_qubits:
        graph = graph.subgraph(used)
    # lifetime analysis expects vertices 0..n-1: relabel in sorted order
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return profile_graph(graph)


@dataclass
class ReuseEvalStats:
    """Counters and wall-time buckets for one evaluation-engine run.

    The incremental engine and the parallel scorer report into one of
    these; benchmarks read it back to print cache hit-rate and per-step
    evaluation time.  Counter names the engine uses:

    * ``evaluations`` / ``cache_hits`` — candidate cost lookups that were
      computed vs. served from the memo (cleared when a pair is applied);
    * ``lookahead_evaluations`` — reuse-potential lookaheads computed;
    * ``serial_batches`` / ``parallel_batches`` — scorer batches run
      in-process vs. fanned out to the process pool;
    * ``mask_updates`` — incremental descendants-bitset patches;
    * ``steps`` — greedy reduction steps taken.

    Time buckets (seconds): ``score``, ``lookahead``, ``apply``.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, float] = field(default_factory=dict)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        """Add *seconds* to wall-time bucket *name*."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Context manager timing its block into bucket *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cost lookups served from the memo (0.0 when none)."""
        hits = self.counters.get("cache_hits", 0)
        total = hits + self.counters.get("evaluations", 0)
        return hits / total if total else 0.0

    def per_step_time(self, bucket: str) -> float:
        """Average seconds spent in *bucket* per greedy step."""
        steps = self.counters.get("steps", 0)
        return self.timers.get(bucket, 0.0) / steps if steps else 0.0

    def merge(self, other: "ReuseEvalStats") -> None:
        """Fold *other*'s counters and timers into this instance."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.timers.items():
            self.add_time(name, value)

    def reset(self) -> None:
        """Zero all counters and timers."""
        self.counters.clear()
        self.timers.clear()

    def summary(self) -> str:
        """One-paragraph report for benchmark output."""
        parts = [
            f"{name}={self.counters[name]}" for name in sorted(self.counters)
        ]
        parts.append(f"hit_rate={self.cache_hit_rate:.1%}")
        parts.extend(
            f"{name}_s={self.timers[name]:.3f}" for name in sorted(self.timers)
        )
        return ", ".join(parts)
