"""Exact (provably optimal) qubit reuse via branch-and-bound.

The greedy QS/SR engines pick one reuse pair at a time and never
backtrack, so nothing in the repo can say how far they land from the true
qubit floor.  Brandhofer et al., "Optimal Qubit Reuse for Near-Term
Quantum Computers" (arXiv:2308.00194), formulate the problem exactly;
this module implements that formulation as a branch-and-bound search
over *merge plans* and serves as the ground-truth oracle behind
``tests/property/test_exact_oracle.py`` and the portfolio service's
exact tier.

The search works on an **abstract wire state** instead of materialised
circuits: a state is a tuple of *chains*, each chain the ordered original
qubits that share one physical wire (``(3, 0)`` = "qubit 3 ran, was
measured + reset, then qubit 0's gates replayed on its wire").  Validity
of a candidate merge is decided with the original circuit's interaction
sets and qubit dependency matrix plus a small reachability closure over
the chain-internal measure/reset barriers — no circuit is rebuilt inside
the search, which is what makes exhaustive enumeration affordable:

* **Condition 1** lifts to chains member-wise: no member of the source
  chain may share a gate with a member of the target chain.
* **Condition 2** lifts through the merge graph: each chain adjacency
  ``(a, b)`` acts as a barrier every op of ``a``'s wire precedes and
  every op of ``b``'s wire follows, so "some op on chain Y reaches some
  op on chain X" holds iff an original dependency does, or Y enters a
  barrier whose (transitive) successor barrier exits into X.

Search structure (the ISSUE's checklist):

* **reachability pruning** — only merges valid under Conditions 1 and 2
  in the *current* state are branched on (validity is monotone: a pair
  invalid now can never become valid later);
* **memoisation on the frontier state** — states are interned as a
  canonical multiset of chains with each qubit replaced by its
  *structural equivalence class* (qubits whose interaction sets and
  dependency rows coincide are interchangeable: swapping them is an
  automorphism of the validity structure, so isomorphic states have
  isomorphic subtrees).  Wire labels and symmetric-qubit identities
  both collapse, which is what keeps sparse circuits — many independent
  qubits, factorially many literal states — tractable;
* **bounding** — applying a merge only ever shrinks the valid-pair
  relation, so the maximum bipartite matching over the current relation
  (:func:`~repro.core.matching.max_bipartite_matching_size`) bounds the
  merges any descendant plan can still perform.  Subtrees that cannot
  *beat* the incumbent width are cut; subtrees that can only *tie* it
  are kept until ``max_tie_plans`` candidate plans exist, preserving the
  depth tie-break;
* **anytime budget** — ``max_nodes`` / ``time_budget`` abort the search
  and return the best plan found so far with ``optimal=False``.

The winning plan is a list of :class:`~repro.core.conditions.ReusePair`
in the same per-step wire labelling the greedy engines emit, so
:func:`~repro.core.transform.apply_reuse_chain` materialises it (with
full per-pair validation as a runtime soundness check on the abstract
model).
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReusePair
from repro.core.matching import max_bipartite_matching_size
from repro.core.transform import apply_reuse_chain, apply_reuse_pair
from repro.dag.dagcircuit import DAGCircuit
from repro.dag.reachability import qubit_dependency_matrix
from repro.exceptions import ReuseError
from repro.transpiler.scheduling import circuit_duration_dt

__all__ = ["ExactReuseResult", "ExactReuse", "exact_minimum_qubits"]

Chain = Tuple[int, ...]
State = Tuple[Chain, ...]


@dataclass
class ExactReuseResult:
    """Outcome of one exact-reuse search.

    Attributes:
        circuit: the materialised optimal-width circuit.
        qubits: its width.  When ``optimal`` this is the true minimum
            over *every* legal sequence of reuse pairs.
        depth: logical depth of ``circuit`` (the tie-break: among the
            explored minimum-width plans, the shallowest materialisation
            wins — best-effort once ``max_tie_plans`` is hit).
        pairs: the winning merge plan, per-step wire labels exactly as
            the greedy engines emit them (``apply_reuse_chain``-ready).
        optimal: ``True`` when the search ran to completion; ``False``
            when a node/time budget cut it short, in which case
            ``qubits`` is only an upper bound (best plan found so far).
        nodes_expanded: states the branch-and-bound actually visited.
        elapsed: wall-clock seconds spent in :meth:`ExactReuse.run`.
    """

    circuit: QuantumCircuit
    qubits: int
    depth: int
    pairs: List[ReusePair] = field(default_factory=list)
    optimal: bool = True
    nodes_expanded: int = 0
    elapsed: float = 0.0
    duration_dt_cached: Optional[int] = field(default=None, repr=False)

    @property
    def duration_dt(self) -> int:
        if self.duration_dt_cached is None:
            self.duration_dt_cached = circuit_duration_dt(self.circuit)
        return self.duration_dt_cached


class _Budget(Exception):
    """Internal unwind signal: the anytime budget ran out."""


class ExactReuse:
    """Branch-and-bound exact qubit-reuse solver.

    Args:
        reset_style: reuse reset idiom for the materialised circuit
            (``"cif"`` or ``"builtin"``), same semantics as the greedy
            engines.
        max_nodes: anytime node budget — states visited before the
            search gives up and reports best-so-far (``optimal=False``).
            ``None`` removes the cap.  The default comfortably covers
            every circuit the oracle harness throws at it (≤ 8 qubits
            visit at most a few hundred thousand chain-partitions even
            with no pruning at all).
        time_budget: optional wall-clock budget in seconds (checked per
            expanded node).  Prefer ``max_nodes`` when determinism of
            the ``optimal`` flag matters.
        max_tie_plans: how many distinct minimum-width plans to keep for
            the depth tie-break.  Past this many, subtrees that can only
            tie the incumbent width are pruned, which bounds the search
            on merge-symmetric circuits; the width answer stays exact,
            only the tie-break becomes best-effort.
    """

    def __init__(
        self,
        reset_style: str = "cif",
        max_nodes: Optional[int] = 200_000,
        time_budget: Optional[float] = None,
        max_tie_plans: int = 16,
    ):
        if reset_style not in ("cif", "builtin"):
            raise ReuseError(f"unknown reset style {reset_style!r}")
        if max_tie_plans < 1:
            raise ReuseError("max_tie_plans must be at least 1")
        self.reset_style = reset_style
        self.max_nodes = max_nodes
        self.time_budget = time_budget
        self.max_tie_plans = max_tie_plans

    # -- abstract-state machinery ----------------------------------------------

    def _prepare(self, circuit: QuantumCircuit) -> None:
        self._interacts: Dict[int, Set[int]] = {
            q: set() for q in range(circuit.num_qubits)
        }
        for instruction in circuit.data:
            if len(instruction.qubits) < 2:
                continue
            for a in instruction.qubits:
                for b in instruction.qubits:
                    if a != b:
                        self._interacts[a].add(b)
        dag = DAGCircuit.from_circuit(circuit)
        self._dep = qubit_dependency_matrix(dag)
        self._used = set(circuit.used_qubits())
        self._class_of = self._symmetry_classes(circuit)

    def _d0(self, a: int, b: int) -> bool:
        return self._dep.get((a, b), False)

    def _symmetry_classes(self, circuit: QuantumCircuit) -> Dict[int, int]:
        """Partition qubits into interchangeable structural classes.

        Qubits *q* and *r* land in one class when transposing them fixes
        the interaction sets and the dependency matrix — then the swap is
        an automorphism of the whole validity structure, and any
        class-respecting relabelling of a search state yields an
        isomorphic state.  Op counts are folded into the signature so the
        depth tie-break stays meaningful across identified states.
        """
        ops = Counter(q for ins in circuit.data for q in ins.qubits)
        qubits = list(range(circuit.num_qubits))

        def swappable(q: int, r: int) -> bool:
            return (
                ops[q] == ops[r]
                and (q in self._used) == (r in self._used)
                and self._interacts[q] - {r} == self._interacts[r] - {q}
                and self._d0(q, r) == self._d0(r, q)
                and all(
                    self._d0(q, s) == self._d0(r, s)
                    and self._d0(s, q) == self._d0(s, r)
                    for s in qubits
                    if s != q and s != r
                )
            )

        class_of: Dict[int, int] = {}
        representatives: List[int] = []
        for q in qubits:
            for index, rep in enumerate(representatives):
                if swappable(q, rep):
                    class_of[q] = index
                    break
            else:
                class_of[q] = len(representatives)
                representatives.append(q)
        return class_of

    def _canonical(self, wires: State) -> FrozenSet[Tuple[Chain, int]]:
        """State key modulo wire order and symmetric-qubit identity."""
        counts = Counter(
            tuple(self._class_of[q] for q in chain) for chain in wires
        )
        return frozenset(counts.items())

    def _reach_matrix(self, wires: State) -> Dict[int, Set[int]]:
        """``reach[y]`` = original qubits some op on *y*'s wire precedes.

        Each chain adjacency ``(a, b)`` is a measure/reset barrier: all
        ops of the wire up to ``a`` precede it, all ops from ``b`` on
        follow it.  Barrier *i* feeds barrier *j* when ``i``'s released
        qubit is (or depends into) ``j``'s retiring qubit; the closure
        of that tiny digraph composes dependencies across chains.
        """
        merges: List[Tuple[int, int]] = []
        for chain in wires:
            for i in range(len(chain) - 1):
                merges.append((chain[i], chain[i + 1]))
        k = len(merges)
        closure: List[int] = [0] * k  # bitmask of reachable barriers, incl. self
        if k:
            adjacency: List[int] = [0] * k
            for i, (_, released) in enumerate(merges):
                for j, (retiring, _) in enumerate(merges):
                    if i != j and (released == retiring or self._d0(released, retiring)):
                        adjacency[i] |= 1 << j
            for i in range(k):
                seen = 1 << i
                stack = [i]
                while stack:
                    frontier = adjacency[stack.pop()] & ~seen
                    while frontier:
                        bit = frontier & -frontier
                        frontier ^= bit
                        seen |= bit
                        stack.append(bit.bit_length() - 1)
                closure[i] = seen
            exits: List[Set[int]] = []
            for _, released in merges:
                out = {q for q in self._used if self._d0(released, q)}
                out.add(released)
                exits.append(out)
        reach: Dict[int, Set[int]] = {}
        for q in self._used:
            row = {x for x in self._used if self._d0(q, x)}
            for i, (retiring, _) in enumerate(merges):
                if q == retiring or self._d0(q, retiring):
                    mask = closure[i]
                    while mask:
                        bit = mask & -mask
                        mask ^= bit
                        row |= exits[bit.bit_length() - 1]
            reach[q] = row
        return reach

    def _valid_merges(
        self, wires: State
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """All currently valid merges ``(source wire, target wire)`` plus
        the per-source target bitmasks for the matching bound."""
        reach = self._reach_matrix(wires)
        active = [
            index
            for index, chain in enumerate(wires)
            if all(q in self._used for q in chain)
        ]
        options: List[Tuple[int, int]] = []
        rows = [0] * len(wires)
        for u in active:
            source_chain = wires[u]
            for v in active:
                if u == v:
                    continue
                target_chain = wires[v]
                if any(
                    b in self._interacts[a]
                    for a in source_chain
                    for b in target_chain
                ):
                    continue
                if any(
                    x in reach[y] for y in target_chain for x in source_chain
                ):
                    continue
                options.append((u, v))
                rows[u] |= 1 << v
        return options, rows

    @staticmethod
    def _merge(wires: State, u: int, v: int) -> State:
        """Apply merge ``(u -> v)`` to the label space: target wire *v*
        is removed, its chain appended to *u*'s (matching the qubit map
        of :func:`~repro.core.transform.apply_reuse_pair`)."""
        merged = wires[u] + wires[v]
        out = [chain for index, chain in enumerate(wires) if index != v]
        out[u - (1 if u > v else 0)] = merged
        return tuple(out)

    # -- the search ------------------------------------------------------------

    def run(self, circuit: QuantumCircuit) -> ExactReuseResult:
        """Find the minimum-width reuse plan for *circuit*."""
        start = time.monotonic()
        deadline = start + self.time_budget if self.time_budget else None
        self._prepare(circuit)
        initial: State = tuple((q,) for q in range(circuit.num_qubits))
        visited: Set[FrozenSet[Tuple[Chain, int]]] = set()
        best_width = len(initial)
        best_plans: List[List[ReusePair]] = [[]]
        nodes = 0

        def search(wires: State, plan: List[ReusePair]) -> None:
            nonlocal best_width, best_plans, nodes
            key = self._canonical(wires)
            if key in visited:
                return
            visited.add(key)
            nodes += 1
            if self.max_nodes is not None and nodes > self.max_nodes:
                raise _Budget()
            if deadline is not None and time.monotonic() > deadline:
                raise _Budget()
            width = len(wires)
            if width < best_width:
                best_width = width
                best_plans = [list(plan)]
            elif width == best_width and plan and len(best_plans) < self.max_tie_plans:
                best_plans.append(list(plan))
            options, rows = self._valid_merges(wires)
            if not options:
                return
            floor = width - max_bipartite_matching_size(rows, width)
            if floor > best_width:
                return
            if floor == best_width and len(best_plans) >= self.max_tie_plans:
                return
            for u, v in options:
                plan.append(ReusePair(u, v))
                search(self._merge(wires, u, v), plan)
                plan.pop()

        optimal = True
        try:
            search(initial, [])
        except _Budget:
            optimal = False

        result = self._materialize_best(circuit, best_plans)
        result.optimal = optimal and result.qubits == best_width
        result.nodes_expanded = nodes
        result.elapsed = time.monotonic() - start
        return result

    def _materialize_best(
        self, circuit: QuantumCircuit, plans: List[List[ReusePair]]
    ) -> ExactReuseResult:
        """Materialise the candidate plans and keep the shallowest.

        ``apply_reuse_chain`` re-validates every pair on the real
        circuit, so the abstract model is checked end to end here; a
        plan the concrete analysis rejects falls back to its longest
        valid prefix (defensive — no known circuit family triggers it).
        """
        best: Optional[Tuple[int, int, QuantumCircuit, List[ReusePair]]] = None
        for plan in plans:
            try:
                materialised = apply_reuse_chain(
                    circuit, plan, reset_style=self.reset_style
                )
                applied = plan
            except ReuseError:
                materialised, applied = self._longest_valid_prefix(circuit, plan)
            key = (materialised.num_qubits, materialised.depth())
            if best is None or key < (best[0], best[1]):
                best = (key[0], key[1], materialised, list(applied))
        assert best is not None  # plans always holds at least the empty plan
        return ExactReuseResult(
            circuit=best[2], qubits=best[0], depth=best[1], pairs=best[3]
        )

    def _longest_valid_prefix(
        self, circuit: QuantumCircuit, plan: List[ReusePair]
    ) -> Tuple[QuantumCircuit, List[ReusePair]]:
        current = circuit
        applied: List[ReusePair] = []
        for pair in plan:
            try:
                current = apply_reuse_pair(
                    current, pair, reset_style=self.reset_style
                ).circuit
            except ReuseError:
                break
            applied.append(pair)
        return current, applied

    def minimum_qubits(self, circuit: QuantumCircuit) -> int:
        """The provably minimal width (upper bound if the budget hits)."""
        return self.run(circuit).qubits


def exact_minimum_qubits(
    circuit: QuantumCircuit, max_nodes: Optional[int] = 200_000
) -> int:
    """Convenience wrapper: the optimal qubit count of *circuit*."""
    return ExactReuse(max_nodes=max_nodes).minimum_qubits(circuit)
