"""Gate-level reuse windows: per-qubit liveness and chain compatibility.

The greedy QS/SR engines and the exact oracle all reason about reuse at
whole-qubit-lifetime granularity: a qubit is "done" only after its last
gate, and candidate pairs are re-derived from a materialised circuit at
every step.  Rovara/Burgholzer/Wille ("Qubit Reuse Beyond Reorder and
Reset", arXiv:2511.22712) and Fang et al. ("Dynamic quantum circuit
compilation", arXiv:2310.11021) recast the problem in terms of *windows*:
the interval of schedule layers during which a qubit actually carries
state.  A qubit whose window closes mid-circuit frees its wire for any
qubit whose window has not yet opened — and that interval view both
exposes *why* a pair is compatible and gives a cheap sound prune that
skips the dependency-matrix scan for most pairs.

This module is the analysis half of the chain subsystem
(:mod:`repro.core.chains` is the search half):

* :class:`ReuseWindow` — one qubit's liveness record: birth/death ASAP
  layers, instruction span, whether it dies *mid-circuit* (before the
  final layer), and whether its last op is a terminal measurement (which
  :func:`~repro.core.transform.apply_reuse_pair` reuses instead of
  inserting a fresh one — the lever the dual-register cost model pulls).
* :class:`WindowAnalysis` — computes every window from the dependency
  DAG, answers the pair-level compatibility question with the interval
  prune in front of the reachability test, and lifts both CaQR validity
  conditions to whole *chains* of merged windows (the same abstract
  wire-state formulation :mod:`repro.core.exact` searches exhaustively,
  exposed here so a beam search can reuse it without materialising
  circuits).

Windows are *measure/reset-aware*: a terminal measurement belongs to the
window (death layer includes it), resets and mid-circuit measurements
are counted per window, and the terminal-measure flag feeds the
trapped-ion cost model where measure/reset time dominates everything
else.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.core.conditions import ReusePair
from repro.core.matching import max_bipartite_matching_size
from repro.dag.dagcircuit import DAGCircuit
from repro.dag.reachability import qubit_dependency_matrix
from repro.exceptions import ReuseError

__all__ = ["ReuseWindow", "WindowAnalysis", "Chain", "State"]

#: One physical wire's occupancy: the ordered original qubits sharing it.
Chain = Tuple[int, ...]
#: An abstract merge state: one chain per live wire.
State = Tuple[Chain, ...]


@dataclass(frozen=True)
class ReuseWindow:
    """Liveness interval of one qubit.

    Attributes:
        qubit: the wire index in the analysed circuit.
        first_index: position in ``circuit.data`` of the qubit's first
            instruction (``-1`` for an idle wire).
        last_index: position of its last instruction (``-1`` if idle).
        birth_layer: ASAP schedule layer of the first instruction.
        death_layer: ASAP layer of the last instruction — the layer the
            wire becomes free for a not-yet-born window.
        num_ops: instructions touching the qubit.
        mid_circuit_ops: measure/reset instructions *before* the last
            instruction (pre-existing dynamic operations on the window).
        terminal_measure: the last instruction is an unconditioned
            ``measure`` on exactly this qubit — a reuse of this window
            as a *source* inserts no new measurement.
        total_layers: ASAP depth of the whole circuit, so the record is
            self-contained for mid-circuit classification.
    """

    qubit: int
    first_index: int
    last_index: int
    birth_layer: int
    death_layer: int
    num_ops: int
    mid_circuit_ops: int
    terminal_measure: bool
    total_layers: int

    @property
    def used(self) -> bool:
        """Whether any instruction touches this wire."""
        return self.num_ops > 0

    @property
    def dies_mid_circuit(self) -> bool:
        """The window closes strictly before the circuit's final layer.

        This is the gate-level refinement the whole subsystem is built
        on: such a wire is idle for ``total_layers - 1 - death_layer``
        layers, room another qubit's window can occupy.
        """
        return self.used and self.death_layer < self.total_layers - 1

    @property
    def span_layers(self) -> int:
        """Layers the window occupies (0 for an idle wire)."""
        return self.death_layer - self.birth_layer + 1 if self.used else 0

    @property
    def tail_slack(self) -> int:
        """Idle layers between this window's death and circuit end."""
        if not self.used:
            return self.total_layers
        return self.total_layers - 1 - self.death_layer


class WindowAnalysis:
    """Window liveness plus pair- and chain-level compatibility.

    One analysis is computed per circuit and shared by every query: the
    interaction sets (Condition 1), the qubit dependency matrix
    (Condition 2), the per-qubit windows, and the structural symmetry
    classes used to intern chain states.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        dag = DAGCircuit.from_circuit(circuit)
        self._interacts: Dict[int, Set[int]] = {
            q: set() for q in range(circuit.num_qubits)
        }
        for instruction in circuit.data:
            if len(instruction.qubits) < 2:
                continue
            for a in instruction.qubits:
                for b in instruction.qubits:
                    if a != b:
                        self._interacts[a].add(b)
        self._dep = qubit_dependency_matrix(dag)
        self._used: Set[int] = set(circuit.used_qubits())
        self.windows: List[ReuseWindow] = self._build_windows(circuit, dag)
        self._class_of = self._symmetry_classes(circuit)

    # -- liveness ---------------------------------------------------------------

    @staticmethod
    def _build_windows(
        circuit: QuantumCircuit, dag: DAGCircuit
    ) -> List[ReuseWindow]:
        node_layer: Dict[int, int] = {}
        total_layers = 0
        for layer_index, layer in enumerate(dag.layers()):
            total_layers = layer_index + 1
            for node_id in layer:
                node_layer[node_id] = layer_index
        indices = circuit.qubit_instruction_indices()
        windows: List[ReuseWindow] = []
        for q in range(circuit.num_qubits):
            data_indices = indices[q]
            nodes = dag.nodes_on_qubit(q)
            if not data_indices:
                windows.append(
                    ReuseWindow(
                        qubit=q,
                        first_index=-1,
                        last_index=-1,
                        birth_layer=-1,
                        death_layer=-1,
                        num_ops=0,
                        mid_circuit_ops=0,
                        terminal_measure=False,
                        total_layers=total_layers,
                    )
                )
                continue
            layers_of_q = [node_layer[n] for n in nodes]
            last = dag.nodes[nodes[-1]].instruction
            terminal_measure = (
                last is not None
                and last.name == "measure"
                and last.qubits == (q,)
                and last.condition is None
            )
            mid_circuit_ops = sum(
                1
                for n in nodes[:-1]
                if dag.nodes[n].instruction is not None
                and dag.nodes[n].instruction.name in ("measure", "reset")
            )
            windows.append(
                ReuseWindow(
                    qubit=q,
                    first_index=data_indices[0],
                    last_index=data_indices[-1],
                    birth_layer=min(layers_of_q),
                    death_layer=max(layers_of_q),
                    num_ops=len(data_indices),
                    mid_circuit_ops=mid_circuit_ops,
                    terminal_measure=terminal_measure,
                    total_layers=total_layers,
                )
            )
        return windows

    def window(self, qubit: int) -> ReuseWindow:
        """The liveness window of *qubit*."""
        if not 0 <= qubit < self.num_qubits:
            raise ReuseError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
            )
        return self.windows[qubit]

    def mid_circuit_windows(self) -> List[ReuseWindow]:
        """Windows that die before the circuit's final layer, by death."""
        dying = [w for w in self.windows if w.dies_mid_circuit]
        return sorted(dying, key=lambda w: (w.death_layer, w.qubit))

    # -- pair-level compatibility ------------------------------------------------

    def _d0(self, a: int, b: int) -> bool:
        return self._dep.get((a, b), False)

    def compatible(self, source: int, target: int) -> bool:
        """Can *target*'s window replay on *source*'s wire after it dies?

        This is exactly the paper's pair validity (Conditions 1 and 2)
        expressed in window terms, with the reachability scan pruned by
        the liveness intervals: when the target window is born strictly
        after the source window dies (``birth_layer > death_layer``), no
        target op can precede a source op — an ASAP layer number is the
        length of the longest dependency chain into the op, so a
        dependency ``t -> s`` forces ``layer(t) < layer(s)``.  Only
        overlapping windows pay for the dependency-matrix lookup.
        """
        if source == target:
            return False
        sw, tw = self.windows[source], self.windows[target]
        if not sw.used or not tw.used:
            return False
        if target in self._interacts[source]:  # Condition 1
            return False
        if tw.birth_layer > sw.death_layer:  # interval prune
            return True
        return not self._d0(target, source)  # Condition 2

    def compatible_pairs(self) -> List[ReusePair]:
        """Every compatible ``(dying -> born)`` window pair."""
        out: List[ReusePair] = []
        for source in range(self.num_qubits):
            for target in range(self.num_qubits):
                if source != target and self.compatible(source, target):
                    out.append(ReusePair(source, target))
        return out

    def matching_bound(self) -> int:
        """Max merges any plan can perform, via Kuhn matching.

        ``num_qubits - matching_bound()`` is a lower bound on the width
        any legal sequence of reuse pairs can reach (merging only ever
        shrinks the compatibility relation).
        """
        rows = [0] * self.num_qubits
        for source in range(self.num_qubits):
            for target in range(self.num_qubits):
                if source != target and self.compatible(source, target):
                    rows[source] |= 1 << target
        return max_bipartite_matching_size(rows, self.num_qubits)

    # -- chain-level compatibility ------------------------------------------------

    def initial_state(self) -> State:
        """The untouched state: every wire holds its own qubit."""
        return tuple((q,) for q in range(self.num_qubits))

    def _reach_matrix(self, wires: State) -> Dict[int, Set[int]]:
        """``reach[y]`` = original qubits some op on *y*'s wire precedes.

        Chain adjacency ``(a, b)`` is a measure/reset barrier: all ops
        up to ``a`` precede it, all ops from ``b`` on follow it.  The
        closure over the barrier digraph composes dependencies across
        chains; see :mod:`repro.core.exact` for the derivation.
        """
        merges: List[Tuple[int, int]] = []
        for chain in wires:
            for i in range(len(chain) - 1):
                merges.append((chain[i], chain[i + 1]))
        k = len(merges)
        closure: List[int] = [0] * k
        if k:
            adjacency: List[int] = [0] * k
            for i, (_, released) in enumerate(merges):
                for j, (retiring, _) in enumerate(merges):
                    if i != j and (
                        released == retiring or self._d0(released, retiring)
                    ):
                        adjacency[i] |= 1 << j
            for i in range(k):
                seen = 1 << i
                stack = [i]
                while stack:
                    frontier = adjacency[stack.pop()] & ~seen
                    while frontier:
                        bit = frontier & -frontier
                        frontier ^= bit
                        seen |= bit
                        stack.append(bit.bit_length() - 1)
                closure[i] = seen
            exits: List[Set[int]] = []
            for _, released in merges:
                out = {q for q in self._used if self._d0(released, q)}
                out.add(released)
                exits.append(out)
        reach: Dict[int, Set[int]] = {}
        for q in self._used:
            row = {x for x in self._used if self._d0(q, x)}
            for i, (retiring, _) in enumerate(merges):
                if q == retiring or self._d0(q, retiring):
                    mask = closure[i]
                    while mask:
                        bit = mask & -mask
                        mask ^= bit
                        row |= exits[bit.bit_length() - 1]
            reach[q] = row
        return reach

    def chain_merges(self, wires: State) -> Tuple[List[Tuple[int, int]], List[int]]:
        """All valid merges ``(source wire, target wire)`` in *wires*,
        plus per-source target bitmasks for the matching bound.

        Condition 1 lifts member-wise (no member of the source chain may
        share a gate with a member of the target chain); Condition 2
        lifts through the barrier closure of :meth:`_reach_matrix`.
        """
        reach = self._reach_matrix(wires)
        active = [
            index
            for index, chain in enumerate(wires)
            if all(q in self._used for q in chain)
        ]
        options: List[Tuple[int, int]] = []
        rows = [0] * len(wires)
        for u in active:
            source_chain = wires[u]
            for v in active:
                if u == v:
                    continue
                target_chain = wires[v]
                if any(
                    b in self._interacts[a]
                    for a in source_chain
                    for b in target_chain
                ):
                    continue
                if any(
                    x in reach[y] for y in target_chain for x in source_chain
                ):
                    continue
                options.append((u, v))
                rows[u] |= 1 << v
        return options, rows

    @staticmethod
    def merge(wires: State, u: int, v: int) -> State:
        """Apply merge ``(u -> v)``: wire *v* is removed, its chain
        appended to *u*'s, matching the qubit map of
        :func:`~repro.core.transform.apply_reuse_pair`."""
        merged = wires[u] + wires[v]
        out = [chain for index, chain in enumerate(wires) if index != v]
        out[u - (1 if u > v else 0)] = merged
        return tuple(out)

    def chain_floor(self, wires: State, rows: Optional[List[int]] = None) -> int:
        """Optimistic width floor reachable from *wires*."""
        if rows is None:
            _, rows = self.chain_merges(wires)
        return len(wires) - max_bipartite_matching_size(rows, len(wires))

    # -- state interning -----------------------------------------------------------

    def _symmetry_classes(self, circuit: QuantumCircuit) -> Dict[int, int]:
        """Partition qubits into interchangeable structural classes
        (identical windows, interaction sets, and dependency rows), so
        states that differ only by a symmetric-qubit swap intern alike."""
        ops = Counter(q for ins in circuit.data for q in ins.qubits)
        qubits = list(range(circuit.num_qubits))

        def swappable(q: int, r: int) -> bool:
            return (
                ops[q] == ops[r]
                and (q in self._used) == (r in self._used)
                and self._interacts[q] - {r} == self._interacts[r] - {q}
                and self._d0(q, r) == self._d0(r, q)
                and all(
                    self._d0(q, s) == self._d0(r, s)
                    and self._d0(s, q) == self._d0(s, r)
                    for s in qubits
                    if s != q and s != r
                )
            )

        class_of: Dict[int, int] = {}
        representatives: List[int] = []
        for q in qubits:
            for index, rep in enumerate(representatives):
                if swappable(q, rep):
                    class_of[q] = index
                    break
            else:
                class_of[q] = len(representatives)
                representatives.append(q)
        return class_of

    def canonical(self, wires: State) -> FrozenSet[Tuple[Chain, int]]:
        """State key modulo wire order and symmetric-qubit identity."""
        counts = Counter(
            tuple(self._class_of[q] for q in chain) for chain in wires
        )
        return frozenset(counts.items())
