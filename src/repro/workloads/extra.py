"""Additional application circuits beyond the paper's benchmark list.

These exercise the same structural families the paper studies — oracle
stars (Deutsch-Jozsa, hidden shift), arithmetic CX/CCX ladders (Cuccaro
ripple-carry adder), and sequentially-entangling chains (GHZ) — and give
the tradeoff explorer and test-suite more varied reuse landscapes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError

__all__ = [
    "deutsch_jozsa",
    "cuccaro_adder",
    "ghz_measured",
    "hidden_shift",
]


def deutsch_jozsa(
    num_qubits: int, balanced_mask: Optional[Sequence[int]] = None
) -> QuantumCircuit:
    """Deutsch-Jozsa over ``num_qubits`` total qubits (ancilla last).

    The oracle is the balanced function ``f(x) = mask . x`` (constant when
    the mask is all zeros).  Like BV, the interaction graph is a star, so
    the circuit compresses to 2 qubits under reuse.
    """
    if num_qubits < 2:
        raise WorkloadError("deutsch_jozsa needs at least 2 qubits")
    n = num_qubits - 1
    if balanced_mask is None:
        balanced_mask = [1] * n
    balanced_mask = list(balanced_mask)
    if len(balanced_mask) != n:
        raise WorkloadError(f"mask must have {n} bits")
    circuit = QuantumCircuit(num_qubits, n, name=f"dj_{num_qubits}")
    ancilla = n
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(n):
        circuit.h(q)
        if balanced_mask[q]:
            circuit.cx(q, ancilla)
        circuit.h(q)
        circuit.measure(q, q)
    return circuit


def cuccaro_adder(bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder: ``a + b`` over ``2*bits + 2`` qubits.

    Wires: carry-in (0), interleaved ``b_i`` (odd) and ``a_i`` (even
    positions), carry-out (last).  Fixed inputs ``a = 0b1...1`` and
    ``b = 0b0101...`` make the output deterministic.  The MAJ ladder runs
    up and the UMA ladder *back down* (uncomputation), so every qubit is
    live from the first to the last layer — the measure-and-reuse style of
    the paper finds nothing here, which is precisely the workload class
    the paper delegates to uncomputation-based frameworks (SQUARE).
    """
    if bits < 1:
        raise WorkloadError("adder needs at least 1 bit")
    n = 2 * bits + 2
    circuit = QuantumCircuit(n, n, name=f"cuccaro_{bits}")
    a = [2 + 2 * i for i in range(bits)]
    b = [1 + 2 * i for i in range(bits)]
    carry_in, carry_out = 0, n - 1

    # fixed inputs: a = all ones, b = alternating 1010...
    for qubit in a:
        circuit.x(qubit)
    for index, qubit in enumerate(b):
        if index % 2 == 0:
            circuit.x(qubit)

    def maj(c: int, bq: int, aq: int) -> None:
        circuit.cx(aq, bq)
        circuit.cx(aq, c)
        circuit.ccx(c, bq, aq)

    def uma(c: int, bq: int, aq: int) -> None:
        circuit.ccx(c, bq, aq)
        circuit.cx(aq, c)
        circuit.cx(c, bq)

    maj(carry_in, b[0], a[0])
    for i in range(1, bits):
        maj(a[i - 1], b[i], a[i])
    circuit.cx(a[-1], carry_out)
    for i in range(bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    circuit.measure_all()
    return circuit


def ghz_measured(num_qubits: int) -> QuantumCircuit:
    """GHZ chain with terminal measurement.

    Perhaps surprisingly, GHZ compresses to 2 wires under reuse: by the
    deferred-measurement principle qubit *i* can be measured right after
    its CX to qubit *i+1*, freeing its wire for qubit *i+2* — the joint
    outcome distribution (half all-zeros, half all-ones) is unchanged.
    """
    if num_qubits < 2:
        raise WorkloadError("ghz needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    circuit.measure_all()
    return circuit


def hidden_shift(num_qubits: int, shift: Optional[Sequence[int]] = None) -> QuantumCircuit:
    """A Roetteler-style hidden-shift circuit over bent function products.

    Pairs of qubits (2i, 2i+1) interact through CZ inside H sandwiches;
    the interaction graph is a perfect matching, the friendliest possible
    reuse structure (half the qubits can be saved pairwise... sequential
    chains push further).
    """
    if num_qubits < 2 or num_qubits % 2:
        raise WorkloadError("hidden_shift needs an even qubit count >= 2")
    if shift is None:
        shift = [(q % 3 == 0) * 1 for q in range(num_qubits)]
    shift = list(shift)
    if len(shift) != num_qubits:
        raise WorkloadError(f"shift must have {num_qubits} bits")
    circuit = QuantumCircuit(num_qubits, num_qubits, name=f"hs_{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
        if shift[q]:
            circuit.x(q)
    for q in range(0, num_qubits, 2):
        circuit.cz(q, q + 1)
    for q in range(num_qubits):
        if shift[q]:
            circuit.x(q)
        circuit.h(q)
    for q in range(0, num_qubits, 2):
        circuit.cz(q, q + 1)
    for q in range(num_qubits):
        circuit.h(q)
        circuit.measure(q, q)
    return circuit
