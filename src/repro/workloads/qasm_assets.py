"""Small OpenQASM 2.0 programs exercised through the parser.

These serve two purposes: they are realistic end-to-end inputs for the
QASM front end (macros, broadcasts, conditionals), and they provide extra
compilation targets for the tests and the tradeoff explorer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import parse_qasm
from repro.exceptions import WorkloadError

__all__ = ["QASM_PROGRAMS", "load_qasm_benchmark", "qasm_benchmark_names"]

QASM_PROGRAMS: Dict[str, str] = {
    # textbook Bell-pair preparation with measurement
    "bell": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
""",
    # 3-qubit repetition-code encode + decode with majority vote via ccx
    "repetition3": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
x q[0];
cx q[0], q[1];
cx q[0], q[2];
barrier q[0], q[1], q[2];
cx q[0], q[1];
cx q[0], q[2];
ccx q[1], q[2], q[0];
measure q -> c;
""",
    # user-defined macro gates: a controlled-H built from primitives
    "controlled_h": """
OPENQASM 2.0;
include "qelib1.inc";
gate ch a, b {
  ry(pi/4) b;
  cx a, b;
  ry(-pi/4) b;
}
qreg q[2];
creg c[2];
x q[0];
ch q[0], q[1];
measure q -> c;
""",
    # dynamic-circuit teleportation of |1> using feed-forward
    "teleport": """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg m0[1];
creg m1[1];
creg out[1];
x q[0];
h q[1];
cx q[1], q[2];
cx q[0], q[1];
h q[0];
measure q[0] -> m0[0];
measure q[1] -> m1[0];
if (m1 == 1) x q[2];
if (m0 == 1) z q[2];
measure q[2] -> out[0];
""",
    # a 4-qubit parity cascade (mini XOR benchmark) with broadcasting
    "parity4": """
OPENQASM 2.0;
include "qelib1.inc";
qreg data[3];
qreg target[1];
creg c[4];
x data[0];
x data[2];
cx data[0], target[0];
cx data[1], target[0];
cx data[2], target[0];
measure data[0] -> c[0];
measure data[1] -> c[1];
measure data[2] -> c[2];
measure target[0] -> c[3];
""",
}


def load_qasm_benchmark(name: str) -> QuantumCircuit:
    """Parse one of the bundled QASM programs into a circuit."""
    try:
        text = QASM_PROGRAMS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown QASM benchmark {name!r}; choices: {sorted(QASM_PROGRAMS)}"
        ) from None
    circuit = parse_qasm(text)
    circuit.name = name
    return circuit


def qasm_benchmark_names() -> List[str]:
    return sorted(QASM_PROGRAMS)
