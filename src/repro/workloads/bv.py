"""Bernstein-Vazirani circuits — the paper's running example (Fig. 1).

BV finds a secret bitstring *s* with one oracle query: prepare data qubits
in superposition, apply CX from data qubit *i* to the ancilla wherever
``s_i = 1``, undo the superposition, and measure.  The qubit interaction
graph is a *star* centred on the ancilla — which is why an *n*-qubit BV
always compresses to exactly 2 qubits under reuse, the paper's headline
example (Section 1: "the minimal number of required qubits is always 2").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError

__all__ = ["bv_circuit", "bv_expected_bitstring"]


def bv_circuit(
    num_qubits: int, secret: Optional[Sequence[int]] = None
) -> QuantumCircuit:
    """Bernstein-Vazirani over ``num_qubits`` total qubits.

    Args:
        num_qubits: total width including the ancilla (so ``num_qubits - 1``
            data qubits).  ``bv_circuit(5)`` is the paper's Fig. 1 circuit.
        secret: the hidden bitstring (length ``num_qubits - 1``); defaults
            to all ones, the hardest case for connectivity.

    The data qubits are 0..n-2; the ancilla is qubit n-1.  Each data qubit
    is measured into the same-index classical bit right after its final
    Hadamard — the paper's Fig. 1(a) layout, which is what makes the
    measure-and-reuse transformation natural.
    """
    if num_qubits < 2:
        raise WorkloadError("BV needs at least 2 qubits")
    n = num_qubits - 1
    if secret is None:
        secret = [1] * n
    secret = list(secret)
    if len(secret) != n:
        raise WorkloadError(f"secret must have {n} bits, got {len(secret)}")
    if any(bit not in (0, 1) for bit in secret):
        raise WorkloadError("secret must be binary")

    circuit = QuantumCircuit(num_qubits, n, name=f"bv_{num_qubits}")
    ancilla = n
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q in range(n):
        circuit.h(q)
        if secret[q]:
            circuit.cx(q, ancilla)
        circuit.h(q)
        circuit.measure(q, q)
    return circuit


def bv_expected_bitstring(num_qubits: int, secret: Optional[Sequence[int]] = None) -> str:
    """The deterministic ideal output of :func:`bv_circuit` (clbit 0 leftmost)."""
    n = num_qubits - 1
    if secret is None:
        secret = [1] * n
    return "".join(str(bit) for bit in secret)
