"""QAOA max-cut circuits — the paper's commutable-gate application.

A depth-*p* QAOA circuit interleaves a *cost layer* (one ``RZZ``/CPHASE
per problem-graph edge — these all commute) with a *mixer layer* of
``RX`` rotations.  The commuting cost layer is what gives QS-CaQR its
extra freedom: gates can be reordered at will subject only to
Condition 1, so the minimum qubit count is the chromatic number of the
problem graph (Section 3.2.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError

__all__ = ["qaoa_maxcut_circuit", "qaoa_cost_edges", "QAOA_DEFAULT_GAMMA", "QAOA_DEFAULT_BETA"]

QAOA_DEFAULT_GAMMA = 0.8
QAOA_DEFAULT_BETA = 0.4


def qaoa_cost_edges(graph: nx.Graph) -> List[Tuple[int, int]]:
    """Problem-graph edges as sorted tuples (the commuting 2Q gate set)."""
    return [tuple(sorted(edge)) for edge in graph.edges]


def qaoa_maxcut_circuit(
    graph: nx.Graph,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Build a depth-``p`` QAOA max-cut circuit for *graph*.

    Args:
        graph: problem graph on vertices ``0..n-1``.
        gammas: cost-layer angles, one per round (default: one round,
            :data:`QAOA_DEFAULT_GAMMA`).
        betas: mixer-layer angles, same length as *gammas*.
        measure: append a full terminal measurement.

    Vertices must be integers ``0..n-1`` (the generators in
    :mod:`repro.workloads.graphs` guarantee this).
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise WorkloadError("QAOA needs at least 2 vertices")
    if set(graph.nodes) != set(range(n)):
        raise WorkloadError("graph vertices must be 0..n-1")
    if gammas is None:
        gammas = [QAOA_DEFAULT_GAMMA]
    if betas is None:
        betas = [QAOA_DEFAULT_BETA] * len(gammas)
    if len(gammas) != len(betas):
        raise WorkloadError("gammas and betas must have the same length")

    circuit = QuantumCircuit(n, n if measure else 0, name=f"qaoa_{n}")
    for q in range(n):
        circuit.h(q)
    for gamma, beta in zip(gammas, betas):
        for a, b in qaoa_cost_edges(graph):
            circuit.rzz(2.0 * gamma, a, b)
        for q in range(n):
            circuit.rx(2.0 * beta, q)
    if measure:
        for q in range(n):
            circuit.measure(q, q)
    return circuit
