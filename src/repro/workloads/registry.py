"""Benchmark registry: the paper's evaluation circuits by name.

Names follow Section 4.1: regular applications ``rd_32``, ``4mod5``,
``multiply_13``, ``system_9``, ``cc_10``, ``xor_5``, ``bv_10`` plus QAOA
instances named ``qaoa<N>-<density>`` (e.g. ``qaoa10-0.3``).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError
from repro.workloads.bv import bv_circuit
from repro.workloads.graphs import random_graph
from repro.workloads.qaoa import qaoa_maxcut_circuit
from repro.workloads.revlib import cc_circuit, four_mod5, multiply_13, rd32, system_9, xor5

__all__ = [
    "REGULAR_BENCHMARKS",
    "regular_benchmark",
    "qaoa_benchmark",
    "get_benchmark",
    "benchmark_names",
]

# Seed used for QAOA problem-graph generation throughout the experiments.
QAOA_GRAPH_SEED = 7

REGULAR_BENCHMARKS: Dict[str, Callable[[], QuantumCircuit]] = {
    "rd_32": rd32,
    "4mod5": four_mod5,
    "multiply_13": multiply_13,
    "system_9": system_9,
    "cc_10": lambda: cc_circuit(10),
    "cc_13": lambda: cc_circuit(13),
    "xor_5": xor5,
    "bv_5": lambda: bv_circuit(5),
    "bv_10": lambda: bv_circuit(10),
}

_QAOA_NAME = re.compile(r"^qaoa(\d+)-(\d*\.?\d+)$")


def regular_benchmark(name: str) -> QuantumCircuit:
    """Build a regular (non-commuting) benchmark circuit by name."""
    try:
        return REGULAR_BENCHMARKS[name]()
    except KeyError:
        raise WorkloadError(
            f"unknown regular benchmark {name!r}; "
            f"choices: {sorted(REGULAR_BENCHMARKS)}"
        ) from None


def qaoa_benchmark(name: str, seed: int = QAOA_GRAPH_SEED) -> QuantumCircuit:
    """Build a QAOA benchmark like ``qaoa10-0.3`` (n=10, density=0.3)."""
    match = _QAOA_NAME.match(name)
    if match is None:
        raise WorkloadError(f"bad QAOA benchmark name {name!r} (want qaoaN-D)")
    n = int(match.group(1))
    density = float(match.group(2))
    graph = random_graph(n, density, seed=seed)
    return qaoa_maxcut_circuit(graph)


def get_benchmark(name: str) -> QuantumCircuit:
    """Dispatch to regular or QAOA benchmarks by name."""
    if name in REGULAR_BENCHMARKS:
        return regular_benchmark(name)
    if _QAOA_NAME.match(name):
        return qaoa_benchmark(name)
    raise WorkloadError(f"unknown benchmark {name!r}")


def benchmark_names() -> List[str]:
    """All registered regular benchmark names."""
    return sorted(REGULAR_BENCHMARKS)
