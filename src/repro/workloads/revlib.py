"""RevLib-style regular benchmark circuits.

The paper evaluates seven "regular" (non-commuting) applications taken
from RevLib / QASMBench: ``Rd_32``, ``4mod5``, ``Multiply_13``,
``System_9``, ``CC_10``, ``XOR_5``, and ``BV_10``.  The exact RevLib gate
lists are not redistributable offline, so this module provides
hand-authored circuits with

* the published qubit counts, and
* the characteristic dependency/interaction structure of each family
  (star-shaped oracles for CC/XOR, CX/CCX arithmetic networks for
  rd32/4mod5/multiply/system),

which is what determines qubit-reuse opportunity (Conditions 1/2 operate
on the interaction graph and the dependency DAG, not on gate identities).
Each circuit is a classical reversible network on a fixed input, so the
ideal output distribution is a single bitstring — convenient for the TVD
and success-rate experiments (Table 3).
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import WorkloadError

__all__ = [
    "rd32",
    "four_mod5",
    "multiply_13",
    "system_9",
    "cc_circuit",
    "xor5",
]


def rd32() -> QuantumCircuit:
    """rd32: 4-qubit reversible "rd" (weight) function.

    Computes the 2-bit binary weight of 2 input bits into 2 output wires
    using the classic CCX/CX half-adder cascade.
    """
    circuit = QuantumCircuit(4, 4, name="rd32")
    # prepare a fixed nontrivial input |11> on the data wires
    circuit.x(0)
    circuit.x(1)
    # carry then sum, twice, mixing the output wires
    circuit.ccx(0, 1, 3)
    circuit.cx(0, 2)
    circuit.cx(1, 2)
    circuit.ccx(1, 2, 3)
    circuit.cx(1, 2)
    circuit.cx(3, 2)
    circuit.measure_all()
    return circuit


def four_mod5() -> QuantumCircuit:
    """4mod5: 5-qubit "x mod 5 == 4" reversible checker.

    A CX/CCX network over 4 input wires and one result wire, on a fixed
    input, following the 4mod5-v1 structure (result on the last qubit).
    """
    circuit = QuantumCircuit(5, 5, name="4mod5")
    circuit.x(0)
    circuit.x(2)
    circuit.cx(2, 4)
    circuit.cx(0, 4)
    circuit.ccx(0, 1, 4)
    circuit.cx(3, 4)
    circuit.ccx(1, 2, 4)
    circuit.cx(2, 4)
    circuit.ccx(2, 3, 4)
    circuit.measure_all()
    return circuit


def multiply_13() -> QuantumCircuit:
    """Multiply_13: 13-qubit partial-product multiplication network.

    Wires: a0..a2 (qubits 0-2), b0..b1 (qubits 3-4), product p0..p4
    (qubits 5-9), carry scratch c0..c2 (qubits 10-12).  Toffoli partial
    products accumulate into the product wires and scratch carries fold
    into the high bits — the structural shape of the RevLib multiplier at
    the published 13-qubit width.  The fixed input (a=101, b=11) makes
    the output a deterministic bitstring.
    """
    circuit = QuantumCircuit(13, 13, name="multiply_13")
    a = [0, 1, 2]
    b = [3, 4]
    p = [5, 6, 7, 8, 9]
    c = [10, 11, 12]
    # fixed input: a = 101, b = 11
    circuit.x(a[0])
    circuit.x(a[2])
    circuit.x(b[0])
    circuit.x(b[1])
    # partial products a_i * b_j accumulated into p_{i+j}; scratch carries
    # record the low partial products for the final fold
    for j, bq in enumerate(b):
        for i, aq in enumerate(a):
            k = i + j
            if k < len(c):
                circuit.ccx(aq, bq, c[k])
            circuit.ccx(aq, bq, p[k])
    # fold scratch carries into the high product bits
    circuit.cx(c[0], p[2])
    circuit.cx(c[1], p[3])
    circuit.cx(c[2], p[4])
    circuit.measure_all()
    return circuit


def system_9() -> QuantumCircuit:
    """System_9: 9-qubit linear-system style elimination network.

    A banded forward-elimination pattern: row *q* is folded into its two
    successors (CX + CCX) and then retired — each wire is measured as soon
    as its elimination step completes, the staircase structure that gives
    linear-system circuits their qubit-reuse opportunity (early rows are
    dead long before late rows start).
    """
    circuit = QuantumCircuit(9, 9, name="system_9")
    for q in (0, 3, 6):
        circuit.x(q)
    for q in range(8):
        circuit.cx(q, q + 1)
        if q + 2 < 9:
            circuit.ccx(q, q + 1, q + 2)
        # row q is eliminated: read it out and retire the wire
        circuit.measure(q, q)
    circuit.measure(8, 8)
    return circuit


def cc_circuit(num_qubits: int = 10) -> QuantumCircuit:
    """CC_n: the counterfeit-coin finding circuit (QASMBench ``cc_n``).

    ``n - 1`` coin qubits in superposition are weighed against one scale
    ancilla through a CX star, then the superposition is undone and the
    coins are measured.  Structurally a BV-like star with an extra
    mid-circuit measurement on the ancilla.
    """
    if num_qubits < 3:
        raise WorkloadError("cc needs at least 3 qubits")
    coins = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, num_qubits, name=f"cc_{num_qubits}")
    ancilla = coins
    for q in range(coins):
        circuit.h(q)
    for q in range(coins):
        circuit.cx(q, ancilla)
    circuit.h(ancilla)
    circuit.measure(ancilla, ancilla)
    # re-weigh conditioned on the scale reading (simplified classical branch)
    circuit.x(ancilla).c_if(ancilla, 1)
    for q in range(coins):
        circuit.h(q)
        circuit.measure(q, q)
    return circuit


def xor5() -> QuantumCircuit:
    """XOR_5: 5-qubit parity — four inputs XORed onto one target.

    The interaction graph is a degree-4 star, one more than heavy-hex
    connectivity allows, making it a minimal SWAP-pressure example
    (exactly the Fig. 4/5 situation).
    """
    circuit = QuantumCircuit(5, 5, name="xor_5")
    circuit.x(0)
    circuit.x(2)
    circuit.x(3)
    for q in range(4):
        circuit.cx(q, 4)
    circuit.measure_all()
    return circuit
