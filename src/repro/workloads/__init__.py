"""Benchmark workloads: BV, RevLib-style circuits, QAOA, problem graphs."""

from repro.workloads.bv import bv_circuit, bv_expected_bitstring
from repro.workloads.graphs import (
    edge_count_for_density,
    graph_density,
    power_law_graph,
    random_graph,
)
from repro.workloads.qaoa import (
    QAOA_DEFAULT_BETA,
    QAOA_DEFAULT_GAMMA,
    qaoa_cost_edges,
    qaoa_maxcut_circuit,
)
from repro.workloads.registry import (
    REGULAR_BENCHMARKS,
    benchmark_names,
    get_benchmark,
    qaoa_benchmark,
    regular_benchmark,
)
from repro.workloads.extra import (
    cuccaro_adder,
    deutsch_jozsa,
    ghz_measured,
    hidden_shift,
)
from repro.workloads.qasm_assets import (
    QASM_PROGRAMS,
    load_qasm_benchmark,
    qasm_benchmark_names,
)
from repro.workloads.revlib import cc_circuit, four_mod5, multiply_13, rd32, system_9, xor5

__all__ = [
    "deutsch_jozsa",
    "cuccaro_adder",
    "ghz_measured",
    "hidden_shift",
    "QASM_PROGRAMS",
    "load_qasm_benchmark",
    "qasm_benchmark_names",
    "bv_circuit",
    "bv_expected_bitstring",
    "random_graph",
    "power_law_graph",
    "graph_density",
    "edge_count_for_density",
    "qaoa_maxcut_circuit",
    "qaoa_cost_edges",
    "QAOA_DEFAULT_GAMMA",
    "QAOA_DEFAULT_BETA",
    "rd32",
    "four_mod5",
    "multiply_13",
    "system_9",
    "cc_circuit",
    "xor5",
    "REGULAR_BENCHMARKS",
    "regular_benchmark",
    "qaoa_benchmark",
    "get_benchmark",
    "benchmark_names",
]
