"""Problem-graph generators for QAOA max-cut experiments.

The paper evaluates QAOA on two input families, both at a target edge
density (Section 2.2 / 4.2.2):

* **random graphs** — G(n, m) uniform graphs with m chosen from density;
* **power-law graphs** — preferential-attachment (Barabasi-Albert) graphs
  adjusted to the same density; a few hubs dominate and most vertices have
  low degree, which is exactly why the paper finds more reuse there.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from repro.exceptions import WorkloadError

__all__ = ["random_graph", "power_law_graph", "graph_density", "edge_count_for_density"]


def edge_count_for_density(num_vertices: int, density: float) -> int:
    """Number of edges of an *n*-vertex graph with the given density."""
    if not 0 < density <= 1:
        raise WorkloadError("density must be in (0, 1]")
    return max(1, round(density * num_vertices * (num_vertices - 1) / 2))


def graph_density(graph: nx.Graph) -> float:
    """Edge density |E| / C(|V|, 2)."""
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return graph.number_of_edges() / (n * (n - 1) / 2)


def random_graph(num_vertices: int, density: float, seed: Optional[int] = None) -> nx.Graph:
    """Uniform G(n, m) random graph at the target *density*."""
    if num_vertices < 2:
        raise WorkloadError("need at least two vertices")
    m = edge_count_for_density(num_vertices, density)
    graph = nx.gnm_random_graph(num_vertices, m, seed=seed)
    return graph


def power_law_graph(
    num_vertices: int, density: float, seed: Optional[int] = None
) -> nx.Graph:
    """Hub-concentrated scale-free graph at the target *density*.

    A core-periphery construction: a small preferential core of hubs
    absorbs (almost) every edge, while periphery vertices attach only to
    hubs with a power-law-distributed attachment count.  This is the
    member of the scale-free family exhibiting the property the paper's
    Section 4.2.2 attributes to its power-law inputs — "the power-law
    graph contains more vertices with low degrees ... and the large
    degree node dominates the overall depth", which is what makes the
    low-degree qubits reusable at small depth cost (Fig. 3).

    (A uniform preferential-attachment graph at the same edge count has a
    near-linear vertex-separation number, which provably caps qubit reuse
    near the random-graph level — see DESIGN.md.)
    """
    if num_vertices < 3:
        raise WorkloadError("need at least three vertices")
    target_edges = edge_count_for_density(num_vertices, density)
    rng = random.Random(seed)
    n = num_vertices
    # smallest core whose incident-edge capacity covers the target
    core_size = 1
    while core_size * (n - core_size) + core_size * (core_size - 1) // 2 < target_edges:
        core_size += 1
    core_size = min(core_size + 1, n)  # one hub of slack
    core = list(range(core_size))
    periphery = list(range(core_size, n))

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # hub weights: zipf-like preference inside the core
    weights = [(i + 1) ** (-0.8) for i in range(core_size)]
    # every periphery vertex attaches to >= 1 hub; attachment count is
    # power-law distributed (many degree-1 leaves, few well-connected)
    for leaf in periphery:
        attach = 1
        while attach < core_size and rng.random() < 0.45:
            attach += 1
        hubs = set()
        while len(hubs) < attach:
            hubs.add(rng.choices(core, weights=weights)[0])
        for hub in hubs:
            graph.add_edge(leaf, hub)
    # remaining budget: core-core edges, then extra leaf-hub edges
    core_pairs = [(a, b) for i, a in enumerate(core) for b in core[i + 1 :]]
    rng.shuffle(core_pairs)
    for a, b in core_pairs:
        if graph.number_of_edges() >= target_edges:
            break
        graph.add_edge(a, b)
    while graph.number_of_edges() < target_edges:
        leaf = rng.choice(periphery) if periphery else rng.choice(core)
        hub = rng.choices(core, weights=weights)[0]
        if hub != leaf:
            graph.add_edge(leaf, hub)
    # trim leaf-hub duplicates' overshoot by removing random periphery edges
    while graph.number_of_edges() > target_edges:
        candidates = [e for e in graph.edges if graph.degree(e[0]) > 1 and graph.degree(e[1]) > 1]
        edge = rng.choice(candidates if candidates else list(graph.edges))
        graph.remove_edge(*edge)
    return graph
