"""Wire-ordered dependency DAG over circuit instructions.

Every instruction becomes a node; a directed edge runs from node *a* to
node *b* when *b* is the next instruction after *a* on some shared wire
(qubit, classical bit, or a classical bit read through a condition).  This
is the gate-dependency DAG the paper analyses: reuse Condition 2, critical
paths, and the dummy measurement node `D` all live here.

The DAG also supports *virtual* nodes — nodes with no instruction but an
explicit duration — used to evaluate candidate reuse pairs without
materialising the transformed circuit (paper Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.exceptions import DAGError

__all__ = ["DAGNode", "DAGCircuit"]


@dataclass
class DAGNode:
    """One node of the dependency DAG.

    Attributes:
        node_id: unique integer id within the owning DAG.
        instruction: the circuit instruction, or ``None`` for virtual nodes.
        weight_override: duration to use for virtual nodes (ignored when an
            instruction is present).
        tag: free-form annotation; CaQR tags its dummy nodes ``"reuse"``.
    """

    node_id: int
    instruction: Optional[Instruction]
    weight_override: int = 0
    tag: Optional[str] = None

    @property
    def is_virtual(self) -> bool:
        return self.instruction is None

    def qubits(self) -> Tuple[int, ...]:
        return self.instruction.qubits if self.instruction else ()

    def name(self) -> str:
        return self.instruction.name if self.instruction else (self.tag or "virtual")


class DAGCircuit:
    """Mutable dependency DAG with adjacency maps and wire bookkeeping."""

    def __init__(self, num_qubits: int = 0, num_clbits: int = 0):
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.nodes: Dict[int, DAGNode] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        self._next_id = 0
        # insertion order of node ids, used for stable topological sorting
        self._order: List[int] = []

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        """Build the dependency DAG of *circuit* (directives included)."""
        dag = cls(circuit.num_qubits, circuit.num_clbits)
        last_on_wire: Dict[Tuple[str, int], int] = {}
        for instruction in circuit.data:
            node_id = dag._add_node(DAGNode(0, instruction))
            for wire in _wires(instruction):
                previous = last_on_wire.get(wire)
                if previous is not None and previous != node_id:
                    dag.add_edge(previous, node_id)
                last_on_wire[wire] = node_id
        return dag

    def _add_node(self, node: DAGNode) -> int:
        node_id = self._next_id
        self._next_id += 1
        node.node_id = node_id
        self.nodes[node_id] = node
        self._succ[node_id] = set()
        self._pred[node_id] = set()
        self._order.append(node_id)
        return node_id

    def add_instruction_node(self, instruction: Instruction, tag: Optional[str] = None) -> int:
        """Add a detached node wrapping *instruction*; return its id."""
        return self._add_node(DAGNode(0, instruction, tag=tag))

    def add_virtual_node(self, weight: int = 0, tag: Optional[str] = None) -> int:
        """Add a detached instruction-less node with an explicit duration."""
        return self._add_node(DAGNode(0, None, weight_override=weight, tag=tag))

    def add_edge(self, source: int, target: int) -> None:
        """Add dependency edge *source* → *target*."""
        if source not in self.nodes or target not in self.nodes:
            raise DAGError(f"unknown node in edge ({source}, {target})")
        if source == target:
            raise DAGError("self-loop edges are not allowed")
        self._succ[source].add(target)
        self._pred[target].add(source)

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all incident edges."""
        if node_id not in self.nodes:
            raise DAGError(f"unknown node {node_id}")
        for successor in self._succ.pop(node_id):
            self._pred[successor].discard(node_id)
        for predecessor in self._pred.pop(node_id):
            self._succ[predecessor].discard(node_id)
        del self.nodes[node_id]
        self._order.remove(node_id)

    def copy(self) -> "DAGCircuit":
        """Structural copy (instructions are shared, graph is fresh)."""
        out = DAGCircuit(self.num_qubits, self.num_clbits)
        out.nodes = {
            node_id: DAGNode(
                node_id, node.instruction, node.weight_override, node.tag
            )
            for node_id, node in self.nodes.items()
        }
        out._succ = {node_id: set(succ) for node_id, succ in self._succ.items()}
        out._pred = {node_id: set(pred) for node_id, pred in self._pred.items()}
        out._next_id = self._next_id
        out._order = list(self._order)
        return out

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def successors(self, node_id: int) -> Set[int]:
        return self._succ[node_id]

    def predecessors(self, node_id: int) -> Set[int]:
        return self._pred[node_id]

    def in_degree(self, node_id: int) -> int:
        return len(self._pred[node_id])

    def out_degree(self, node_id: int) -> int:
        return len(self._succ[node_id])

    def front_layer(self) -> List[int]:
        """Node ids with no unresolved dependencies (in-degree 0)."""
        return [node_id for node_id in self._order if not self._pred[node_id]]

    def op_nodes(self, include_directives: bool = False) -> List[int]:
        """Instruction-bearing node ids in insertion order."""
        out = []
        for node_id in self._order:
            node = self.nodes[node_id]
            if node.instruction is None:
                continue
            if not include_directives and node.instruction.is_directive():
                continue
            out.append(node_id)
        return out

    def nodes_on_qubit(self, qubit: int) -> List[int]:
        """Instruction nodes touching *qubit*, in insertion order."""
        return [
            node_id
            for node_id in self._order
            if self.nodes[node_id].instruction is not None
            and qubit in self.nodes[node_id].instruction.qubits
        ]

    # -- ordering ----------------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Kahn's algorithm with insertion-order tie-breaking.

        Raises:
            DAGError: when the graph contains a cycle.
        """
        in_degree = {node_id: len(self._pred[node_id]) for node_id in self.nodes}
        import heapq

        position = {node_id: i for i, node_id in enumerate(self._order)}
        ready = [position[n] for n in self.nodes if in_degree[n] == 0]
        heapq.heapify(ready)
        by_position = {position[n]: n for n in self.nodes}
        out: List[int] = []
        while ready:
            node_id = by_position[heapq.heappop(ready)]
            out.append(node_id)
            for successor in self._succ[node_id]:
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    heapq.heappush(ready, position[successor])
        if len(out) != len(self.nodes):
            raise DAGError("cycle detected in DAG")
        return out

    def has_cycle(self) -> bool:
        """True when the graph is not a DAG."""
        try:
            self.topological_order()
        except DAGError:
            return True
        return False

    def layers(self) -> Iterator[List[int]]:
        """Yield antichains of simultaneously executable nodes (ASAP levels)."""
        in_degree = {node_id: len(self._pred[node_id]) for node_id in self.nodes}
        current = [node_id for node_id in self._order if in_degree[node_id] == 0]
        emitted = 0
        while current:
            yield current
            emitted += len(current)
            upcoming: List[int] = []
            for node_id in current:
                for successor in sorted(self._succ[node_id]):
                    in_degree[successor] -= 1
                    if in_degree[successor] == 0:
                        upcoming.append(successor)
            current = upcoming
        if emitted != len(self.nodes):
            raise DAGError("cycle detected in DAG")

    # -- conversion -------------------------------------------------------------------

    def to_circuit(
        self,
        num_qubits: Optional[int] = None,
        num_clbits: Optional[int] = None,
        name: str = "circuit",
    ) -> QuantumCircuit:
        """Linearise back to a circuit in stable topological order.

        Virtual nodes are dropped; instruction nodes are emitted verbatim.
        """
        circuit = QuantumCircuit(
            num_qubits if num_qubits is not None else self.num_qubits,
            num_clbits if num_clbits is not None else self.num_clbits,
            name,
        )
        for node_id in self.topological_order():
            node = self.nodes[node_id]
            if node.instruction is not None:
                circuit.append(node.instruction.copy())
        return circuit


def _wires(instruction: Instruction) -> List[Tuple[str, int]]:
    wires: List[Tuple[str, int]] = [("q", q) for q in instruction.qubits]
    wires.extend(("c", c) for c in instruction.clbits)
    if instruction.condition is not None:
        clbit = instruction.condition[0]
        if ("c", clbit) not in wires:
            wires.append(("c", clbit))
    return wires
