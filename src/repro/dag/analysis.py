"""Timing analysis over :class:`~repro.dag.dagcircuit.DAGCircuit`.

Provides ASAP/ALAP levelling, critical-path extraction, slack, depth and
duration estimates.  The CaQR passes use these to (a) rank candidate reuse
pairs by the critical path of the DAG-plus-dummy-node and (b) decide which
frontier gates are safe to delay in SR-CaQR.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dag.dagcircuit import DAGCircuit, DAGNode

__all__ = [
    "node_weight_depth",
    "node_weight_duration",
    "asap_finish_times",
    "alap_finish_times",
    "critical_path_length",
    "critical_path_nodes",
    "slack",
    "dag_depth",
    "dag_duration",
]


def node_weight_depth(node: DAGNode) -> int:
    """Unit weight per real gate: yields the classic circuit depth."""
    if node.instruction is None:
        return node.weight_override
    if node.instruction.is_directive():
        return 0
    return 1


def node_weight_duration(node: DAGNode) -> int:
    """Default-duration weight in dt: yields an estimated circuit duration."""
    if node.instruction is None:
        return node.weight_override
    if node.instruction.is_directive():
        return 0
    return node.instruction.duration_dt()


def asap_finish_times(
    dag: DAGCircuit, weight_fn: Callable[[DAGNode], int] = node_weight_depth
) -> Dict[int, int]:
    """Earliest finish time of every node under the given weights."""
    finish: Dict[int, int] = {}
    for node_id in dag.topological_order():
        start = max(
            (finish[predecessor] for predecessor in dag.predecessors(node_id)),
            default=0,
        )
        finish[node_id] = start + weight_fn(dag.nodes[node_id])
    return finish


def alap_finish_times(
    dag: DAGCircuit,
    weight_fn: Callable[[DAGNode], int] = node_weight_depth,
    horizon: Optional[int] = None,
) -> Dict[int, int]:
    """Latest finish time of every node without stretching the critical path.

    Args:
        horizon: total schedule length; defaults to the ASAP makespan.
    """
    if horizon is None:
        asap = asap_finish_times(dag, weight_fn)
        horizon = max(asap.values(), default=0)
    finish: Dict[int, int] = {}
    for node_id in reversed(dag.topological_order()):
        successors = dag.successors(node_id)
        if not successors:
            finish[node_id] = horizon
        else:
            finish[node_id] = min(
                finish[successor] - weight_fn(dag.nodes[successor])
                for successor in successors
            )
    return finish


def critical_path_length(
    dag: DAGCircuit, weight_fn: Callable[[DAGNode], int] = node_weight_depth
) -> int:
    """Length of the longest weighted path (the schedule makespan)."""
    finish = asap_finish_times(dag, weight_fn)
    return max(finish.values(), default=0)


def critical_path_nodes(
    dag: DAGCircuit, weight_fn: Callable[[DAGNode], int] = node_weight_depth
) -> List[int]:
    """One longest path through the DAG, as a list of node ids."""
    finish = asap_finish_times(dag, weight_fn)
    if not finish:
        return []
    node_id = max(finish, key=lambda n: (finish[n], -n))
    path = [node_id]
    while dag.predecessors(node_id):
        node_id = max(dag.predecessors(node_id), key=lambda n: (finish[n], -n))
        path.append(node_id)
    path.reverse()
    return path


def slack(
    dag: DAGCircuit, weight_fn: Callable[[DAGNode], int] = node_weight_depth
) -> Dict[int, int]:
    """Per-node scheduling slack: ALAP finish minus ASAP finish.

    Zero-slack nodes are on a critical path; SR-CaQR only delays gates with
    positive slack (paper Section 3.3.1 Step 2).
    """
    asap = asap_finish_times(dag, weight_fn)
    horizon = max(asap.values(), default=0)
    alap = alap_finish_times(dag, weight_fn, horizon)
    return {node_id: alap[node_id] - asap[node_id] for node_id in asap}


def dag_depth(dag: DAGCircuit) -> int:
    """Classic gate depth of the DAG."""
    return critical_path_length(dag, node_weight_depth)


def dag_duration(dag: DAGCircuit) -> int:
    """Estimated duration in dt using default gate durations."""
    return critical_path_length(dag, node_weight_duration)
