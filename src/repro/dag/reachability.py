"""Transitive reachability over the dependency DAG, as integer bitsets.

This powers Condition 2 of the paper: a reuse pair ``(q_i -> q_j)`` is
valid only when no gate on ``q_i`` (transitively) depends on a gate on
``q_j``.  With bitsets the whole closure for *n* gates costs ``O(n^2 / w)``
words, which is fast for the benchmark sizes the paper uses.

For the greedy sweep the full closure is only computed once:
:func:`update_masks_for_node` and :func:`update_masks_for_edge` patch an
existing bitset cache when the reuse transformation inserts its
measure/reset node ``D``, touching only the ancestors of the insertion
point instead of re-deriving the whole closure.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.dag.dagcircuit import DAGCircuit

__all__ = [
    "descendants_bitsets",
    "reaches",
    "qubit_dependency_matrix",
    "update_masks_for_edge",
    "update_masks_for_node",
]


def descendants_bitsets(dag: DAGCircuit) -> Dict[int, int]:
    """Map node id -> bitmask of all (transitive) descendant node ids.

    The mask uses node ids as bit positions; a node's mask excludes itself.
    """
    masks: Dict[int, int] = {}
    for node_id in reversed(dag.topological_order()):
        mask = 0
        for successor in dag.successors(node_id):
            mask |= masks[successor] | (1 << successor)
        masks[node_id] = mask
    return masks


def reaches(masks: Dict[int, int], source: int, target: int) -> bool:
    """True when *target* is a (transitive) descendant of *source*."""
    return bool(masks[source] >> target & 1)


def update_masks_for_edge(
    dag: DAGCircuit, masks: Dict[int, int], source: int, target: int
) -> Set[int]:
    """Patch *masks* after the edge ``source -> target`` was added to *dag*.

    Every (transitive) ancestor of *source* — and *source* itself — gains
    *target* plus *target*'s descendants.  Only nodes whose mask actually
    changes are visited, so a local insertion costs ``O(ancestors)`` word
    operations instead of the full ``O(n^2 / w)`` closure.

    Returns the set of node ids whose mask changed.
    """
    delta = masks[target] | (1 << target)
    changed: Set[int] = set()
    pending = [source]
    while pending:
        node_id = pending.pop()
        mask = masks[node_id]
        if mask | delta == mask:
            continue
        masks[node_id] = mask | delta
        changed.add(node_id)
        pending.extend(dag.predecessors(node_id))
    return changed


def update_masks_for_node(
    dag: DAGCircuit, masks: Dict[int, int], node_id: int
) -> Set[int]:
    """Register a freshly inserted node (edges already attached) in *masks*.

    This is the incremental path for CaQR's dummy/measure/reset node ``D``:
    its mask is the union of its successors' closures, and the combined
    delta is propagated to its ancestors in one upward sweep.

    Returns the set of node ids whose mask changed (including *node_id*).
    """
    mask = 0
    for successor in dag.successors(node_id):
        mask |= masks[successor] | (1 << successor)
    masks[node_id] = mask
    delta = mask | (1 << node_id)
    changed: Set[int] = {node_id}
    pending = list(dag.predecessors(node_id))
    while pending:
        ancestor = pending.pop()
        current = masks[ancestor]
        if current | delta == current:
            continue
        masks[ancestor] = current | delta
        changed.add(ancestor)
        pending.extend(dag.predecessors(ancestor))
    return changed


def qubit_dependency_matrix(dag: DAGCircuit) -> Dict[Tuple[int, int], bool]:
    """Qubit-level reachability: does any gate on *a* precede a gate on *b*?

    Returns a dict with key ``(a, b)`` set to ``True`` when some gate acting
    on qubit ``a`` is a (possibly transitive, possibly identical) ancestor
    of some gate acting on qubit ``b``.  Gates acting on both qubits count
    in both directions.

    Reuse pair ``(q_i -> q_j)`` satisfies Condition 2 exactly when
    ``matrix[(q_j, q_i)]`` is ``False`` — no gate on ``q_j`` may precede
    any gate on ``q_i``, because reuse forces every gate on ``q_i`` to run
    first.
    """
    masks = descendants_bitsets(dag)
    qubit_nodes: Dict[int, List[int]] = {}
    for node_id in dag.op_nodes(include_directives=False):
        for q in dag.nodes[node_id].instruction.qubits:
            qubit_nodes.setdefault(q, []).append(node_id)

    # union of (descendants + self) per qubit, and union of self bits per qubit
    qubit_reach: Dict[int, int] = {}
    qubit_self: Dict[int, int] = {}
    for q, nodes in qubit_nodes.items():
        reach = 0
        self_mask = 0
        for node_id in nodes:
            reach |= masks[node_id] | (1 << node_id)
            self_mask |= 1 << node_id
        qubit_reach[q] = reach
        qubit_self[q] = self_mask

    qubits = sorted(qubit_nodes)
    matrix: Dict[Tuple[int, int], bool] = {}
    for a in qubits:
        for b in qubits:
            if a == b:
                continue
            matrix[(a, b)] = bool(qubit_reach[a] & qubit_self[b])
    return matrix
