"""Dependency-DAG representation and analysis."""

from repro.dag.analysis import (
    alap_finish_times,
    asap_finish_times,
    critical_path_length,
    critical_path_nodes,
    dag_depth,
    dag_duration,
    node_weight_depth,
    node_weight_duration,
    slack,
)
from repro.dag.dagcircuit import DAGCircuit, DAGNode
from repro.dag.reachability import (
    descendants_bitsets,
    qubit_dependency_matrix,
    reaches,
)

__all__ = [
    "DAGCircuit",
    "DAGNode",
    "asap_finish_times",
    "alap_finish_times",
    "critical_path_length",
    "critical_path_nodes",
    "slack",
    "dag_depth",
    "dag_duration",
    "node_weight_depth",
    "node_weight_duration",
    "descendants_bitsets",
    "qubit_dependency_matrix",
    "reaches",
]
