"""Topology generators: line, ring, grid, star, full, and IBM heavy-hex.

The heavy-hex lattice is a hexagonal lattice with one extra qubit on every
edge, giving vertex degrees of at most 3.  ``heavy_hex`` builds it by
subdividing :func:`networkx.hexagonal_lattice_graph`; ``scaled_heavy_hex``
grows the lattice until it holds a requested number of qubits (the paper's
"scaled heavy-hex architecture" used for large QAOA instances).
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import networkx as nx

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingMap

__all__ = [
    "line",
    "ring",
    "grid",
    "star",
    "full",
    "heavy_hex",
    "scaled_heavy_hex",
    "FALCON_27_EDGES",
    "falcon_27",
]


def line(num_qubits: int) -> CouplingMap:
    """A 1-D chain of qubits."""
    return CouplingMap(num_qubits, [(q, q + 1) for q in range(num_qubits - 1)])


def ring(num_qubits: int) -> CouplingMap:
    """A cycle of qubits."""
    if num_qubits < 3:
        raise HardwareError("ring needs at least three qubits")
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice."""
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")

    def index(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return CouplingMap(rows * cols, edges)


def star(num_qubits: int) -> CouplingMap:
    """Qubit 0 coupled to every other qubit."""
    if num_qubits < 2:
        raise HardwareError("star needs at least two qubits")
    return CouplingMap(num_qubits, [(0, q) for q in range(1, num_qubits)])


def full(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (useful to isolate logical-level effects)."""
    edges = list(itertools.combinations(range(num_qubits), 2))
    return CouplingMap(num_qubits, edges)


def heavy_hex(rows: int, cols: int) -> CouplingMap:
    """Heavy-hex lattice: subdivided hexagonal lattice of *rows* x *cols* cells.

    Every vertex of the hexagonal lattice keeps degree <= 3 and every edge
    carries one extra degree-2 qubit, matching IBM's device family.
    """
    if rows < 1 or cols < 1:
        raise HardwareError("heavy_hex dimensions must be positive")
    hexagonal = nx.hexagonal_lattice_graph(rows, cols)
    # subdivide every edge once: the "heavy" qubits
    heavy = nx.Graph()
    heavy.add_nodes_from(hexagonal.nodes)
    for a, b in hexagonal.edges:
        midpoint = ("mid", a, b)
        heavy.add_edge(a, midpoint)
        heavy.add_edge(midpoint, b)
    relabel = {node: i for i, node in enumerate(sorted(heavy.nodes, key=str))}
    edges = [(relabel[a], relabel[b]) for a, b in heavy.edges]
    return CouplingMap(len(relabel), edges)


def scaled_heavy_hex(min_qubits: int) -> CouplingMap:
    """Smallest square-ish heavy-hex lattice with at least *min_qubits* qubits."""
    if min_qubits < 1:
        raise HardwareError("min_qubits must be positive")
    size = 1
    while True:
        coupling = heavy_hex(size, size)
        if coupling.num_qubits >= min_qubits:
            return coupling
        size += 1


# The 27-qubit IBM Falcon coupling (ibmq_mumbai and siblings): three
# horizontal heavy chains linked by vertical rungs, max degree 3.
FALCON_27_EDGES: List[Tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]


def falcon_27() -> CouplingMap:
    """The 27-qubit heavy-hex coupling of IBM Mumbai-class devices."""
    return CouplingMap(27, FALCON_27_EDGES)
