"""Topology generators and the device-profile registry.

Generators: line, ring, grid, star, full, and two heavy-hex families —
``heavy_hex`` (subdivided :func:`networkx.hexagonal_lattice_graph`, the
paper's "scaled heavy-hex architecture") and ``heavy_hex_rows`` (the
IBM-production layout of horizontal chains joined by rung qubits, which
hits the exact published qubit counts: 127-qubit Eagle, 433-qubit
Osprey).  Every generated vertex keeps degree <= 3.

The **device registry** maps stable names ("ibm_mumbai", "eagle127",
"iontrap32", ...) to :class:`DeviceProfile` records: a coupling factory
plus a seeded synthetic-calibration recipe scaled to the device class.
``get_device(name)`` materialises a fresh :class:`~repro.hardware.backends.Backend`
— deterministic per name, so digests and cache keys are reproducible
across processes.  See ``docs/BACKENDS.md`` for the catalogue and how to
register a new profile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

import networkx as nx

from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingMap

__all__ = [
    "line",
    "ring",
    "grid",
    "star",
    "full",
    "heavy_hex",
    "heavy_hex_rows",
    "scaled_heavy_hex",
    "FALCON_27_EDGES",
    "falcon_27",
    "eagle_127",
    "osprey_433",
    "DeviceProfile",
    "register_device",
    "device_names",
    "device_profile",
    "get_device",
]


def line(num_qubits: int) -> CouplingMap:
    """A 1-D chain of qubits."""
    return CouplingMap(num_qubits, [(q, q + 1) for q in range(num_qubits - 1)])


def ring(num_qubits: int) -> CouplingMap:
    """A cycle of qubits."""
    if num_qubits < 3:
        raise HardwareError("ring needs at least three qubits")
    edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
    return CouplingMap(num_qubits, edges)


def grid(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice."""
    if rows < 1 or cols < 1:
        raise HardwareError("grid dimensions must be positive")

    def index(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return CouplingMap(rows * cols, edges)


def star(num_qubits: int) -> CouplingMap:
    """Qubit 0 coupled to every other qubit."""
    if num_qubits < 2:
        raise HardwareError("star needs at least two qubits")
    return CouplingMap(num_qubits, [(0, q) for q in range(1, num_qubits)])


def full(num_qubits: int) -> CouplingMap:
    """All-to-all connectivity (useful to isolate logical-level effects)."""
    edges = list(itertools.combinations(range(num_qubits), 2))
    return CouplingMap(num_qubits, edges)


def heavy_hex(rows: int, cols: int) -> CouplingMap:
    """Heavy-hex lattice: subdivided hexagonal lattice of *rows* x *cols* cells.

    Every vertex of the hexagonal lattice keeps degree <= 3 and every edge
    carries one extra degree-2 qubit, matching IBM's device family.
    """
    if rows < 1 or cols < 1:
        raise HardwareError("heavy_hex dimensions must be positive")
    hexagonal = nx.hexagonal_lattice_graph(rows, cols)
    # subdivide every edge once: the "heavy" qubits
    heavy = nx.Graph()
    heavy.add_nodes_from(hexagonal.nodes)
    for a, b in hexagonal.edges:
        midpoint = ("mid", a, b)
        heavy.add_edge(a, midpoint)
        heavy.add_edge(midpoint, b)
    relabel = {node: i for i, node in enumerate(sorted(heavy.nodes, key=str))}
    edges = [(relabel[a], relabel[b]) for a, b in heavy.edges]
    return CouplingMap(len(relabel), edges)


def scaled_heavy_hex(min_qubits: int) -> CouplingMap:
    """Smallest square-ish heavy-hex lattice with at least *min_qubits* qubits."""
    if min_qubits < 1:
        raise HardwareError("min_qubits must be positive")
    size = 1
    while True:
        coupling = heavy_hex(size, size)
        if coupling.num_qubits >= min_qubits:
            return coupling
        size += 1


# The 27-qubit IBM Falcon coupling (ibmq_mumbai and siblings): three
# horizontal heavy chains linked by vertical rungs, max degree 3.
FALCON_27_EDGES: List[Tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]


def falcon_27() -> CouplingMap:
    """The 27-qubit heavy-hex coupling of IBM Mumbai-class devices."""
    return CouplingMap(27, FALCON_27_EDGES)


def heavy_hex_rows(rows: int, row_len: int, trim: int = 0) -> CouplingMap:
    """IBM-production heavy-hex: horizontal chains joined by rung qubits.

    *rows* chains of *row_len* qubits each; between consecutive chains a
    rung qubit bridges every fourth column, the column offset alternating
    0 / 2 per gap (the Falcon/Eagle/Osprey pattern).  Chain qubits touch
    at most one rung, so the maximum degree is 3.  *trim* drops that many
    of the highest-numbered rung qubits — how the generator hits exact
    published counts (Eagle: 7x15 + 24 rungs - 2 = 127) — and never
    disconnects the lattice while at least one rung per gap remains.
    """
    if rows < 1 or row_len < 3:
        raise HardwareError("heavy_hex_rows needs rows >= 1 and row_len >= 3")

    def chain_q(r: int, c: int) -> int:
        return r * row_len + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(row_len - 1):
            edges.append((chain_q(r, c), chain_q(r, c + 1)))
    num_qubits = rows * row_len
    rung_ids: List[int] = []
    for r in range(rows - 1):
        offset = 0 if r % 2 == 0 else 2
        for c in range(offset, row_len, 4):
            rung = num_qubits
            num_qubits += 1
            rung_ids.append(rung)
            edges.append((chain_q(r, c), rung))
            edges.append((rung, chain_q(r + 1, c)))
    if trim:
        if trim < 0 or trim > len(rung_ids):
            raise HardwareError(
                f"trim must be between 0 and {len(rung_ids)}, got {trim}"
            )
        # rungs carry the highest ids, so dropping the last `trim` keeps
        # the numbering contiguous
        drop = set(rung_ids[-trim:])
        edges = [(a, b) for a, b in edges if a not in drop and b not in drop]
        num_qubits -= trim
    return CouplingMap(num_qubits, edges)


def eagle_127() -> CouplingMap:
    """A 127-qubit Eagle-class heavy-hex coupling (ibm_washington scale)."""
    return heavy_hex_rows(7, 15, trim=2)


def osprey_433() -> CouplingMap:
    """A 433-qubit Osprey-class heavy-hex coupling (ibm_seattle scale)."""
    return heavy_hex_rows(13, 27, trim=2)


# -- the device-profile registry ----------------------------------------------


@dataclass(frozen=True)
class DeviceProfile:
    """One named synthetic device: topology + calibration recipe.

    ``backend()`` materialises a fresh
    :class:`~repro.hardware.backends.Backend`; two calls produce
    bit-identical snapshots (same seed, same draw order), so device names
    are stable cache/fleet coordinates.
    """

    name: str
    family: str
    description: str
    coupling_factory: Callable[[], CouplingMap]
    seed: int
    calibration_kwargs: Mapping[str, Any] = field(default_factory=dict)
    supports_dynamic_circuits: bool = True

    def coupling(self) -> CouplingMap:
        return self.coupling_factory()

    def backend(self):
        # local import: backends -> calibration -> this module would cycle
        # at module scope
        from repro.hardware.backends import Backend
        from repro.hardware.calibration import synthetic_calibration

        coupling = self.coupling_factory()
        return Backend(
            name=self.name,
            coupling=coupling,
            calibration=synthetic_calibration(
                coupling, seed=self.seed, **dict(self.calibration_kwargs)
            ),
            supports_dynamic_circuits=self.supports_dynamic_circuits,
        )


_DEVICE_REGISTRY: Dict[str, DeviceProfile] = {}


def register_device(profile: DeviceProfile, replace: bool = False) -> DeviceProfile:
    """Add *profile* to the registry (``replace=True`` to overwrite)."""
    if not replace and profile.name in _DEVICE_REGISTRY:
        raise HardwareError(f"device {profile.name!r} is already registered")
    _DEVICE_REGISTRY[profile.name] = profile
    return profile


def device_names() -> List[str]:
    """Registered device names, sorted."""
    return sorted(_DEVICE_REGISTRY)


def device_profile(name: str) -> DeviceProfile:
    """The registered profile for *name* (raises with the catalogue)."""
    try:
        return _DEVICE_REGISTRY[name]
    except KeyError:
        raise HardwareError(
            f"unknown device {name!r}; registered: {', '.join(device_names())}"
        ) from None


def get_device(name: str):
    """Materialise the named device as a fresh, deterministic Backend."""
    return device_profile(name).backend()


# Trapped-ion timing: two-qubit gates and measurement run ~100-1000x
# slower than superconducting (hundreds of microseconds at 0.22 ns/dt),
# but coherence is practically unlimited and connectivity all-to-all
# (the DeCross et al. Quantinuum model, arXiv:2210.08039).
_ION_TRAP_CALIBRATION = {
    "cx_error_range": (0.001, 0.008),
    "readout_error_range": (0.001, 0.01),
    "sq_error_range": (0.00002, 0.0002),
    "cx_duration_range": (900_000, 1_400_000),
    "t1_range_us": (1_000_000.0, 10_000_000.0),
    "measure_duration": 500_000,
    "reset_duration": 50_000,
    "sq_duration": 50_000,
}

for _profile in (
    DeviceProfile(
        name="ibm_mumbai",
        family="heavy-hex",
        description="27-qubit Falcon (the paper's evaluation device)",
        coupling_factory=falcon_27,
        # matches repro.hardware.mumbai.MUMBAI_SEED (kept literal: mumbai
        # imports this module); test_registry pins the snapshots equal
        seed=20230319,
    ),
    DeviceProfile(
        name="eagle127",
        family="heavy-hex",
        description="127-qubit Eagle-class heavy-hex",
        coupling_factory=eagle_127,
        seed=20230412,
    ),
    DeviceProfile(
        name="osprey433",
        family="heavy-hex",
        description="433-qubit Osprey-class heavy-hex",
        coupling_factory=osprey_433,
        seed=20230505,
    ),
    DeviceProfile(
        name="grid36",
        family="square-grid",
        description="6x6 square lattice",
        coupling_factory=lambda: grid(6, 6),
        seed=20230601,
    ),
    DeviceProfile(
        name="grid64",
        family="square-grid",
        description="8x8 square lattice",
        coupling_factory=lambda: grid(8, 8),
        seed=20230602,
    ),
    DeviceProfile(
        name="iontrap32",
        family="ion-trap",
        description="32-qubit all-to-all trapped-ion (slow gates, long T1)",
        coupling_factory=lambda: full(32),
        seed=20230701,
        calibration_kwargs=_ION_TRAP_CALIBRATION,
    ),
    DeviceProfile(
        name="iontrap56",
        family="ion-trap",
        description="56-qubit all-to-all trapped-ion (slow gates, long T1)",
        coupling_factory=lambda: full(56),
        seed=20230702,
        calibration_kwargs=_ION_TRAP_CALIBRATION,
    ),
):
    register_device(_profile)
del _profile
