"""JSON (de)serialization for calibrations and backends.

Real experiments pin a *calibration snapshot* (the paper exports IBM
Mumbai's CNOT durations/errors and readout errors); these helpers let a
snapshot be stored with the experiment results and reloaded bit-exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.exceptions import HardwareError
from repro.hardware.backends import Backend
from repro.hardware.calibration import Calibration
from repro.hardware.coupling import CouplingMap

__all__ = [
    "calibration_to_dict",
    "calibration_from_dict",
    "backend_to_json",
    "backend_from_json",
]

_FORMAT_VERSION = 1


def calibration_to_dict(calibration: Calibration) -> Dict[str, Any]:
    """Calibration -> JSON-compatible dict (edges as sorted "a-b" keys)."""
    return {
        "cx_error": {
            "-".join(map(str, sorted(edge))): value
            for edge, value in calibration.cx_error.items()
        },
        "cx_duration": {
            "-".join(map(str, sorted(edge))): value
            for edge, value in calibration.cx_duration.items()
        },
        "readout_error": {str(q): v for q, v in calibration.readout_error.items()},
        "sq_error": {str(q): v for q, v in calibration.sq_error.items()},
        "t1_dt": {str(q): v for q, v in calibration.t1_dt.items()},
        "t2_dt": {str(q): v for q, v in calibration.t2_dt.items()},
        "measure_duration": calibration.measure_duration,
        "reset_duration": calibration.reset_duration,
        "sq_duration": calibration.sq_duration,
    }


def calibration_from_dict(payload: Dict[str, Any]) -> Calibration:
    """Inverse of :func:`calibration_to_dict`."""

    def _edge(key: str):
        a, b = key.split("-")
        return frozenset((int(a), int(b)))

    try:
        return Calibration(
            cx_error={_edge(k): float(v) for k, v in payload["cx_error"].items()},
            cx_duration={
                _edge(k): int(v) for k, v in payload["cx_duration"].items()
            },
            readout_error={
                int(q): float(v) for q, v in payload["readout_error"].items()
            },
            sq_error={int(q): float(v) for q, v in payload.get("sq_error", {}).items()},
            t1_dt={int(q): float(v) for q, v in payload.get("t1_dt", {}).items()},
            t2_dt={int(q): float(v) for q, v in payload.get("t2_dt", {}).items()},
            measure_duration=int(payload["measure_duration"]),
            reset_duration=int(payload["reset_duration"]),
            sq_duration=int(payload["sq_duration"]),
        )
    except (KeyError, ValueError) as exc:
        raise HardwareError(f"malformed calibration payload: {exc}") from exc


def backend_to_json(backend: Backend) -> str:
    """Serialize a full backend (name, coupling, calibration, flags)."""
    payload = {
        "version": _FORMAT_VERSION,
        "name": backend.name,
        "num_qubits": backend.num_qubits,
        "edges": [list(edge) for edge in backend.coupling.edges],
        "supports_dynamic_circuits": backend.supports_dynamic_circuits,
        "calibration": calibration_to_dict(backend.calibration),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def backend_from_json(text: str) -> Backend:
    """Inverse of :func:`backend_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise HardwareError(f"invalid backend JSON: {exc}") from exc
    if payload.get("version") != _FORMAT_VERSION:
        raise HardwareError(
            f"unsupported backend format version {payload.get('version')!r}"
        )
    try:
        coupling = CouplingMap(
            payload["num_qubits"], [tuple(edge) for edge in payload["edges"]]
        )
        return Backend(
            name=payload["name"],
            coupling=coupling,
            calibration=calibration_from_dict(payload["calibration"]),
            supports_dynamic_circuits=bool(payload["supports_dynamic_circuits"]),
        )
    except KeyError as exc:
        raise HardwareError(f"malformed backend payload: missing {exc}") from exc
