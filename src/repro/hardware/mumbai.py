"""A synthetic stand-in for the IBM Mumbai device used in the paper.

IBM Mumbai is a 27-qubit Falcon processor with heavy-hex connectivity and —
at the time of the paper — the one IBM machine supporting dynamic circuits.
The real calibration snapshot is not redistributable, so we generate a
seeded synthetic calibration over the exact Falcon-27 coupling graph.  The
distributions match published Falcon characteristics (see
:func:`repro.hardware.calibration.synthetic_calibration`), which preserves
the error *variability* that SR-CaQR's noise-aware placement exploits.
"""

from __future__ import annotations

from repro.hardware.backends import Backend
from repro.hardware.calibration import synthetic_calibration
from repro.hardware.topologies import falcon_27, scaled_heavy_hex

__all__ = ["ibm_mumbai", "scaled_heavy_hex_backend", "MUMBAI_SEED"]

# Fixed seed so every experiment in the repo sees the same "device day".
MUMBAI_SEED = 20230319


def ibm_mumbai() -> Backend:
    """The 27-qubit synthetic Mumbai backend with dynamic-circuit support."""
    coupling = falcon_27()
    return Backend(
        name="ibm_mumbai",
        coupling=coupling,
        calibration=synthetic_calibration(coupling, seed=MUMBAI_SEED),
        supports_dynamic_circuits=True,
    )


def scaled_heavy_hex_backend(min_qubits: int) -> Backend:
    """A scaled heavy-hex backend for circuits wider than 27 qubits.

    Mirrors the paper's "when the qubit number is large, we use the scaled
    heavy-hex architecture" (Section 4.1).
    """
    coupling = scaled_heavy_hex(min_qubits)
    return Backend(
        name=f"heavy_hex_{coupling.num_qubits}",
        coupling=coupling,
        calibration=synthetic_calibration(coupling, seed=MUMBAI_SEED),
        supports_dynamic_circuits=True,
    )
