"""Physical coupling maps: which pairs of hardware qubits can interact.

The paper targets IBM heavy-hex devices whose physical qubits have degree
at most 3 — the very property that forces SWAP insertion for star-shaped
interaction graphs like BV (paper Fig. 4/5).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import HardwareError

__all__ = ["CouplingMap"]


class CouplingMap:
    """Undirected connectivity graph over ``num_qubits`` physical qubits."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]]):
        if num_qubits <= 0:
            raise HardwareError("coupling map needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self._adjacency: List[Set[int]] = [set() for _ in range(self.num_qubits)]
        self._edges: Set[FrozenSet[int]] = set()
        for a, b in edges:
            self.add_edge(a, b)
        self._distance: Optional[np.ndarray] = None

    def add_edge(self, a: int, b: int) -> None:
        """Register the undirected link (a, b)."""
        if a == b:
            raise HardwareError("self-coupling is not allowed")
        for q in (a, b):
            if not 0 <= q < self.num_qubits:
                raise HardwareError(f"qubit {q} out of range")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._edges.add(frozenset((a, b)))
        self._distance = None

    # -- queries ----------------------------------------------------------------

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """Sorted list of undirected edges as (low, high) tuples."""
        return sorted(tuple(sorted(edge)) for edge in self._edges)

    def neighbors(self, qubit: int) -> Set[int]:
        """Physical qubits directly coupled to *qubit*."""
        return set(self._adjacency[qubit])

    def degree(self, qubit: int) -> int:
        return len(self._adjacency[qubit])

    def max_degree(self) -> int:
        """Maximum connectivity degree (3 on heavy-hex devices)."""
        return max(len(adj) for adj in self._adjacency)

    def are_adjacent(self, a: int, b: int) -> bool:
        return b in self._adjacency[a]

    def is_connected(self) -> bool:
        """True when every qubit is reachable from qubit 0."""
        seen = {0}
        queue = deque([0])
        while queue:
            q = queue.popleft()
            for neighbor in self._adjacency[q]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == self.num_qubits

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two physical qubits.

        Raises:
            HardwareError: when the qubits are in different components.
        """
        matrix = self.distance_matrix()
        d = int(matrix[a][b])
        if d < 0:
            raise HardwareError(f"qubits {a} and {b} are not connected")
        return d

    def distance_matrix(self) -> np.ndarray:
        """All-pairs hop distances (−1 for unreachable) as a cached
        read-only ``np.ndarray``.

        The array is shared between every caller (routers index it millions
        of times per run), so it is handed out with ``writeable=False``:
        attempts to mutate it raise instead of silently corrupting the
        cache.  ``add_edge`` invalidates it.
        """
        if self._distance is None:
            matrix = np.full((self.num_qubits, self.num_qubits), -1, dtype=np.int64)
            for source in range(self.num_qubits):
                row = matrix[source]
                row[source] = 0
                queue = deque([source])
                while queue:
                    q = queue.popleft()
                    for neighbor in self._adjacency[q]:
                        if row[neighbor] < 0:
                            row[neighbor] = row[q] + 1
                            queue.append(neighbor)
            matrix.setflags(write=False)
            self._distance = matrix
        return self._distance

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One hop-minimal path from *a* to *b* inclusive."""
        if a == b:
            return [a]
        parent: Dict[int, int] = {a: a}
        queue = deque([a])
        while queue:
            q = queue.popleft()
            for neighbor in sorted(self._adjacency[q]):
                if neighbor not in parent:
                    parent[neighbor] = q
                    if neighbor == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    queue.append(neighbor)
        raise HardwareError(f"qubits {a} and {b} are not connected")

    def subgraph_has_embedding_for_star(self, center_degree: int) -> bool:
        """Quick feasibility check used in the Fig. 5 discussion: a star
        interaction graph with the given hub degree embeds without SWAPs
        only if some physical qubit has at least that many neighbours."""
        return self.max_degree() >= center_degree

    def to_networkx(self) -> nx.Graph:
        """The coupling map as a networkx graph (for drawing/algorithms)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.edges)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - display
        return f"<CouplingMap {self.num_qubits} qubits, {len(self._edges)} edges>"
