"""Hardware models: coupling maps, topologies, calibration, backends."""

from repro.hardware.backends import Backend, generic_backend
from repro.hardware.calibration import Calibration, synthetic_calibration
from repro.hardware.coupling import CouplingMap
from repro.hardware.drift import DriftSimulator, drift_series
from repro.hardware.mumbai import MUMBAI_SEED, ibm_mumbai, scaled_heavy_hex_backend
from repro.hardware.serialization import (
    backend_from_json,
    backend_to_json,
    calibration_from_dict,
    calibration_to_dict,
)
from repro.hardware.topologies import (
    FALCON_27_EDGES,
    DeviceProfile,
    device_names,
    device_profile,
    eagle_127,
    falcon_27,
    full,
    get_device,
    grid,
    heavy_hex,
    heavy_hex_rows,
    line,
    osprey_433,
    register_device,
    ring,
    scaled_heavy_hex,
    star,
)

__all__ = [
    "Backend",
    "generic_backend",
    "Calibration",
    "synthetic_calibration",
    "CouplingMap",
    "DriftSimulator",
    "drift_series",
    "ibm_mumbai",
    "scaled_heavy_hex_backend",
    "MUMBAI_SEED",
    "line",
    "ring",
    "grid",
    "star",
    "full",
    "heavy_hex",
    "heavy_hex_rows",
    "scaled_heavy_hex",
    "falcon_27",
    "FALCON_27_EDGES",
    "eagle_127",
    "osprey_433",
    "DeviceProfile",
    "register_device",
    "device_names",
    "device_profile",
    "get_device",
    "backend_to_json",
    "backend_from_json",
    "calibration_to_dict",
    "calibration_from_dict",
]
