"""Hardware models: coupling maps, topologies, calibration, backends."""

from repro.hardware.backends import Backend, generic_backend
from repro.hardware.calibration import Calibration, synthetic_calibration
from repro.hardware.coupling import CouplingMap
from repro.hardware.mumbai import MUMBAI_SEED, ibm_mumbai, scaled_heavy_hex_backend
from repro.hardware.serialization import (
    backend_from_json,
    backend_to_json,
    calibration_from_dict,
    calibration_to_dict,
)
from repro.hardware.topologies import (
    FALCON_27_EDGES,
    falcon_27,
    full,
    grid,
    heavy_hex,
    line,
    ring,
    scaled_heavy_hex,
    star,
)

__all__ = [
    "Backend",
    "generic_backend",
    "Calibration",
    "synthetic_calibration",
    "CouplingMap",
    "ibm_mumbai",
    "scaled_heavy_hex_backend",
    "MUMBAI_SEED",
    "line",
    "ring",
    "grid",
    "star",
    "full",
    "heavy_hex",
    "scaled_heavy_hex",
    "falcon_27",
    "FALCON_27_EDGES",
    "backend_to_json",
    "backend_from_json",
    "calibration_to_dict",
    "calibration_from_dict",
]
