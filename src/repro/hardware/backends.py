"""Backend: a named coupling map + calibration + capability flags."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import HardwareError
from repro.hardware.calibration import Calibration, synthetic_calibration
from repro.hardware.coupling import CouplingMap

__all__ = ["Backend", "generic_backend"]


@dataclass
class Backend:
    """A compile/execution target.

    Attributes:
        name: device name.
        coupling: physical connectivity.
        calibration: error and timing data.
        supports_dynamic_circuits: whether mid-circuit measurement, reset,
            and classical feed-forward are available (the paper notes only
            some IBM machines support this).
    """

    name: str
    coupling: CouplingMap
    calibration: Calibration
    supports_dynamic_circuits: bool = True

    def __post_init__(self) -> None:
        for a, b in self.coupling.edges:
            # every physical link must be calibrated
            self.calibration.get_cx_error(a, b)

    @property
    def num_qubits(self) -> int:
        return self.coupling.num_qubits

    def validate_circuit_width(self, num_qubits: int) -> None:
        """Raise when a circuit needs more qubits than the device has."""
        if num_qubits > self.num_qubits:
            raise HardwareError(
                f"circuit needs {num_qubits} qubits but {self.name} "
                f"has only {self.num_qubits}"
            )


def generic_backend(
    coupling: CouplingMap,
    name: str = "generic",
    seed: Optional[int] = 2023,
    supports_dynamic_circuits: bool = True,
) -> Backend:
    """Wrap a coupling map with a synthetic calibration."""
    return Backend(
        name=name,
        coupling=coupling,
        calibration=synthetic_calibration(coupling, seed=seed),
        supports_dynamic_circuits=supports_dynamic_circuits,
    )
