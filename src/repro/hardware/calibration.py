"""Device calibration: per-link CNOT error/duration, per-qubit readout error,
single-qubit error, coherence times, and measurement/reset durations.

The paper exports real calibration data from IBM Mumbai; offline we generate
*synthetic* calibrations with realistic, seeded distributions so error
variability (which SR-CaQR exploits for placement) is present and
reproducible.  Typical IBM Falcon ranges used:

* CX error: 0.5 % – 3 % (log-normal-ish spread)
* CX duration: 250 – 550 ns (1,100 – 2,500 dt at 0.22 ns/dt)
* readout error: 1 % – 6 %
* 1Q (sx/x) error: 0.02 % – 0.1 %
* T1/T2: 50 – 200 µs
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.circuit import gates
from repro.exceptions import HardwareError
from repro.hardware.coupling import CouplingMap

__all__ = ["Calibration", "synthetic_calibration"]


def _edge_key(a: int, b: int) -> FrozenSet[int]:
    return frozenset((a, b))


@dataclass
class Calibration:
    """Error/timing data for one device snapshot.

    All durations are in ``dt`` (0.22 ns); all errors are probabilities.
    """

    cx_error: Dict[FrozenSet[int], float] = field(default_factory=dict)
    cx_duration: Dict[FrozenSet[int], int] = field(default_factory=dict)
    readout_error: Dict[int, float] = field(default_factory=dict)
    sq_error: Dict[int, float] = field(default_factory=dict)
    t1_dt: Dict[int, float] = field(default_factory=dict)
    t2_dt: Dict[int, float] = field(default_factory=dict)
    measure_duration: int = gates.DEFAULT_DURATIONS["measure"]
    reset_duration: int = gates.DEFAULT_DURATIONS["reset"]
    sq_duration: int = gates.DEFAULT_DURATIONS["x"]

    # -- accessors with validation -------------------------------------------

    def get_cx_error(self, a: int, b: int) -> float:
        try:
            return self.cx_error[_edge_key(a, b)]
        except KeyError:
            raise HardwareError(f"no CX calibration for link ({a}, {b})") from None

    def get_cx_duration(self, a: int, b: int) -> int:
        try:
            return self.cx_duration[_edge_key(a, b)]
        except KeyError:
            raise HardwareError(f"no CX calibration for link ({a}, {b})") from None

    def get_readout_error(self, qubit: int) -> float:
        try:
            return self.readout_error[qubit]
        except KeyError:
            raise HardwareError(f"no readout calibration for qubit {qubit}") from None

    def get_sq_error(self, qubit: int) -> float:
        return self.sq_error.get(qubit, 0.0)

    def get_t1(self, qubit: int) -> float:
        return self.t1_dt.get(qubit, float("inf"))

    def get_t2(self, qubit: int) -> float:
        return self.t2_dt.get(qubit, float("inf"))

    # -- derived quantities ----------------------------------------------------

    def instruction_duration(self, name: str, qubits: Tuple[int, ...]) -> int:
        """Duration in dt of gate *name* on the given physical qubits."""
        if name == "measure":
            return self.measure_duration
        if name == "reset":
            return self.reset_duration
        if name == "swap" and len(qubits) == 2 and _edge_key(*qubits) in self.cx_duration:
            return 3 * self.get_cx_duration(*qubits)
        if (
            gates.gate_spec(name).num_qubits == 2
            and len(qubits) == 2
            and _edge_key(*qubits) in self.cx_duration
        ):
            return self.get_cx_duration(*qubits)
        return gates.default_duration(name)

    def link_fidelity(self, a: int, b: int) -> float:
        return 1.0 - self.get_cx_error(a, b)

    def best_link(self) -> Tuple[int, int]:
        """The physical link with the lowest CX error."""
        if not self.cx_error:
            raise HardwareError("calibration has no CX data")
        edge = min(self.cx_error, key=self.cx_error.get)
        a, b = sorted(edge)
        return a, b


def synthetic_calibration(
    coupling: CouplingMap,
    seed: Optional[int] = 2023,
    cx_error_range: Tuple[float, float] = (0.005, 0.03),
    readout_error_range: Tuple[float, float] = (0.01, 0.06),
    sq_error_range: Tuple[float, float] = (0.0002, 0.001),
    cx_duration_range: Tuple[int, int] = (1100, 2500),
    t1_range_us: Tuple[float, float] = (50.0, 200.0),
    measure_duration: Optional[int] = None,
    reset_duration: Optional[int] = None,
    sq_duration: Optional[int] = None,
) -> Calibration:
    """Generate a realistic, seeded calibration for *coupling*.

    Errors are drawn uniformly in log-space so most links are good and a
    few are notably bad — matching the heavy-tailed variability real
    devices show and the paper's placement heuristics exploit.

    The duration overrides let non-superconducting profiles (the device
    registry's trapped-ion entries, where measurement and reset dominate
    the schedule) replace the Falcon-flavoured defaults.
    """
    import math

    rng = random.Random(seed)

    def _log_uniform(low: float, high: float) -> float:
        return math.exp(rng.uniform(math.log(low), math.log(high)))

    calibration = Calibration()
    if measure_duration is not None:
        calibration.measure_duration = int(measure_duration)
    if reset_duration is not None:
        calibration.reset_duration = int(reset_duration)
    if sq_duration is not None:
        calibration.sq_duration = int(sq_duration)
    for a, b in coupling.edges:
        key = _edge_key(a, b)
        calibration.cx_error[key] = _log_uniform(*cx_error_range)
        calibration.cx_duration[key] = int(rng.uniform(*cx_duration_range))
    us_to_dt = 1000.0 / gates.DT_NANOSECONDS  # 1 us in dt
    for q in range(coupling.num_qubits):
        calibration.readout_error[q] = _log_uniform(*readout_error_range)
        calibration.sq_error[q] = _log_uniform(*sq_error_range)
        t1 = rng.uniform(*t1_range_us)
        calibration.t1_dt[q] = t1 * us_to_dt
        calibration.t2_dt[q] = min(rng.uniform(0.5, 1.5) * t1, 2 * t1) * us_to_dt
    return calibration
