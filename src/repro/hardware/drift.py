"""Calibration drift: seeded random-walk time series over a backend.

Real devices are recalibrated on a cadence, and between (and across)
calibration runs the per-gate error rates and coherence times move — a
scenario the frozen snapshots in this repo could not express.
:class:`DriftSimulator` replays that: every tracked calibration value
performs an independent multiplicative random walk
(``value *= exp(N(0, volatility))`` per step), clamped to a maximum
relative excursion from its day-zero value and to physical bounds
(error probabilities stay below 50 %, T2 <= 2*T1).

Determinism: one seeded PRNG drawn in sorted-key order, so a
``(backend, volatility, seed)`` triple always yields the same series —
the drift-replay harness (:mod:`repro.service.driftreplay`), the CI
smoke gate, and the nightly benchmark all rely on replaying identical
snapshots.

Durations stay fixed: drift reports on production devices update error
rates and coherence times, while gate/measure lengths are pinned by the
pulse schedule.  That also means the *banded* backend digest
(:func:`repro.service.fingerprint.banded_backend_digest`) sees only
banded-value changes under drift — the exact fields banding quantises.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import HardwareError
from repro.hardware.backends import Backend
from repro.hardware.calibration import Calibration

__all__ = ["DriftSimulator", "drift_series"]

#: Error probabilities never walk above this (a link this bad would be
#: disabled by the provider, and ESP math needs error < 1).
_MAX_ERROR = 0.5


def _clamped(value: float, start: float, max_drift: float) -> float:
    """Clamp a walked value to within *max_drift*x of its day-zero value."""
    return min(max(value, start / max_drift), start * max_drift)


@dataclass
class DriftSimulator:
    """Seeded random-walk drift over one backend's calibration.

    Args:
        backend: the day-zero snapshot (never mutated).
        volatility: per-step standard deviation of ``log(value)`` — 0.02
            means a typical value moves ~2 % per step.
        seed: PRNG seed; the walk is a pure function of
            ``(backend, volatility, seed)``.
        max_drift: maximum relative excursion from the day-zero value
            (a value never leaves ``[start/max_drift, start*max_drift]``),
            so a long series cannot walk into absurd calibrations.
    """

    backend: Backend
    volatility: float = 0.02
    seed: int = 7
    max_drift: float = 4.0
    _rng: random.Random = field(init=False, repr=False)
    _step: int = field(init=False, default=0)
    _cx_error: Dict = field(init=False, repr=False)
    _readout: Dict = field(init=False, repr=False)
    _sq_error: Dict = field(init=False, repr=False)
    _t1: Dict = field(init=False, repr=False)
    _t2: Dict = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.volatility < 0:
            raise HardwareError("volatility must be >= 0")
        if self.max_drift < 1:
            raise HardwareError("max_drift must be >= 1")
        self._rng = random.Random(self.seed)
        calibration = self.backend.calibration
        self._cx_error = dict(calibration.cx_error)
        self._readout = dict(calibration.readout_error)
        self._sq_error = dict(calibration.sq_error)
        self._t1 = dict(calibration.t1_dt)
        self._t2 = dict(calibration.t2_dt)

    @property
    def step_index(self) -> int:
        """How many :meth:`step` calls have been applied."""
        return self._step

    def _walk(self, values: Dict, starts: Dict) -> None:
        # sorted iteration: dict order must not leak into the PRNG stream
        for key in sorted(values, key=repr):
            walked = values[key] * math.exp(
                self._rng.gauss(0.0, self.volatility)
            )
            values[key] = _clamped(walked, starts[key], self.max_drift)

    def step(self) -> Backend:
        """Advance the walk one step and return the new snapshot."""
        calibration = self.backend.calibration
        self._walk(self._cx_error, calibration.cx_error)
        self._walk(self._readout, calibration.readout_error)
        self._walk(self._sq_error, calibration.sq_error)
        self._walk(self._t1, calibration.t1_dt)
        self._walk(self._t2, calibration.t2_dt)
        self._step += 1
        return self.snapshot()

    def snapshot(self) -> Backend:
        """A fresh Backend at the walk's current position (no aliasing).

        The name, coupling map, capability flags, and all durations come
        from the day-zero backend unchanged — only error rates and
        coherence times differ, so the banded digest is the only digest
        that can survive a step.
        """
        source = self.backend.calibration
        calibration = Calibration(
            cx_error={
                key: min(value, _MAX_ERROR)
                for key, value in self._cx_error.items()
            },
            cx_duration=dict(source.cx_duration),
            readout_error={
                key: min(value, _MAX_ERROR)
                for key, value in self._readout.items()
            },
            sq_error={
                key: min(value, _MAX_ERROR)
                for key, value in self._sq_error.items()
            },
            t1_dt=dict(self._t1),
            t2_dt={
                # T2 is physically bounded by 2*T1
                qubit: min(value, 2.0 * self._t1.get(qubit, value))
                for qubit, value in self._t2.items()
            },
            measure_duration=source.measure_duration,
            reset_duration=source.reset_duration,
            sq_duration=source.sq_duration,
        )
        return replace(self.backend, calibration=calibration)

    def series(self, steps: int) -> Iterator[Backend]:
        """Yield *steps* snapshots: the day-zero backend, then one per step."""
        if steps < 1:
            raise HardwareError("steps must be >= 1")
        yield self.snapshot()
        for _ in range(steps - 1):
            yield self.step()


def drift_series(
    backend: Backend,
    steps: int,
    volatility: float = 0.02,
    seed: int = 7,
    max_drift: float = 4.0,
) -> List[Backend]:
    """The first *steps* snapshots of a :class:`DriftSimulator` walk.

    Element 0 is the pristine day-zero snapshot; each later element has
    drifted one more step.  Deterministic in all arguments.
    """
    simulator = DriftSimulator(
        backend, volatility=volatility, seed=seed, max_drift=max_drift
    )
    return list(simulator.series(steps))
