"""Top-level one-call API: ``caqr_compile``.

The paper's tool takes a circuit (or QAOA problem graph), a backend, and
user intent (save qubits to a budget / minimise depth / minimise SWAPs)
and returns a compiled dynamic circuit plus a report.  This module wires
the QS/SR passes, the tradeoff explorer, and the baseline transpiler into
that single entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import networkx as nx

from repro.analysis.metrics import CircuitMetrics, collect_metrics
from repro.circuit.circuit import QuantumCircuit
from repro.core.chains import ChainReuse
from repro.core.profile import ReuseEvalStats
from repro.core.qs_caqr import QSCaQR
from repro.core.qs_commuting import QSCaQRCommuting
from repro.core.sr_caqr import SRCaQR
from repro.core.sr_commuting import SRCaQRCommuting
from repro.core.tradeoff import (
    assess_reuse_benefit,
    select_point,
    sweep_commuting,
    sweep_regular,
)
from repro.exceptions import ReuseError
from repro.hardware.backends import Backend
from repro.sim.stats import SimStats
from repro.transpiler.pipeline import transpile
from repro.transpiler.stats import RouteStats

__all__ = ["CompileReport", "caqr_compile"]


@dataclass
class CompileReport:
    """Result of :func:`caqr_compile`.

    Attributes:
        circuit: the compiled (hardware-mapped when a backend was given)
            dynamic circuit.
        mode: the strategy that produced it.
        metrics: the paper's metric set for the compiled circuit.
        baseline_metrics: same metrics for the no-reuse baseline compile
            (present when a backend was given).
        reuse_beneficial: the benefit identifier's verdict.
        qubit_saving: fraction of qubits saved vs. the input.
        route_stats: the SR router's counter/timer sink (``"min_swap"``
            mode only; ``None`` otherwise).
        eval_stats: the QS evaluation engine's counter/timer sink,
            accumulated over every sweep/reduction this compile ran
            (cache hit-rate, candidate evaluations, greedy steps).
            Observability only — like the route-stats timers, excluded
            from determinism contracts.  Feeds the ``caqr_reuse_eval_*``
            prefix on ``GET /v1/metrics``.
        sim_stats: analytic-ESP instrumentation for the compiled circuit
            under the backend calibration (``esp`` gauge, per-kind
            instruction counts; present only when a backend was given).
            Feeds the ``caqr_sim_*`` metrics prefix.
        from_cache: ``True`` when the compile service served this report
            without running the compiler — a warm cache entry, an
            in-flight join, or a folded duplicate batch member (see
            ``docs/SERVICE.md``).
        strategy: the winning strategy's name when the report came out of
            a portfolio race (``strategy="portfolio"``); ``None`` on the
            single-strategy path.
        strategy_timings: per-strategy wall-clock seconds from the race
            (observability only — excluded from determinism contracts,
            like the route-stats timers).
        strategy_errors: strategies that failed inside the race, mapped
            to their error messages (the per-strategy error channel).
        optimality_gap: ``winner_qubits - optimal_qubits`` when the exact
            oracle ran to completion; ``None`` when it did not run.
        exact_optimal: the oracle's ``optimal`` flag when it ran
            (``False`` means the anytime budget cut the search short and
            the bound is best-so-far, not proven); ``None`` when the
            exact tier was not in the race.
        chain_stats: the chain engine's counter/timer sink
            (``strategy="chain"`` or a portfolio chain lane): window
            counts, beam sizes, inserted measure/reset tallies, greedy
            fallbacks.  Observability only, like ``eval_stats``.  Feeds
            the ``caqr_chain_*`` prefix on ``GET /v1/metrics``.
    """

    circuit: QuantumCircuit
    mode: str
    metrics: CircuitMetrics
    baseline_metrics: Optional[CircuitMetrics]
    reuse_beneficial: bool
    qubit_saving: float
    route_stats: Optional[RouteStats] = None
    eval_stats: Optional[ReuseEvalStats] = None
    sim_stats: Optional[SimStats] = None
    from_cache: bool = False
    strategy: Optional[str] = None
    strategy_timings: Optional[Dict[str, float]] = None
    strategy_errors: Optional[Dict[str, str]] = None
    optimality_gap: Optional[int] = None
    exact_optimal: Optional[bool] = None
    chain_stats: Optional[ReuseEvalStats] = None


def caqr_compile(
    target: Union[QuantumCircuit, nx.Graph],
    backend: Optional[Backend] = None,
    mode: str = "min_depth",
    qubit_limit: Optional[int] = None,
    reset_style: str = "cif",
    seed: int = 11,
    auto_commuting: bool = True,
    incremental: bool = True,
    parallel: bool = True,
    cache=None,
    strategy: str = "auto",
    objective: Optional[str] = None,
    portfolio_workers: Optional[int] = None,
    calib_bands: Optional[int] = None,
) -> CompileReport:
    """Compile a circuit or QAOA problem graph with qubit reuse.

    Args:
        target: a :class:`QuantumCircuit` (regular application) or a
            networkx problem graph (commuting QAOA application).
        backend: device to map onto; omit for logical-level output.
        mode: one of

            * ``"qubit_budget"`` — QS-CaQR to *qubit_limit* qubits
              (raises when infeasible);
            * ``"max_reuse"`` — QS-CaQR to the smallest reachable width;
            * ``"min_depth"`` — the sweep point with the best (compiled)
              depth;
            * ``"min_swap"`` — SR-CaQR (requires a backend).
        qubit_limit: required for ``"qubit_budget"``.
        reset_style: reuse reset idiom (``"cif"`` or ``"builtin"``).
        auto_commuting: recognise QAOA-shaped circuits and dispatch them to
            the commuting-gate pipeline (uniform-angle circuits only; the
            regular pipeline handles everything else soundly).
        incremental: drive QS-CaQR through the incremental evaluation
            session (default; ``False`` selects the from-scratch reference
            engine — both pick identical reuse pairs).
        parallel: allow process-pool candidate scoring on large circuits.
        cache: route the request through the content-addressed compile
            cache (:mod:`repro.service`): ``True`` uses the process-wide
            default service (persistent under ``$CAQR_CACHE_DIR`` when
            set), a directory string persists under that path, a
            :class:`~repro.service.CompileService` uses that instance,
            and ``None``/``False`` (default) compiles directly.  Served
            reports are flagged :attr:`CompileReport.from_cache`.
        strategy: ``"auto"`` (default) runs the single mode-selected
            pipeline; ``"portfolio"`` races every applicable engine —
            the QS variants, SR variants, the commuting pipeline, and
            the exact branch-and-bound tier on small circuits — and
            returns the objective-best result (see
            :class:`~repro.service.portfolio.PortfolioCompileService`
            and ``docs/PORTFOLIO.md``); ``"chain"`` runs the
            beam-searched reuse-chain engine
            (:class:`~repro.core.chains.ChainReuse`, circuit targets
            only — see ``docs/CHAINS.md``), which discovers whole chains
            jointly, is never wider than greedy QS, and switches to the
            trapped-ion dual-register cost model on all-to-all backends.
        objective: the winner criterion — ``"qubits"`` (default),
            ``"depth"``, or ``"est_error"`` (``"est_error"`` needs a
            backend under ``"portfolio"``).  Valid with
            ``strategy="portfolio"`` or ``strategy="chain"``.
        portfolio_workers: process-pool width for the portfolio race
            (``None`` uses the process-wide default service).  An engine
            knob: never changes the winning result, only how fast the
            race runs.
        calib_bands: drift tolerance of the cache key's backend digest —
            calibration values quantised into this many bands per decade
            (see ``docs/SERVICE.md`` and ``docs/BACKENDS.md``).  ``None``
            defers to ``$CAQR_CALIB_BANDS``; ``0`` pins exact digests.
            Only meaningful with ``cache``: it changes which snapshots
            share an entry, never the compiled output.
    """
    if strategy not in ("auto", "portfolio", "chain"):
        raise ReuseError(f"unknown compile strategy {strategy!r}")
    if objective is not None and strategy not in ("portfolio", "chain"):
        raise ReuseError("objective requires strategy='portfolio' or 'chain'")
    if cache:
        from repro.service.service import resolve_cache

        cache_kwargs = dict(
            backend=backend,
            mode=mode,
            qubit_limit=qubit_limit,
            reset_style=reset_style,
            seed=seed,
            auto_commuting=auto_commuting,
            incremental=incremental,
            parallel=parallel,
            strategy=strategy,
            objective=objective,
            portfolio_workers=portfolio_workers,
        )
        if calib_bands is not None:
            # only the caching services understand banding; duck-typed
            # cache objects keep seeing the historical signature
            cache_kwargs["calib_bands"] = calib_bands
        return resolve_cache(cache).compile(target, **cache_kwargs)
    if strategy == "portfolio":
        from repro.service.portfolio import (
            PortfolioCompileService,
            default_portfolio_service,
        )

        ephemeral_service = (
            None
            if portfolio_workers is None
            else PortfolioCompileService(max_workers=portfolio_workers)
        )
        service = ephemeral_service or default_portfolio_service()
        try:
            return service.compile(
                target,
                backend=backend,
                mode=mode,
                qubit_limit=qubit_limit,
                reset_style=reset_style,
                seed=seed,
                auto_commuting=auto_commuting,
                incremental=incremental,
                parallel=parallel,
                objective=objective if objective is not None else "qubits",
            )
        finally:
            if ephemeral_service is not None:
                # a one-call service must not leak its worker pool
                ephemeral_service.close()
    if strategy == "chain":
        return _chain_compile(
            target,
            backend=backend,
            mode=mode,
            qubit_limit=qubit_limit,
            reset_style=reset_style,
            seed=seed,
            objective=objective,
        )
    angles = None
    if (
        auto_commuting
        and isinstance(target, QuantumCircuit)
        and not isinstance(target, nx.Graph)
    ):
        from repro.core.structure import extract_commuting_structure

        structure = extract_commuting_structure(target)
        if (
            structure is not None
            and structure.uniform_gamma() is not None
            and structure.uniform_beta() is not None
        ):
            # the commuting pipeline sees strictly more reuse freedom
            target = structure.graph
            angles = (structure.uniform_gamma(), structure.uniform_beta())
    is_graph = isinstance(target, nx.Graph)
    if mode == "min_swap":
        if backend is None:
            raise ReuseError("min_swap mode needs a backend")
        # caqr_compile's ``parallel`` means "allow": map it onto the SR
        # router's tri-state knob (None = auto-detect, False = serial)
        sr_parallel = None if parallel else False
        if is_graph:
            sr_kwargs = {}
            if angles is not None:
                sr_kwargs = {"gamma": angles[0], "beta": angles[1]}
            sr = SRCaQRCommuting(
                backend,
                reset_style=reset_style,
                incremental=incremental,
                parallel=sr_parallel,
                **sr_kwargs,
            )
            result = sr.run(target, qubit_limit=qubit_limit)
            compiled = result.circuit
            route_stats = sr.stats
            original_width = target.number_of_nodes()
        else:
            sr = SRCaQR(
                backend,
                reset_style=reset_style,
                incremental=incremental,
                parallel=sr_parallel,
            )
            compiled = sr.run(target).circuit
            route_stats = sr.stats
            original_width = target.num_qubits
        baseline = _baseline_metrics(target, backend, seed, angles)
        eval_stats = ReuseEvalStats()
        sweep = _sweep(target, None, reset_style, seed,
                       incremental=incremental, parallel=parallel,
                       stats=eval_stats)
        metrics = collect_metrics(
            compiled, backend.calibration if backend else None
        )
        return CompileReport(
            circuit=compiled,
            mode=mode,
            metrics=metrics,
            baseline_metrics=baseline,
            reuse_beneficial=assess_reuse_benefit(sweep).beneficial,
            qubit_saving=1.0 - metrics.qubits_used / original_width,
            route_stats=route_stats,
            eval_stats=eval_stats,
            sim_stats=_esp_stats(compiled, backend),
        )

    if mode == "qubit_budget":
        if qubit_limit is None:
            raise ReuseError("qubit_budget mode needs qubit_limit")
        eval_stats = ReuseEvalStats()
        if is_graph:
            qs_kwargs = {}
            if angles is not None:
                qs_kwargs = {"gamma": angles[0], "beta": angles[1]}
            engine = QSCaQRCommuting(
                target, reset_style=reset_style, stats=eval_stats, **qs_kwargs
            )
            point = engine.reduce_to(qubit_limit)
            original_width = target.number_of_nodes()
        else:
            engine = QSCaQR(
                reset_style=reset_style,
                incremental=incremental,
                parallel=parallel,
            )
            point = engine.reduce_to(target, qubit_limit)
            eval_stats.merge(engine.stats)
            original_width = target.num_qubits
        if not point.feasible:
            raise ReuseError(
                f"cannot compile to {qubit_limit} qubits "
                f"(reached {point.qubits})"
            )
        logical = point.circuit
        compiled = (
            transpile(logical, backend, optimization_level=3, seed=seed).circuit
            if backend is not None
            else logical
        )
        sweep = _sweep(target, None, reset_style, seed, angles,
                       incremental=incremental, parallel=parallel,
                       stats=eval_stats)
        return CompileReport(
            circuit=compiled,
            mode=mode,
            metrics=collect_metrics(
                compiled, backend.calibration if backend else None
            ),
            baseline_metrics=_baseline_metrics(target, backend, seed, angles),
            reuse_beneficial=assess_reuse_benefit(sweep).beneficial,
            qubit_saving=1.0 - point.qubits / original_width,
            eval_stats=eval_stats,
            sim_stats=_esp_stats(compiled, backend),
        )

    if mode not in ("max_reuse", "min_depth"):
        raise ReuseError(f"unknown compile mode {mode!r}")
    eval_stats = ReuseEvalStats()
    sweep = _sweep(target, backend, reset_style, seed, angles,
                   incremental=incremental, parallel=parallel,
                   stats=eval_stats)
    point = select_point(sweep, mode)
    original_width = (
        target.number_of_nodes() if is_graph else target.num_qubits
    )
    return CompileReport(
        circuit=point.circuit,
        mode=mode,
        metrics=collect_metrics(
            point.circuit, backend.calibration if backend else None
        ),
        baseline_metrics=_baseline_metrics(target, backend, seed, angles),
        reuse_beneficial=assess_reuse_benefit(sweep).beneficial,
        qubit_saving=1.0 - point.qubits / original_width,
        eval_stats=eval_stats,
        sim_stats=_esp_stats(point.circuit, backend),
    )


def _all_to_all(backend) -> bool:
    """Whether *backend*'s coupling is complete (the trapped-ion regime)."""
    n = backend.coupling.num_qubits
    return len(backend.coupling.edges) == n * (n - 1) // 2


def _chain_compile(
    target,
    backend,
    mode,
    qubit_limit,
    reset_style,
    seed,
    objective,
) -> CompileReport:
    """The ``strategy="chain"`` pipeline: beam-searched reuse chains.

    All four compile modes map onto the chain engine: ``max_reuse`` /
    ``min_depth`` merge to exhaustion under the matching-floor-guided
    beam, ``qubit_budget`` stops merging the moment the budget fits
    (fewest inserted dynamic ops that reach it), and ``min_swap``
    compiles the chain plan and routes it onto the backend.  On an
    all-to-all backend the engine switches to the dual-register
    trapped-ion cost model: routing is free there, so the objective
    becomes minimising the mid-circuit measure/reset count the reuse
    inserts (see ``docs/CHAINS.md``).
    """
    if isinstance(target, nx.Graph):
        raise ReuseError(
            "strategy='chain' needs a QuantumCircuit target "
            "(build the QAOA circuit first)"
        )
    if mode not in ("max_reuse", "min_depth", "qubit_budget", "min_swap"):
        raise ReuseError(f"unknown compile mode {mode!r}")
    if mode == "min_swap" and backend is None:
        raise ReuseError("min_swap mode needs a backend")
    chain_stats = ReuseEvalStats()
    dual = backend is not None and _all_to_all(backend)
    chain_objective = objective or ("depth" if mode == "min_depth" else "qubits")
    budget = None
    if mode == "qubit_budget":
        if qubit_limit is None:
            raise ReuseError("qubit_budget mode needs qubit_limit")
        budget = qubit_limit
    engine = ChainReuse(
        objective=chain_objective,
        reset_style=reset_style,
        register_budget=budget,
        dual_register=dual,
        stats=chain_stats,
    )
    result = engine.run(target)
    if budget is not None and not result.feasible:
        raise ReuseError(
            f"cannot compile to {qubit_limit} qubits (reached {result.qubits})"
        )
    logical = result.circuit
    compiled = (
        transpile(logical, backend, optimization_level=3, seed=seed).circuit
        if backend is not None
        else logical
    )
    metrics = collect_metrics(
        compiled, backend.calibration if backend else None
    )
    return CompileReport(
        circuit=compiled,
        mode=mode,
        metrics=metrics,
        baseline_metrics=_baseline_metrics(target, backend, seed),
        reuse_beneficial=bool(result.pairs),
        qubit_saving=1.0 - result.qubits / target.num_qubits,
        sim_stats=_esp_stats(compiled, backend),
        strategy="chain",
        chain_stats=chain_stats,
    )


def _sweep(target, backend, reset_style, seed, angles=None,
           incremental=True, parallel=True, stats=None):
    if isinstance(target, nx.Graph):
        gamma, beta = angles if angles is not None else (None, None)
        return sweep_commuting(
            target,
            backend=backend,
            reset_style=reset_style,
            seed=seed,
            gamma=gamma,
            beta=beta,
            parallel=parallel,
            stats=stats,
        )
    return sweep_regular(
        target,
        backend=backend,
        reset_style=reset_style,
        seed=seed,
        incremental=incremental,
        parallel=parallel,
        stats=stats,
    )


def _esp_stats(circuit, backend) -> Optional[SimStats]:
    """Analytic-ESP instrumentation for a hardware-mapped compile.

    ``None`` without a backend, or when the circuit has gates the
    calibration cannot score (logical-level output) — a report must never
    fail over observability.
    """
    if backend is None:
        return None
    from repro.sim.metrics import estimated_success_probability

    stats = SimStats()
    try:
        estimated_success_probability(
            circuit, backend.calibration, stats=stats
        )
    except Exception:
        return None
    return stats


def _baseline_metrics(target, backend, seed, angles=None) -> Optional[CircuitMetrics]:
    if backend is None:
        return None
    if isinstance(target, nx.Graph):
        from repro.workloads.qaoa import qaoa_maxcut_circuit

        if angles is not None:
            circuit = qaoa_maxcut_circuit(
                target, gammas=[angles[0]], betas=[angles[1]]
            )
        else:
            circuit = qaoa_maxcut_circuit(target)
    else:
        circuit = target
    compiled = transpile(circuit, backend, optimization_level=3, seed=seed)
    return collect_metrics(compiled.circuit, backend.calibration)
