"""Random circuit generation for fuzzing and property-based tests."""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

__all__ = ["random_circuit"]

_ONE_QUBIT = ["x", "h", "s", "t", "sx", "rz", "rx", "ry"]
_TWO_QUBIT = ["cx", "cz", "rzz", "cp"]
_PARAMETRIC = {"rz", "rx", "ry", "rzz", "cp"}


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Optional[int] = None,
    two_qubit_fraction: float = 0.5,
    measure: bool = False,
    gate_pool_1q: Sequence[str] = tuple(_ONE_QUBIT),
    gate_pool_2q: Sequence[str] = tuple(_TWO_QUBIT),
) -> QuantumCircuit:
    """Generate a random circuit with roughly the requested 2Q fraction.

    Args:
        num_qubits: number of wires.
        num_gates: number of gate instructions to emit.
        seed: RNG seed for reproducibility.
        two_qubit_fraction: probability of drawing a two-qubit gate
            (requires at least two qubits).
        measure: append a full measurement layer at the end.
        gate_pool_1q / gate_pool_2q: gate names to draw from.
    """
    if num_qubits < 1:
        raise CircuitError("random_circuit needs at least one qubit")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0, name="random")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < two_qubit_fraction:
            name = rng.choice(list(gate_pool_2q))
            a, b = rng.sample(range(num_qubits), 2)
            if name in _PARAMETRIC:
                getattr(circuit, name)(rng.uniform(0, 3.14159), a, b)
            else:
                getattr(circuit, name)(a, b)
        else:
            name = rng.choice(list(gate_pool_1q))
            q = rng.randrange(num_qubits)
            if name in _PARAMETRIC:
                getattr(circuit, name)(rng.uniform(0, 3.14159), q)
            else:
                getattr(circuit, name)(q)
    if measure:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit
