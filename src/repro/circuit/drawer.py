"""Plain-text circuit drawing.

Renders a circuit as one row per quantum wire (plus one per classical
bit), gates stacked into time columns by wire collision — the same
levelling rule as :meth:`QuantumCircuit.depth`.  Dynamic-circuit
operations render with the conventions the paper uses: ``M`` for
measurement, ``|0>`` for reset, and ``X?c`` for a classically controlled
X (the optimised reuse reset).

Example (2-qubit reused BV)::

    q0: -H--*--H--M--X?c0--H--*--H--M-
    q1: -X--H-----|--X--------|--M----
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction

__all__ = ["draw"]

_SHORT_NAMES = {
    "measure": "M",
    "reset": "|0>",
    "barrier": "|",
    "id": "I",
    "sdg": "Sdg",
    "tdg": "Tdg",
    "sxdg": "SXdg",
}


def _gate_label(instruction: Instruction, position: int) -> str:
    """The symbol drawn on qubit *position* of the instruction."""
    name = instruction.name
    if name == "cx":
        label = "*" if position == 0 else "X"
    elif name in ("cz", "cp", "crz"):
        label = "*" if position == 0 else _SHORT_NAMES.get(name, name.upper())
    elif name == "ccx":
        label = "*" if position < 2 else "X"
    elif name == "swap":
        label = "x"
    elif name in _SHORT_NAMES:
        label = _SHORT_NAMES[name]
    elif instruction.params:
        label = f"{name.upper()}({instruction.params[0]:.2g})"
    else:
        label = name.upper()
    if instruction.condition is not None:
        label += f"?c{instruction.condition[0]}"
    return label


def draw(circuit: QuantumCircuit, max_width: int = 120) -> str:
    """Render *circuit* as ASCII art; long circuits wrap at *max_width*."""
    columns: List[Dict[int, str]] = []
    level: Dict[int, int] = {}
    for instruction in circuit.data:
        wires = list(instruction.qubits)
        if instruction.condition is not None or instruction.clbits:
            # serialise on all classical interactions: use a synthetic wire
            wires.append(-1)
        start = max((level.get(w, 0) for w in wires), default=0)
        while len(columns) <= start:
            columns.append({})
        cells = columns[start]
        for position, qubit in enumerate(instruction.qubits):
            cells[qubit] = _gate_label(instruction, position)
        # draw the vertical span of multi-qubit gates as '|' on crossed wires
        if len(instruction.qubits) > 1 and not instruction.is_directive():
            low = min(instruction.qubits)
            high = max(instruction.qubits)
            for crossed in range(low + 1, high):
                if crossed not in instruction.qubits:
                    cells.setdefault(crossed, "|")
        for w in wires:
            level[w] = start + 1

    widths = [
        max((len(cell) for cell in column.values()), default=1)
        for column in columns
    ]
    lines = []
    for q in range(circuit.num_qubits):
        parts = [f"q{q}: "]
        for column, width in zip(columns, widths):
            cell = column.get(q, "")
            parts.append("-" + cell.center(width, "-") + "-")
        lines.append("".join(parts))
    # wrap long rows
    if lines and max(len(line) for line in lines) > max_width:
        wrapped: List[str] = []
        prefix = max(len(f"q{q}: ") for q in range(circuit.num_qubits))
        body_width = max_width - prefix
        length = max(len(line) for line in lines) - prefix
        for offset in range(0, length, body_width):
            for line in lines:
                head, body = line[:prefix], line[prefix:]
                wrapped.append(head + body[offset : offset + body_width])
            wrapped.append("")
        return "\n".join(wrapped).rstrip()
    return "\n".join(lines)
