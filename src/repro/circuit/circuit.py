"""The :class:`QuantumCircuit` container.

A circuit owns ``num_qubits`` quantum wires and ``num_clbits`` classical
bits and holds an ordered list of :class:`~repro.circuit.instruction.
Instruction` objects.  It supports the dynamic-circuit operations at the
heart of the paper: mid-circuit measurement, reset, and classically
conditioned gates, plus the ``measure_and_reset`` idiom (measure followed by
a classically controlled X) that the paper shows halves reset duration.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.circuit.instruction import Instruction
from repro.exceptions import CircuitError

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered list of instructions over integer-indexed wires.

    Args:
        num_qubits: number of quantum wires.
        num_clbits: number of classical bits (defaults to 0).
        name: optional circuit name used in QASM output and reports.
    """

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("wire counts must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self.data: List[Instruction] = []

    # -- wire management ------------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )

    def _check_clbits(self, clbits: Iterable[int]) -> None:
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(
                    f"clbit {c} out of range for {self.num_clbits}-clbit circuit"
                )

    def add_qubits(self, count: int) -> None:
        """Append *count* fresh quantum wires."""
        if count < 0:
            raise CircuitError("cannot add a negative number of qubits")
        self.num_qubits += count

    def add_clbits(self, count: int) -> None:
        """Append *count* fresh classical bits."""
        if count < 0:
            raise CircuitError("cannot add a negative number of clbits")
        self.num_clbits += count

    # -- building -------------------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        """Validate wire indices and append *instruction*; return it."""
        self._check_qubits(instruction.qubits)
        self._check_clbits(instruction.clbits)
        if instruction.condition is not None:
            self._check_clbits([instruction.condition[0]])
        self.data.append(instruction)
        return instruction

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append every instruction from the iterable."""
        for instruction in instructions:
            self.append(instruction)

    def _gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> Instruction:
        return self.append(
            Instruction(name=name, qubits=tuple(qubits), params=tuple(params))
        )

    # one method per registered gate; each returns the Instruction so the
    # caller can chain ``.c_if(c, v)``.

    def id(self, qubit: int) -> Instruction:
        return self._gate("id", (qubit,))

    def x(self, qubit: int) -> Instruction:
        return self._gate("x", (qubit,))

    def y(self, qubit: int) -> Instruction:
        return self._gate("y", (qubit,))

    def z(self, qubit: int) -> Instruction:
        return self._gate("z", (qubit,))

    def h(self, qubit: int) -> Instruction:
        return self._gate("h", (qubit,))

    def s(self, qubit: int) -> Instruction:
        return self._gate("s", (qubit,))

    def sdg(self, qubit: int) -> Instruction:
        return self._gate("sdg", (qubit,))

    def t(self, qubit: int) -> Instruction:
        return self._gate("t", (qubit,))

    def tdg(self, qubit: int) -> Instruction:
        return self._gate("tdg", (qubit,))

    def sx(self, qubit: int) -> Instruction:
        return self._gate("sx", (qubit,))

    def sxdg(self, qubit: int) -> Instruction:
        return self._gate("sxdg", (qubit,))

    def rx(self, theta: float, qubit: int) -> Instruction:
        return self._gate("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> Instruction:
        return self._gate("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> Instruction:
        return self._gate("rz", (qubit,), (theta,))

    def p(self, lam: float, qubit: int) -> Instruction:
        return self._gate("p", (qubit,), (lam,))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> Instruction:
        return self._gate("u", (qubit,), (theta, phi, lam))

    def cx(self, control: int, target: int) -> Instruction:
        return self._gate("cx", (control, target))

    def cy(self, control: int, target: int) -> Instruction:
        return self._gate("cy", (control, target))

    def cz(self, control: int, target: int) -> Instruction:
        return self._gate("cz", (control, target))

    def cp(self, lam: float, control: int, target: int) -> Instruction:
        return self._gate("cp", (control, target), (lam,))

    def crz(self, theta: float, control: int, target: int) -> Instruction:
        return self._gate("crz", (control, target), (theta,))

    def rzz(self, theta: float, qubit1: int, qubit2: int) -> Instruction:
        return self._gate("rzz", (qubit1, qubit2), (theta,))

    def swap(self, qubit1: int, qubit2: int) -> Instruction:
        return self._gate("swap", (qubit1, qubit2))

    def ccx(self, control1: int, control2: int, target: int) -> Instruction:
        return self._gate("ccx", (control1, control2, target))

    def delay(self, duration_dt: float, qubit: int) -> Instruction:
        return self._gate("delay", (qubit,), (duration_dt,))

    # -- non-unitary / dynamic-circuit operations ------------------------------

    def measure(self, qubit: int, clbit: int) -> Instruction:
        """Measure *qubit* into *clbit* (mid-circuit measurement allowed)."""
        return self.append(
            Instruction(name="measure", qubits=(qubit,), clbits=(clbit,))
        )

    def measure_all(self) -> None:
        """Measure every qubit into the same-index classical bit.

        Grows the classical register if it is too small.
        """
        if self.num_clbits < self.num_qubits:
            self.add_clbits(self.num_qubits - self.num_clbits)
        for q in range(self.num_qubits):
            self.measure(q, q)

    def reset(self, qubit: int) -> Instruction:
        """Built-in reset (contains an implicit measurement pulse)."""
        return self.append(Instruction(name="reset", qubits=(qubit,)))

    def barrier(self, *qubits: int) -> Instruction:
        """Ordering barrier across *qubits* (all qubits when none given)."""
        qs = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(Instruction(name="barrier", qubits=qs))

    def measure_and_reset(self, qubit: int, clbit: int, style: str = "cif") -> None:
        """Measure *qubit* into *clbit* and return the wire to ``|0>``.

        This is the paper's reuse primitive (Section 2.1).  Two styles:

        * ``"cif"`` (default): measure + X conditioned on the outcome —
          the optimised form the paper shows takes ~half the time.
        * ``"builtin"``: measure + built-in reset, the naive form.
        """
        self.measure(qubit, clbit)
        if style == "cif":
            self.x(qubit).c_if(clbit, 1)
        elif style == "builtin":
            self.reset(qubit)
        else:
            raise CircuitError(f"unknown measure_and_reset style: {style!r}")

    # -- composition ------------------------------------------------------------

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[int]] = None,
        clbits: Optional[Sequence[int]] = None,
    ) -> "QuantumCircuit":
        """Return a new circuit with *other* appended onto this one.

        Args:
            other: circuit to append.
            qubits: for each of *other*'s qubits, the wire of ``self`` it
                maps onto (identity when omitted).
            clbits: same for classical bits.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits:
            raise CircuitError("qubit mapping length mismatch in compose")
        if len(clbits) != other.num_clbits:
            raise CircuitError("clbit mapping length mismatch in compose")
        out = self.copy()
        qmap = dict(enumerate(qubits))
        cmap = dict(enumerate(clbits))
        for instruction in other.data:
            out.append(instruction.remapped(qmap, cmap))
        return out

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Deep-enough copy: new instruction objects, same wire counts."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out.data = [instruction.copy() for instruction in self.data]
        return out

    def compacted(self) -> "QuantumCircuit":
        """Drop idle wires: renumber used qubits onto ``0..k-1``.

        Useful for simulating device-width physical circuits that only
        touch a few wires.  Classical bits are untouched.
        """
        used = self.used_qubits()
        mapping = {q: i for i, q in enumerate(used)}
        return self.remap_qubits(mapping, num_qubits=len(used))

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit wires renamed through *mapping*.

        Args:
            mapping: total mapping over the qubits actually used.
            num_qubits: wire count of the result (defaults to current).
        """
        out = QuantumCircuit(
            num_qubits if num_qubits is not None else self.num_qubits,
            self.num_clbits,
            self.name,
        )
        for instruction in self.data:
            out.append(instruction.remapped(mapping, None))
        return out

    # -- analysis ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.data)

    def size(self) -> int:
        """Number of non-directive instructions."""
        return sum(1 for instruction in self.data if not instruction.is_directive())

    def width(self) -> int:
        """Total wires (quantum + classical)."""
        return self.num_qubits + self.num_clbits

    def count_ops(self) -> Counter:
        """Histogram of instruction names."""
        return Counter(instruction.name for instruction in self.data)

    def two_qubit_gate_count(self) -> int:
        """Number of unitary two-qubit gates (the paper's 2Q-count metric)."""
        return sum(1 for instruction in self.data if instruction.is_two_qubit())

    def swap_count(self) -> int:
        """Number of explicit SWAP gates."""
        return sum(1 for instruction in self.data if instruction.name == "swap")

    def depth(self, weight_fn: Optional[Callable[[Instruction], int]] = None) -> int:
        """Circuit depth by wire-collision levelling.

        Args:
            weight_fn: optional per-instruction weight; defaults to 1 per
                non-directive instruction (classic depth).  Pass
                ``lambda i: i.duration_dt()`` for a duration estimate.
        """
        level: Dict[Tuple[str, int], int] = {}
        maximum = 0
        for instruction in self.data:
            wires = [("q", q) for q in instruction.qubits]
            wires += [("c", c) for c in instruction.clbits]
            if instruction.condition is not None:
                wires.append(("c", instruction.condition[0]))
            start = max((level.get(w, 0) for w in wires), default=0)
            if instruction.is_directive():
                weight = 0
            elif weight_fn is not None:
                weight = weight_fn(instruction)
            else:
                weight = 1
            finish = start + weight
            for w in wires:
                level[w] = finish
            maximum = max(maximum, finish)
        return maximum

    def duration_dt(self) -> int:
        """Depth weighted by default gate durations, in dt cycles."""
        return self.depth(weight_fn=lambda instruction: instruction.duration_dt())

    def used_qubits(self) -> List[int]:
        """Qubits touched by at least one instruction, ascending."""
        used = set()
        for instruction in self.data:
            used.update(instruction.qubits)
        return sorted(used)

    def num_used_qubits(self) -> int:
        """The paper's "qubit usage" metric: wires that carry operations."""
        return len(self.used_qubits())

    def qubit_instruction_indices(self) -> Dict[int, List[int]]:
        """For each qubit, the ``self.data`` indices of its instructions."""
        table: Dict[int, List[int]] = {q: [] for q in range(self.num_qubits)}
        for idx, instruction in enumerate(self.data):
            for q in instruction.qubits:
                table[q].append(idx)
        return table

    def interaction_graph(self) -> nx.Graph:
        """The qubit interaction graph G_int of Section 3.2.2.

        Nodes are qubit indices; an edge joins two qubits whenever some
        multi-qubit unitary acts on both.  Edge attribute ``count`` records
        how many gates share the pair.
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        for instruction in self.data:
            if instruction.is_directive() or len(instruction.qubits) < 2:
                continue
            for i, a in enumerate(instruction.qubits):
                for b in instruction.qubits[i + 1 :]:
                    if graph.has_edge(a, b):
                        graph[a][b]["count"] += 1
                    else:
                        graph.add_edge(a, b, count=1)
        return graph

    def has_dynamic_operations(self) -> bool:
        """True when the circuit needs dynamic-circuit hardware support.

        That is: any mid-circuit measurement, any reset, or any classically
        conditioned gate.
        """
        seen_measure = set()
        for instruction in self.data:
            if instruction.name == "reset" or instruction.condition is not None:
                return True
            if instruction.name == "measure":
                seen_measure.add(instruction.qubits[0])
            elif any(q in seen_measure for q in instruction.qubits):
                return True
        return False

    # -- equality / display -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self.data == other.data
        )

    def draw(self, max_width: int = 120) -> str:
        """ASCII rendering of the circuit (see :mod:`repro.circuit.drawer`)."""
        from repro.circuit.drawer import draw as _draw

        return _draw(self, max_width=max_width)

    def __repr__(self) -> str:  # pragma: no cover - display convenience
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits} qubits, "
            f"{self.num_clbits} clbits, {len(self.data)} instructions>"
        )

    def __str__(self) -> str:  # pragma: no cover - display convenience
        lines = [repr(self)]
        lines.extend("  " + str(instruction) for instruction in self.data)
        return "\n".join(lines)
