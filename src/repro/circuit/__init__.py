"""Circuit intermediate representation: gates, instructions, circuits, QASM."""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import (
    GATES,
    GateSpec,
    default_duration,
    gate_matrix,
    gate_spec,
    is_directive,
    is_two_qubit_gate,
    is_unitary_gate,
)
from repro.circuit.instruction import Instruction
from repro.circuit.qasm import parse_qasm, to_qasm

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "GATES",
    "GateSpec",
    "gate_spec",
    "gate_matrix",
    "default_duration",
    "is_unitary_gate",
    "is_two_qubit_gate",
    "is_directive",
    "parse_qasm",
    "to_qasm",
]
