"""Gate definitions: names, arities, parameter counts, matrices, durations.

The library uses a flat string-keyed gate registry rather than a class per
gate.  An :class:`~repro.circuit.instruction.Instruction` stores the gate
*name*; this module answers every question about what that name means:

* how many qubits / classical bits / parameters it takes,
* its unitary matrix (for simulation), and
* its default duration in ``dt`` (for scheduling when no calibration is
  available).

Durations follow the paper's setting: 1 ``dt`` is 0.22 ns on IBM Falcon
processors.  The paper reports that the built-in ``measure + reset``
combination takes 33,179 dt while the optimised ``measure + c_if(X)``
takes 16,467 dt (Section 2.1, Fig. 2); the defaults below reproduce those
two figures exactly:

* ``measure``: 15,908 dt
* ``reset`` (built-in, contains an implicit measurement pulse): 17,271 dt
* conditional ``x`` (feed-forward latency + X pulse): 559 dt

so ``measure + reset`` = 33,179 dt and ``measure + x.c_if`` = 16,467 dt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CircuitError

__all__ = [
    "GateSpec",
    "GATES",
    "gate_spec",
    "gate_matrix",
    "default_duration",
    "is_unitary_gate",
    "is_two_qubit_gate",
    "is_directive",
    "DT_NANOSECONDS",
    "DEFAULT_DURATIONS",
    "CONDITIONAL_LATENCY_DT",
]

# One hardware cycle, in nanoseconds (IBM Falcon convention used in the paper).
DT_NANOSECONDS = 0.22

# Feed-forward latency added to a classically conditioned gate, in dt.
CONDITIONAL_LATENCY_DT = 399


def _m(rows: Sequence[Sequence[complex]]) -> np.ndarray:
    return np.array(rows, dtype=np.complex128)


_SQ2 = 1.0 / math.sqrt(2.0)

_I = _m([[1, 0], [0, 1]])
_X = _m([[0, 1], [1, 0]])
_Y = _m([[0, -1j], [1j, 0]])
_Z = _m([[1, 0], [0, -1]])
_H = _m([[_SQ2, _SQ2], [_SQ2, -_SQ2]])
_S = _m([[1, 0], [0, 1j]])
_SDG = _m([[1, 0], [0, -1j]])
_T = _m([[1, 0], [0, np.exp(1j * math.pi / 4)]])
_TDG = _m([[1, 0], [0, np.exp(-1j * math.pi / 4)]])
_SX = 0.5 * _m([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
_SXDG = 0.5 * _m([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]])


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _m([[c, -1j * s], [-1j * s, c]])


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _m([[c, -s], [s, c]])


def _rz(theta: float) -> np.ndarray:
    return _m([[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]])


def _p(lam: float) -> np.ndarray:
    return _m([[1, 0], [0, np.exp(1j * lam)]])


def _u(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _m(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ]
    )


def _controlled(u: np.ndarray) -> np.ndarray:
    """2-qubit controlled version of a 1-qubit unitary.

    Qubit ordering convention: qubit 0 of the instruction is the control and
    occupies the *most significant* position in the 2-qubit basis
    ``|q0 q1>`` = ``|control target>``.
    """
    out = np.eye(4, dtype=np.complex128)
    out[2:, 2:] = u
    return out


_CX = _controlled(_X)
_CY = _controlled(_Y)
_CZ = _controlled(_Z)
_SWAP = _m(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ]
)


def _cp(lam: float) -> np.ndarray:
    return _controlled(_p(lam))


def _crz(theta: float) -> np.ndarray:
    return _controlled(_rz(theta))


def _rzz(theta: float) -> np.ndarray:
    e_m = np.exp(-1j * theta / 2)
    e_p = np.exp(1j * theta / 2)
    return np.diag([e_m, e_p, e_p, e_m]).astype(np.complex128)


def _ccx() -> np.ndarray:
    out = np.eye(8, dtype=np.complex128)
    out[6:, 6:] = _X
    return out


@dataclass(frozen=True)
class GateSpec:
    """Static description of a named gate.

    Attributes:
        name: canonical lower-case gate name.
        num_qubits: qubit arity.
        num_clbits: classical-bit arity (non-zero only for ``measure``).
        num_params: number of float parameters.
        matrix_fn: callable mapping params to a unitary, or ``None`` for
            non-unitary operations (measure, reset, barrier, delay).
        duration_dt: default duration in ``dt`` cycles.
        directive: ``True`` for ops that occupy no hardware time and impose
            ordering only (barrier).
    """

    name: str
    num_qubits: int
    num_clbits: int
    num_params: int
    matrix_fn: Optional[Callable[..., np.ndarray]]
    duration_dt: int
    directive: bool = False


# Default durations (in dt) for gates, loosely modelled on IBM Falcon
# calibrations.  rz is virtual (zero duration); two-qubit gates dominate.
DEFAULT_DURATIONS: Dict[str, int] = {
    "id": 160,
    "x": 160,
    "y": 160,
    "z": 0,
    "h": 160,
    "s": 0,
    "sdg": 0,
    "t": 0,
    "tdg": 0,
    "sx": 160,
    "sxdg": 160,
    "rx": 160,
    "ry": 160,
    "rz": 0,
    "p": 0,
    "u": 160,
    "cx": 1760,
    "cy": 1920,
    "cz": 1760,
    "cp": 1920,
    "crz": 1920,
    "rzz": 1920,
    "swap": 5280,  # three CX
    "ccx": 10560,  # six CX equivalent
    "measure": 15908,
    "reset": 17271,
    "barrier": 0,
    "delay": 0,
}


def _spec(
    name: str,
    num_qubits: int,
    num_params: int = 0,
    matrix_fn: Optional[Callable[..., np.ndarray]] = None,
    num_clbits: int = 0,
    directive: bool = False,
) -> GateSpec:
    return GateSpec(
        name=name,
        num_qubits=num_qubits,
        num_clbits=num_clbits,
        num_params=num_params,
        matrix_fn=matrix_fn,
        duration_dt=DEFAULT_DURATIONS[name],
        directive=directive,
    )


GATES: Dict[str, GateSpec] = {
    "id": _spec("id", 1, matrix_fn=lambda: _I),
    "x": _spec("x", 1, matrix_fn=lambda: _X),
    "y": _spec("y", 1, matrix_fn=lambda: _Y),
    "z": _spec("z", 1, matrix_fn=lambda: _Z),
    "h": _spec("h", 1, matrix_fn=lambda: _H),
    "s": _spec("s", 1, matrix_fn=lambda: _S),
    "sdg": _spec("sdg", 1, matrix_fn=lambda: _SDG),
    "t": _spec("t", 1, matrix_fn=lambda: _T),
    "tdg": _spec("tdg", 1, matrix_fn=lambda: _TDG),
    "sx": _spec("sx", 1, matrix_fn=lambda: _SX),
    "sxdg": _spec("sxdg", 1, matrix_fn=lambda: _SXDG),
    "rx": _spec("rx", 1, 1, _rx),
    "ry": _spec("ry", 1, 1, _ry),
    "rz": _spec("rz", 1, 1, _rz),
    "p": _spec("p", 1, 1, _p),
    "u": _spec("u", 1, 3, _u),
    "cx": _spec("cx", 2, matrix_fn=lambda: _CX),
    "cy": _spec("cy", 2, matrix_fn=lambda: _CY),
    "cz": _spec("cz", 2, matrix_fn=lambda: _CZ),
    "cp": _spec("cp", 2, 1, _cp),
    "crz": _spec("crz", 2, 1, _crz),
    "rzz": _spec("rzz", 2, 1, _rzz),
    "swap": _spec("swap", 2, matrix_fn=lambda: _SWAP),
    "ccx": _spec("ccx", 3, matrix_fn=_ccx),
    "measure": _spec("measure", 1, num_clbits=1),
    "reset": _spec("reset", 1),
    "barrier": _spec("barrier", 0, directive=True),
    "delay": _spec("delay", 1, num_params=1),
}

# Gates whose two-qubit interaction counts as an edge of the qubit
# interaction graph (everything 2-qubit and unitary).
TWO_QUBIT_GATES = frozenset(
    name for name, spec in GATES.items() if spec.num_qubits == 2 and spec.matrix_fn
)


def gate_spec(name: str) -> GateSpec:
    """Return the :class:`GateSpec` for *name*, raising for unknown gates."""
    try:
        return GATES[name]
    except KeyError:
        raise CircuitError(f"unknown gate: {name!r}") from None


@lru_cache(maxsize=4096)
def _cached_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    """Build (once) and freeze the matrix for a (gate, params) binding.

    The returned array is shared between every call site, so it is marked
    read-only — simulators and the transpiler only read or matmul it, and
    an accidental in-place mutation would otherwise poison the cache.
    """
    spec = gate_spec(name)
    if spec.matrix_fn is None:
        raise CircuitError(f"gate {name!r} has no unitary matrix")
    if len(params) != spec.num_params:
        raise CircuitError(
            f"gate {name!r} expects {spec.num_params} params, got {len(params)}"
        )
    matrix = spec.matrix_fn(*params)
    matrix.setflags(write=False)
    return matrix


def gate_matrix(name: str, params: Tuple[float, ...] = ()) -> np.ndarray:
    """Return the unitary matrix of gate *name* with *params* bound.

    Matrices are memoised per ``(name, params)`` and returned as
    read-only arrays — copy before mutating.

    Raises:
        CircuitError: if the gate is unknown, non-unitary, or the parameter
            count does not match.
    """
    try:
        return _cached_matrix(name, tuple(params))
    except TypeError:
        # unhashable params (never produced by Instruction, which stores
        # tuples) fall back to an uncached build
        spec = gate_spec(name)
        if spec.matrix_fn is None:
            raise CircuitError(f"gate {name!r} has no unitary matrix")
        if len(params) != spec.num_params:
            raise CircuitError(
                f"gate {name!r} expects {spec.num_params} params, got {len(params)}"
            )
        return spec.matrix_fn(*params)


def default_duration(name: str) -> int:
    """Default duration of gate *name* in dt cycles."""
    return gate_spec(name).duration_dt


def is_unitary_gate(name: str) -> bool:
    """True when *name* denotes a unitary gate (simulable as a matrix)."""
    return gate_spec(name).matrix_fn is not None


def is_two_qubit_gate(name: str) -> bool:
    """True when *name* is a unitary two-qubit gate."""
    return name in TWO_QUBIT_GATES


def is_directive(name: str) -> bool:
    """True for scheduling directives (barrier) that take no hardware time."""
    return gate_spec(name).directive
