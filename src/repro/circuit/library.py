"""Common circuit constructions used by tests and examples.

These are generic building blocks (GHZ, QFT, random circuits live in
:mod:`repro.circuit.random`); the paper's benchmark circuits live in
:mod:`repro.workloads`.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.exceptions import CircuitError

__all__ = ["ghz", "qft", "linear_entangler", "bell_pair"]


def bell_pair() -> QuantumCircuit:
    """A 2-qubit Bell state preparation."""
    circuit = QuantumCircuit(2, name="bell")
    circuit.h(0)
    circuit.cx(0, 1)
    return circuit


def ghz(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """An *n*-qubit GHZ state preparation (H then a CX chain)."""
    if num_qubits < 1:
        raise CircuitError("ghz needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, num_qubits if measure else 0, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    if measure:
        for q in range(num_qubits):
            circuit.measure(q, q)
    return circuit


def qft(num_qubits: int) -> QuantumCircuit:
    """The textbook quantum Fourier transform (without final swaps)."""
    if num_qubits < 1:
        raise CircuitError("qft needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(angle, control, target)
    return circuit


def linear_entangler(num_qubits: int, layers: int = 1) -> QuantumCircuit:
    """Alternating layers of RY rotations and nearest-neighbour CX gates."""
    if num_qubits < 2:
        raise CircuitError("linear_entangler needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"entangler_{num_qubits}x{layers}")
    for layer in range(layers):
        for q in range(num_qubits):
            circuit.ry(0.1 * (layer + 1) * (q + 1), q)
        for q in range(0, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
        for q in range(1, num_qubits - 1, 2):
            circuit.cx(q, q + 1)
    return circuit
