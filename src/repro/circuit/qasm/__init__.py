"""OpenQASM 2.0 input/output for :class:`~repro.circuit.QuantumCircuit`."""

from repro.circuit.qasm.exporter import to_qasm
from repro.circuit.qasm.parser import parse_qasm

__all__ = ["parse_qasm", "to_qasm"]
