"""Serialize a QuantumCircuit back to OpenQASM 2.0 text.

The exporter emits a single ``q``/``c`` register pair.  Classically
conditioned gates are written with the dynamic-circuit idiom
``if (c<i> == v) gate ...`` using one single-bit creg per conditioned bit
(QASM 2 conditions test whole registers, so each conditioned classical bit
gets its own register named ``cc<i>``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.circuit import QuantumCircuit

__all__ = ["to_qasm"]


def _fmt_param(value: float) -> str:
    return f"{value:.12g}"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Return OpenQASM 2.0 text for *circuit*.

    Conditioned classical bits are hoisted into dedicated single-bit
    registers so the output round-trips through :func:`parse_qasm`.
    """
    conditioned_bits = sorted(
        {
            instruction.condition[0]
            for instruction in circuit.data
            if instruction.condition is not None
        }
    )
    plain_bits = [c for c in range(circuit.num_clbits) if c not in conditioned_bits]
    # map original clbit index -> (register name, index within register)
    location: Dict[int, tuple] = {}
    for i, c in enumerate(plain_bits):
        location[c] = ("c", i)
    for c in conditioned_bits:
        location[c] = (f"cc{c}", 0)

    lines: List[str] = ['OPENQASM 2.0;', 'include "qelib1.inc";']
    if circuit.num_qubits:
        lines.append(f"qreg q[{circuit.num_qubits}];")
    if plain_bits:
        lines.append(f"creg c[{len(plain_bits)}];")
    for c in conditioned_bits:
        lines.append(f"creg cc{c}[1];")

    for instruction in circuit.data:
        prefix = ""
        if instruction.condition is not None:
            clbit, value = instruction.condition
            register, _ = location[clbit]
            prefix = f"if ({register} == {value}) "
        if instruction.name == "measure":
            register, idx = location[instruction.clbits[0]]
            lines.append(
                f"{prefix}measure q[{instruction.qubits[0]}] -> {register}[{idx}];"
            )
            continue
        if instruction.name == "barrier":
            operands = ", ".join(f"q[{q}]" for q in instruction.qubits)
            lines.append(f"barrier {operands};")
            continue
        name = instruction.name
        params = ""
        if instruction.params:
            params = "(" + ", ".join(_fmt_param(p) for p in instruction.params) + ")"
        operands = ", ".join(f"q[{q}]" for q in instruction.qubits)
        lines.append(f"{prefix}{name}{params} {operands};")
    return "\n".join(lines) + "\n"
