"""Recursive-descent parser turning OpenQASM 2.0 into a QuantumCircuit.

Supported surface: ``OPENQASM 2.0``, ``include`` (ignored — the standard
gate library is built in), multiple ``qreg``/``creg`` declarations (flattened
into integer wire indices in declaration order), gate applications with
parameter expressions (``pi``, arithmetic, unary minus, ``^``), register
broadcasting (``h q;``), ``measure``/``reset``/``barrier``, single-bit
``if (c == v)`` conditions, user-defined ``gate`` macros (inlined), and
``opaque`` declarations (skipped).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GATES
from repro.circuit.qasm.lexer import Token, tokenize
from repro.exceptions import QasmError

__all__ = ["parse_qasm"]

# QASM names that map onto library gates, including legacy aliases.
_DIRECT = {name: name for name in GATES if name not in ("delay",)}
_DIRECT.update({"cnot": "cx", "iden": "id", "u3": "u", "u1": "p", "CX": "cx", "U": "u"})


@dataclass
class _GateMacro:
    """A user-defined gate body to inline at each call site."""

    params: List[str]
    qubits: List[str]
    body: List[Tuple[str, List["_Expr"], List[str]]] = field(default_factory=list)


class _Expr:
    """Parameter expression AST evaluated against a macro environment."""

    def __init__(self, kind: str, value=None, children: Sequence["_Expr"] = ()):
        self.kind = kind
        self.value = value
        self.children = list(children)

    def evaluate(self, env: Dict[str, float]) -> float:
        if self.kind == "num":
            return float(self.value)
        if self.kind == "name":
            if self.value == "pi":
                return math.pi
            if self.value in env:
                return env[self.value]
            raise QasmError(f"unknown identifier in expression: {self.value!r}")
        if self.kind == "neg":
            return -self.children[0].evaluate(env)
        if self.kind == "call":
            fn = {
                "sin": math.sin,
                "cos": math.cos,
                "tan": math.tan,
                "exp": math.exp,
                "ln": math.log,
                "sqrt": math.sqrt,
            }.get(self.value)
            if fn is None:
                raise QasmError(f"unknown function: {self.value!r}")
            return fn(self.children[0].evaluate(env))
        left = self.children[0].evaluate(env)
        right = self.children[1].evaluate(env)
        if self.kind == "+":
            return left + right
        if self.kind == "-":
            return left - right
        if self.kind == "*":
            return left * right
        if self.kind == "/":
            return left / right
        if self.kind == "^":
            return left**right
        raise QasmError(f"bad expression node {self.kind!r}")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.macros: Dict[str, _GateMacro] = {}
        self.circuit: Optional[QuantumCircuit] = None
        self.pending: List[Tuple] = []  # statements seen before registers known

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise QasmError("unexpected end of input")
        self.pos += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise QasmError(
                f"line {token.line}: expected {value or kind}, got {token.value!r}"
            )
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self.pos += 1
            return token
        return None

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        if self._accept("KEYWORD", "OPENQASM"):
            self._expect("NUMBER")
            self._expect("SEMI")
        while self._peek() is not None:
            self._statement()
        num_qubits = sum(size for _, size in self.qregs.values())
        num_clbits = sum(size for _, size in self.cregs.values())
        self.circuit = QuantumCircuit(num_qubits, num_clbits)
        for statement in self.pending:
            self._emit(*statement)
        return self.circuit

    def _statement(self) -> None:
        token = self._peek()
        assert token is not None
        if token.kind == "KEYWORD":
            handler = {
                "include": self._include,
                "qreg": self._qreg,
                "creg": self._creg,
                "gate": self._gate_def,
                "opaque": self._opaque,
                "measure": self._measure,
                "reset": self._reset,
                "barrier": self._barrier,
                "if": self._if,
            }.get(token.value)
            if handler is None:
                raise QasmError(f"line {token.line}: unexpected keyword {token.value!r}")
            handler()
        elif token.kind == "ID":
            self._gate_call(condition=None)
        else:
            raise QasmError(f"line {token.line}: unexpected token {token.value!r}")

    def _include(self) -> None:
        self._next()
        self._expect("STRING")
        self._expect("SEMI")

    def _qreg(self) -> None:
        self._next()
        name = self._expect("ID").value
        self._expect("LBRACKET")
        size = int(self._expect("NUMBER").value)
        self._expect("RBRACKET")
        self._expect("SEMI")
        offset = sum(s for _, s in self.qregs.values())
        self.qregs[name] = (offset, size)

    def _creg(self) -> None:
        self._next()
        name = self._expect("ID").value
        self._expect("LBRACKET")
        size = int(self._expect("NUMBER").value)
        self._expect("RBRACKET")
        self._expect("SEMI")
        offset = sum(s for _, s in self.cregs.values())
        self.cregs[name] = (offset, size)

    def _opaque(self) -> None:
        while self._next().kind != "SEMI":
            pass

    def _gate_def(self) -> None:
        self._next()
        name = self._expect("ID").value
        macro = _GateMacro(params=[], qubits=[])
        if self._accept("LPAREN"):
            if not self._accept("RPAREN"):
                macro.params.append(self._expect("ID").value)
                while self._accept("COMMA"):
                    macro.params.append(self._expect("ID").value)
                self._expect("RPAREN")
        macro.qubits.append(self._expect("ID").value)
        while self._accept("COMMA"):
            macro.qubits.append(self._expect("ID").value)
        self._expect("LBRACE")
        while not self._accept("RBRACE"):
            token = self._peek()
            if token and token.kind == "KEYWORD" and token.value == "barrier":
                # barriers inside macro bodies are ordering hints; skip them
                while self._next().kind != "SEMI":
                    pass
                continue
            call_name = self._expect("ID").value
            params: List[_Expr] = []
            if self._accept("LPAREN"):
                if not self._accept("RPAREN"):
                    params.append(self._expr())
                    while self._accept("COMMA"):
                        params.append(self._expr())
                    self._expect("RPAREN")
            args = [self._expect("ID").value]
            while self._accept("COMMA"):
                args.append(self._expect("ID").value)
            self._expect("SEMI")
            macro.body.append((call_name, params, args))
        self.macros[name] = macro

    # -- operand parsing -----------------------------------------------------------

    def _operand(self) -> Tuple[str, Optional[int]]:
        name = self._expect("ID").value
        index: Optional[int] = None
        if self._accept("LBRACKET"):
            index = int(self._expect("NUMBER").value)
            self._expect("RBRACKET")
        return name, index

    def _expr(self) -> _Expr:
        return self._add_expr()

    def _add_expr(self) -> _Expr:
        node = self._mul_expr()
        while True:
            token = self._peek()
            if token and token.kind == "OP" and token.value in "+-":
                self._next()
                node = _Expr(token.value, children=[node, self._mul_expr()])
            else:
                return node

    def _mul_expr(self) -> _Expr:
        node = self._unary_expr()
        while True:
            token = self._peek()
            if token and token.kind == "OP" and token.value in "*/":
                self._next()
                node = _Expr(token.value, children=[node, self._unary_expr()])
            else:
                return node

    def _unary_expr(self) -> _Expr:
        token = self._peek()
        if token and token.kind == "OP" and token.value == "-":
            self._next()
            return _Expr("neg", children=[self._unary_expr()])
        return self._pow_expr()

    def _pow_expr(self) -> _Expr:
        node = self._atom_expr()
        token = self._peek()
        if token and token.kind == "OP" and token.value == "^":
            self._next()
            return _Expr("^", children=[node, self._unary_expr()])
        return node

    def _atom_expr(self) -> _Expr:
        token = self._next()
        if token.kind == "NUMBER":
            return _Expr("num", token.value)
        if token.kind == "ID":
            if self._accept("LPAREN"):
                arg = self._expr()
                self._expect("RPAREN")
                return _Expr("call", token.value, [arg])
            return _Expr("name", token.value)
        if token.kind == "LPAREN":
            node = self._expr()
            self._expect("RPAREN")
            return node
        raise QasmError(f"line {token.line}: bad expression token {token.value!r}")

    # -- statements that emit instructions ----------------------------------------

    def _gate_call(self, condition) -> None:
        name = self._expect("ID").value
        params: List[_Expr] = []
        if self._accept("LPAREN"):
            if not self._accept("RPAREN"):
                params.append(self._expr())
                while self._accept("COMMA"):
                    params.append(self._expr())
                self._expect("RPAREN")
        operands = [self._operand()]
        while self._accept("COMMA"):
            operands.append(self._operand())
        self._expect("SEMI")
        values = [p.evaluate({}) for p in params]
        self.pending.append(("gate", name, values, operands, condition))

    def _measure(self) -> None:
        self._next()
        qubit = self._operand()
        self._expect("ARROW")
        clbit = self._operand()
        self._expect("SEMI")
        self.pending.append(("measure", qubit, clbit))

    def _reset(self) -> None:
        self._next()
        operand = self._operand()
        self._expect("SEMI")
        self.pending.append(("reset", operand))

    def _barrier(self) -> None:
        self._next()
        operands = [self._operand()]
        while self._accept("COMMA"):
            operands.append(self._operand())
        self._expect("SEMI")
        self.pending.append(("barrier", operands))

    def _if(self) -> None:
        self._next()
        self._expect("LPAREN")
        creg = self._expect("ID").value
        self._expect("EQ")
        value = int(self._expect("NUMBER").value)
        self._expect("RPAREN")
        token = self._peek()
        if token and token.kind == "KEYWORD" and token.value == "measure":
            raise QasmError(f"line {token.line}: conditional measure unsupported")
        self._gate_call(condition=(creg, value))

    # -- emission (after register sizes are known) -----------------------------------

    def _q_indices(self, operand: Tuple[str, Optional[int]]) -> List[int]:
        name, index = operand
        if name not in self.qregs:
            raise QasmError(f"unknown quantum register {name!r}")
        offset, size = self.qregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if index >= size:
            raise QasmError(f"index {index} out of range for qreg {name!r}")
        return [offset + index]

    def _c_indices(self, operand: Tuple[str, Optional[int]]) -> List[int]:
        name, index = operand
        if name not in self.cregs:
            raise QasmError(f"unknown classical register {name!r}")
        offset, size = self.cregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if index >= size:
            raise QasmError(f"index {index} out of range for creg {name!r}")
        return [offset + index]

    def _resolve_condition(self, condition) -> Optional[Tuple[int, int]]:
        if condition is None:
            return None
        creg, value = condition
        if creg not in self.cregs:
            raise QasmError(f"unknown classical register {creg!r} in condition")
        offset, size = self.cregs[creg]
        if size != 1 or value not in (0, 1):
            raise QasmError(
                "only single-bit classical conditions are supported "
                f"(register {creg!r} has {size} bits, value {value})"
            )
        return (offset, value)

    def _emit(self, kind: str, *payload) -> None:
        assert self.circuit is not None
        if kind == "measure":
            qubit_operand, clbit_operand = payload
            qs = self._q_indices(qubit_operand)
            cs = self._c_indices(clbit_operand)
            if len(qs) != len(cs):
                raise QasmError("measure register size mismatch")
            for q, c in zip(qs, cs):
                self.circuit.measure(q, c)
            return
        if kind == "reset":
            for q in self._q_indices(payload[0]):
                self.circuit.reset(q)
            return
        if kind == "barrier":
            qubits: List[int] = []
            for operand in payload[0]:
                qubits.extend(self._q_indices(operand))
            self.circuit.barrier(*qubits)
            return
        # gate call
        name, values, operands, condition = payload
        resolved = self._resolve_condition(condition)
        groups = [self._q_indices(op) for op in operands]
        lengths = {len(g) for g in groups if len(g) > 1}
        if len(lengths) > 1:
            raise QasmError(f"inconsistent broadcast sizes for gate {name!r}")
        repeat = lengths.pop() if lengths else 1
        for i in range(repeat):
            qubits = [g[i] if len(g) > 1 else g[0] for g in groups]
            self._apply_gate(name, values, qubits, resolved)

    def _apply_gate(
        self,
        name: str,
        values: List[float],
        qubits: List[int],
        condition: Optional[Tuple[int, int]],
    ) -> None:
        assert self.circuit is not None
        if name == "u2":
            values = [math.pi / 2] + list(values)
            name = "u"
        if name in _DIRECT:
            from repro.circuit.instruction import Instruction

            instruction = Instruction(
                name=_DIRECT[name],
                qubits=tuple(qubits),
                params=tuple(values),
                condition=condition,
            )
            self.circuit.append(instruction)
            return
        macro = self.macros.get(name)
        if macro is None:
            raise QasmError(f"unknown gate {name!r}")
        if len(macro.params) != len(values) or len(macro.qubits) != len(qubits):
            raise QasmError(f"bad arity calling macro gate {name!r}")
        env = dict(zip(macro.params, values))
        qubit_env = dict(zip(macro.qubits, qubits))
        for call_name, param_exprs, args in macro.body:
            call_values = [p.evaluate(env) for p in param_exprs]
            call_qubits = []
            for arg in args:
                if arg not in qubit_env:
                    raise QasmError(f"unknown qubit {arg!r} in macro {name!r}")
                call_qubits.append(qubit_env[arg])
            self._apply_gate(call_name, call_values, call_qubits, condition)


def parse_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 *text* into a :class:`QuantumCircuit`.

    Registers are flattened to integer wires in declaration order.
    """
    return _Parser(tokenize(text)).parse()
