"""A small tokenizer for OpenQASM 2.0 source text."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.exceptions import QasmError

__all__ = ["Token", "tokenize"]

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*"),
    ("NUMBER", r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?"),
    ("STRING", r'"[^"\n]*"'),
    ("ARROW", r"->"),
    ("EQ", r"=="),
    ("ID", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("OP", r"[+\-*/^]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("SEMI", r";"),
    ("COMMA", r","),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {
    "OPENQASM",
    "include",
    "qreg",
    "creg",
    "gate",
    "measure",
    "reset",
    "barrier",
    "if",
    "opaque",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source line for error reporting."""

    kind: str
    value: str
    line: int


def tokenize(text: str) -> List[Token]:
    """Tokenize OpenQASM 2 *text* into a list of :class:`Token`.

    Comments and whitespace are dropped; keywords get their own token kind.

    Raises:
        QasmError: on any character that is not valid QASM 2.
    """
    return list(_iter_tokens(text))


def _iter_tokens(text: str) -> Iterator[Token]:
    line = 1
    for match in _MASTER.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        if kind == "NEWLINE":
            line += 1
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise QasmError(f"line {line}: unexpected character {value!r}")
        if kind == "ID" and value in _KEYWORDS:
            kind = "KEYWORD"
        yield Token(kind, value, line)
