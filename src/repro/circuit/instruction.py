"""The :class:`Instruction` record: one operation applied to specific wires.

Qubits and classical bits are plain integers indexing into the owning
:class:`~repro.circuit.circuit.QuantumCircuit`.  An instruction may carry a
classical *condition* ``(clbit, value)`` meaning "apply only when the given
classical bit equals value" — this is how the paper's
``measure + classically-controlled X`` reset replacement is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.circuit import gates
from repro.exceptions import CircuitError

__all__ = ["Instruction"]


@dataclass
class Instruction:
    """A gate or non-unitary operation bound to concrete wires.

    Attributes:
        name: gate name registered in :data:`repro.circuit.gates.GATES`.
        qubits: qubit indices the operation acts on, in gate order
            (control first for controlled gates).
        clbits: classical bit indices written (only ``measure`` uses this).
        params: float gate parameters (rotation angles, delay duration).
        condition: optional ``(clbit, value)`` classical condition.
        label: optional free-form annotation (used by CaQR to tag the
            measure/reset operations it inserts for qubit reuse).
    """

    name: str
    qubits: Tuple[int, ...] = ()
    clbits: Tuple[int, ...] = ()
    params: Tuple[float, ...] = ()
    condition: Optional[Tuple[int, int]] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.qubits = tuple(self.qubits)
        self.clbits = tuple(self.clbits)
        self.params = tuple(self.params)
        spec = gates.gate_spec(self.name)
        if spec.num_qubits and len(self.qubits) != spec.num_qubits:
            raise CircuitError(
                f"{self.name} expects {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if self.name == "barrier" and not self.qubits:
            raise CircuitError("barrier needs at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubit in {self.name}: {self.qubits}")
        if len(self.clbits) != spec.num_clbits:
            raise CircuitError(
                f"{self.name} expects {spec.num_clbits} clbits, "
                f"got {len(self.clbits)}"
            )
        if len(self.params) != spec.num_params:
            raise CircuitError(
                f"{self.name} expects {spec.num_params} params, "
                f"got {len(self.params)}"
            )
        if self.condition is not None:
            clbit, value = self.condition
            if value not in (0, 1):
                raise CircuitError("condition value must be 0 or 1")
            self.condition = (int(clbit), int(value))

    # -- fluent conditioning -------------------------------------------------

    def c_if(self, clbit: int, value: int) -> "Instruction":
        """Attach a classical condition in place and return ``self``.

        Mirrors the Qiskit idiom ``circ.x(0).c_if(c, 1)`` used by the paper
        for the optimised conditional reset.
        """
        if value not in (0, 1):
            raise CircuitError("condition value must be 0 or 1")
        self.condition = (int(clbit), int(value))
        return self

    # -- queries ---------------------------------------------------------------

    @property
    def spec(self) -> gates.GateSpec:
        """The static :class:`~repro.circuit.gates.GateSpec` of this op."""
        return gates.gate_spec(self.name)

    def is_unitary(self) -> bool:
        """True for matrix-representable gates (no measure/reset/barrier)."""
        return gates.is_unitary_gate(self.name)

    def is_directive(self) -> bool:
        """True for barriers (ordering-only directives)."""
        return gates.is_directive(self.name)

    def is_two_qubit(self) -> bool:
        """True for unitary two-qubit gates."""
        return gates.is_two_qubit_gate(self.name)

    def duration_dt(self) -> int:
        """Default duration in dt, including feed-forward latency when
        classically conditioned."""
        if self.name == "delay":
            base = int(self.params[0])
        else:
            base = gates.default_duration(self.name)
        if self.condition is not None:
            base += gates.CONDITIONAL_LATENCY_DT
        return base

    # -- transformation helpers -------------------------------------------------

    def remapped(self, qubit_map=None, clbit_map=None) -> "Instruction":
        """Return a copy with wires translated through the given mappings.

        Args:
            qubit_map: mapping (dict or callable) from old to new qubit index.
            clbit_map: mapping from old to new classical bit index.
        """

        def _lookup(mapping, idx):
            if mapping is None:
                return idx
            if callable(mapping):
                return mapping(idx)
            return mapping[idx]

        condition = self.condition
        if condition is not None and clbit_map is not None:
            condition = (_lookup(clbit_map, condition[0]), condition[1])
        return replace(
            self,
            qubits=tuple(_lookup(qubit_map, q) for q in self.qubits),
            clbits=tuple(_lookup(clbit_map, c) for c in self.clbits),
            condition=condition,
        )

    def copy(self) -> "Instruction":
        """Return an independent copy of this instruction."""
        return replace(self)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        parts = [self.name]
        if self.params:
            parts.append("(" + ", ".join(f"{p:g}" for p in self.params) + ")")
        parts.append(" q" + ",q".join(str(q) for q in self.qubits))
        if self.clbits:
            parts.append(" -> c" + ",c".join(str(c) for c in self.clbits))
        if self.condition is not None:
            parts.append(f" if c{self.condition[0]}=={self.condition[1]}")
        return "".join(parts)
