"""repro — a reproduction of CaQR (ASPLOS 2023): compiler-assisted qubit
reuse through dynamic circuits.

Public entry points:

* :class:`repro.circuit.QuantumCircuit` — the circuit IR with dynamic ops.
* :func:`repro.circuit.parse_qasm` / :func:`repro.circuit.to_qasm`.
* :mod:`repro.core` — the CaQR passes (``QSCaQR``, ``SRCaQR`` and the
  commuting-gate variants) plus the tradeoff explorer.
* :func:`repro.transpiler.transpile` — the SABRE-based baseline pipeline.
* :mod:`repro.sim` — noisy dynamic-circuit simulation and metrics.
* :mod:`repro.workloads` — the paper's benchmark circuits.
* :mod:`repro.service` — content-addressed compile cache and batch
  engine in front of :func:`caqr_compile` (``caqr_compile(..., cache=True)``).
"""

__version__ = "1.0.0"

from repro.circuit import QuantumCircuit
from repro.compile_api import CompileReport, caqr_compile

__all__ = ["QuantumCircuit", "caqr_compile", "CompileReport", "__version__"]
