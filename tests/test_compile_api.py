"""Tests for the top-level caqr_compile entry point."""

import pytest

from repro.compile_api import caqr_compile
from repro.exceptions import ReuseError
from repro.hardware import ibm_mumbai
from repro.sim import run_counts
from repro.workloads import bv_circuit, random_graph


class TestRegularModes:
    def test_qubit_budget(self):
        report = caqr_compile(bv_circuit(6), mode="qubit_budget", qubit_limit=2)
        assert report.metrics.qubits_used == 2
        assert report.qubit_saving == pytest.approx(4 / 6)
        assert report.reuse_beneficial

    def test_qubit_budget_infeasible(self):
        with pytest.raises(ReuseError):
            caqr_compile(bv_circuit(4), mode="qubit_budget", qubit_limit=1)

    def test_qubit_budget_needs_limit(self):
        with pytest.raises(ReuseError):
            caqr_compile(bv_circuit(4), mode="qubit_budget")

    def test_max_reuse_logical(self):
        report = caqr_compile(bv_circuit(8), mode="max_reuse")
        assert report.metrics.qubits_used == 2
        assert report.baseline_metrics is None

    def test_min_depth_with_backend(self):
        backend = ibm_mumbai()
        report = caqr_compile(bv_circuit(6), backend=backend, mode="min_depth")
        assert report.baseline_metrics is not None
        assert report.metrics.depth <= report.baseline_metrics.depth

    def test_min_swap_requires_backend(self):
        with pytest.raises(ReuseError):
            caqr_compile(bv_circuit(4), mode="min_swap")

    def test_min_swap_on_backend(self):
        backend = ibm_mumbai()
        report = caqr_compile(bv_circuit(8), backend=backend, mode="min_swap")
        assert report.metrics.swap_count <= report.baseline_metrics.swap_count

    def test_unknown_mode(self):
        with pytest.raises(ReuseError):
            caqr_compile(bv_circuit(4), mode="teleport")

    def test_compiled_circuit_still_correct(self):
        report = caqr_compile(bv_circuit(5), mode="max_reuse")
        counts = run_counts(report.circuit, shots=60, seed=2)
        projected = {}
        for key, value in counts.items():
            projected[key[:4]] = projected.get(key[:4], 0) + value
        assert projected == {"1111": 60}


class TestGraphTarget:
    def test_graph_qubit_budget(self):
        graph = random_graph(8, 0.3, seed=4)
        report = caqr_compile(graph, mode="qubit_budget", qubit_limit=6)
        assert report.metrics.qubits_used == 6

    def test_graph_min_swap(self):
        backend = ibm_mumbai()
        graph = random_graph(8, 0.3, seed=4)
        report = caqr_compile(graph, backend=backend, mode="min_swap")
        assert report.baseline_metrics is not None
        assert report.metrics.swap_count <= report.baseline_metrics.swap_count + 2
