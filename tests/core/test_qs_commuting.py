"""Tests for QS-CaQR on commuting-gate circuits (paper Section 3.2.2)."""

import networkx as nx
import pytest

from repro.core import (
    QSCaQRCommuting,
    ReusePair,
    materialize_commuting,
    minimum_qubits_by_coloring,
    schedule_commuting,
)
from repro.exceptions import ReuseError
from repro.sim import run_counts
from repro.workloads import power_law_graph, qaoa_maxcut_circuit, random_graph


def path_graph(n):
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def paper_fig10_graph():
    """5 vertices colorable with 3 colors: q0,q2,q4 white; q1 blue; q3 red."""
    graph = nx.Graph()
    graph.add_nodes_from(range(5))
    graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)])
    return graph


class TestColoringBound:
    def test_fig10_needs_three_colors(self):
        assert minimum_qubits_by_coloring(paper_fig10_graph()) == 3

    def test_path_needs_two(self):
        assert minimum_qubits_by_coloring(path_graph(6)) == 2

    def test_complete_graph_no_saving(self):
        assert minimum_qubits_by_coloring(nx.complete_graph(4)) == 4

    def test_empty_graph(self):
        assert minimum_qubits_by_coloring(nx.Graph()) == 0


class TestScheduler:
    def test_no_pairs_schedules_all_gates(self):
        graph = path_graph(4)
        schedule = schedule_commuting(graph, [])
        scheduled = [g for layer in schedule.layers for g in layer]
        assert sorted(scheduled) == sorted(tuple(sorted(e)) for e in graph.edges)

    def test_layers_are_matchings(self):
        graph = random_graph(8, 0.4, seed=1)
        schedule = schedule_commuting(graph, [])
        for layer in schedule.layers:
            qubits = [q for gate in layer for q in gate]
            assert len(qubits) == len(set(qubits))

    def test_pair_measure_fires_after_source_gates(self):
        graph = path_graph(4)  # edges (0,1),(1,2),(2,3)
        pair = ReusePair(0, 2)
        schedule = schedule_commuting(graph, [pair])
        fire_layer = schedule.measure_after_layer[pair]
        # gate (0,1) must be scheduled at or before the firing layer
        seen = [g for layer in schedule.layers[: fire_layer + 1] for g in layer]
        assert (0, 1) in seen

    def test_condition1_violation_rejected(self):
        graph = path_graph(3)
        with pytest.raises(ReuseError):
            schedule_commuting(graph, [ReusePair(0, 1)])

    def test_cyclic_pairs_rejected(self):
        # (0<->2) both ways is a cycle
        graph = path_graph(3)
        with pytest.raises(ReuseError):
            schedule_commuting(graph, [ReusePair(0, 2), ReusePair(2, 0)])

    def test_greedy_and_blossom_both_complete(self):
        graph = random_graph(10, 0.4, seed=2)
        for method in ("blossom", "greedy"):
            schedule = schedule_commuting(graph, [], matching=method)
            total = sum(len(layer) for layer in schedule.layers)
            assert total == graph.number_of_edges()

    def test_unknown_matching_rejected(self):
        with pytest.raises(ReuseError):
            schedule_commuting(path_graph(3), [], matching="quantum")


class TestMaterialize:
    def test_no_pairs_matches_plain_qaoa_width(self):
        graph = path_graph(4)
        circuit = materialize_commuting(graph, [])
        assert circuit.num_qubits == 4
        ops = circuit.count_ops()
        assert ops["rzz"] == 3
        assert ops["h"] == 4
        assert ops["rx"] == 4
        assert ops["measure"] == 4

    def test_pair_shrinks_width_and_adds_reset(self):
        graph = path_graph(4)
        circuit = materialize_commuting(graph, [ReusePair(0, 2)])
        assert circuit.num_qubits == 3
        conditionals = [i for i in circuit.data if i.condition is not None]
        assert len(conditionals) == 1

    def test_clbits_track_logical_qubits(self):
        graph = path_graph(4)
        circuit = materialize_commuting(graph, [ReusePair(0, 2)])
        measures = [i for i in circuit.data if i.name == "measure"]
        assert sorted(i.clbits[0] for i in measures) == [0, 1, 2, 3]

    def test_semantics_match_unreused_qaoa(self):
        """Reuse must not change the QAOA output distribution."""
        graph = path_graph(4)
        gamma, beta = 0.8, 0.4
        plain = qaoa_maxcut_circuit(graph, gammas=[gamma], betas=[beta])
        reused = materialize_commuting(
            graph, [ReusePair(0, 2)], gamma=gamma, beta=beta
        )
        counts_plain = run_counts(plain, shots=6000, seed=5)
        counts_reused = run_counts(reused, shots=6000, seed=5)
        for key in set(counts_plain) | set(counts_reused):
            assert abs(counts_plain.get(key, 0) - counts_reused.get(key, 0)) < 400

    def test_chained_pairs(self):
        # path 0-1-2-3-4: chain 0 -> 2 -> 4 onto one wire
        graph = path_graph(5)
        circuit = materialize_commuting(
            graph, [ReusePair(0, 2), ReusePair(2, 4)]
        )
        assert circuit.num_qubits == 3


class TestDriver:
    def test_sweep_reaches_coloring_floor_on_path(self):
        graph = path_graph(6)
        compiler = QSCaQRCommuting(graph)
        points = compiler.sweep()
        assert points[0].qubits == 6
        assert points[-1].qubits <= 3  # chromatic bound is 2

    def test_reduce_to_feasible(self):
        graph = path_graph(6)
        result = QSCaQRCommuting(graph).reduce_to(4)
        assert result.feasible
        assert result.qubits == 4

    def test_reduce_to_infeasible(self):
        graph = nx.complete_graph(4)
        result = QSCaQRCommuting(graph).reduce_to(2)
        assert not result.feasible

    def test_depth_grows_as_qubits_shrink(self):
        graph = random_graph(10, 0.3, seed=3)
        points = QSCaQRCommuting(graph).sweep()
        assert points[-1].qubits < points[0].qubits
        assert points[-1].depth >= points[0].depth

    def test_power_law_saves_more_than_random(self):
        """The paper's Section 4.2.2 observation, at small scale."""
        n, density = 16, 0.3
        pl = QSCaQRCommuting(power_law_graph(n, density, seed=4)).sweep()
        rnd = QSCaQRCommuting(random_graph(n, density, seed=4)).sweep()
        assert pl[-1].qubits <= rnd[-1].qubits

    def test_semantics_at_each_sweep_point(self):
        graph = path_graph(4)
        compiler = QSCaQRCommuting(graph)
        points = compiler.sweep()
        reference = run_counts(points[0].circuit, shots=6000, seed=6)
        for point in points[1:]:
            counts = run_counts(point.circuit, shots=6000, seed=6)
            for key in set(reference) | set(counts):
                assert abs(reference.get(key, 0) - counts.get(key, 0)) < 450, (
                    f"distribution shifted at {point.qubits} qubits"
                )
