"""Tests for structural reuse profiling."""

import networkx as nx
import pytest

from repro.core.profile import profile_circuit, profile_graph
from repro.workloads import bv_circuit, power_law_graph, random_graph


class TestProfileGraph:
    def test_star_profile(self):
        graph = nx.star_graph(9)  # hub 0 + 9 leaves
        profile = profile_graph(graph)
        assert profile.max_degree == 9
        assert profile.median_degree == 1
        assert profile.coloring_bound == 2
        assert profile.lifetime_floor <= 3
        assert profile.max_saving > 0.5

    def test_complete_graph_no_saving(self):
        profile = profile_graph(nx.complete_graph(5))
        assert profile.lifetime_floor == 5
        assert profile.max_saving == 0.0

    def test_power_law_more_hub_dominant_than_random(self):
        pl = profile_graph(power_law_graph(32, 0.3, seed=4))
        rnd = profile_graph(random_graph(32, 0.3, seed=4))
        assert pl.hub_dominance > rnd.hub_dominance
        assert pl.lifetime_floor < rnd.lifetime_floor

    def test_empty_graph(self):
        profile = profile_graph(nx.Graph())
        assert profile.num_qubits == 0
        assert profile.max_saving == 0.0

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        profile = profile_graph(graph)
        assert profile.lifetime_floor == 1
        assert profile.max_saving == 0.75

    def test_summary_mentions_key_numbers(self):
        profile = profile_graph(nx.star_graph(5))
        text = profile.summary()
        assert "6 qubits" in text
        assert "Coloring bound 2" in text


class TestProfileCircuit:
    def test_bv_star_profile(self):
        profile = profile_circuit(bv_circuit(6))
        assert profile.num_qubits == 6
        assert profile.max_degree == 5  # the ancilla hub
        assert profile.lifetime_floor == 2

    def test_idle_wires_excluded(self):
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(6)
        circuit.cx(1, 4)
        profile = profile_circuit(circuit)
        assert profile.num_qubits == 2
        assert profile.num_edges == 1


class TestReuseEvalStats:
    def _stats(self):
        from repro.core.profile import ReuseEvalStats

        return ReuseEvalStats()

    def test_counters_accumulate(self):
        stats = self._stats()
        stats.count("evaluations")
        stats.count("evaluations", 4)
        stats.count("steps", 2)
        assert stats.counters == {"evaluations": 5, "steps": 2}

    def test_timed_context_accumulates(self):
        stats = self._stats()
        with stats.timed("score"):
            pass
        with stats.timed("score"):
            pass
        assert stats.timers["score"] >= 0.0
        assert len(stats.timers) == 1

    def test_timed_records_on_exception(self):
        stats = self._stats()
        with pytest.raises(ValueError):
            with stats.timed("apply"):
                raise ValueError("boom")
        assert "apply" in stats.timers

    def test_cache_hit_rate(self):
        stats = self._stats()
        assert stats.cache_hit_rate == 0.0
        stats.count("evaluations", 3)
        stats.count("cache_hits", 1)
        assert stats.cache_hit_rate == pytest.approx(0.25)

    def test_per_step_time(self):
        stats = self._stats()
        assert stats.per_step_time("score") == 0.0
        stats.count("steps", 4)
        stats.add_time("score", 2.0)
        assert stats.per_step_time("score") == pytest.approx(0.5)

    def test_merge_and_reset(self):
        a = self._stats()
        b = self._stats()
        a.count("steps")
        a.add_time("score", 1.0)
        b.count("steps", 2)
        b.add_time("score", 0.5)
        a.merge(b)
        assert a.counters["steps"] == 3
        assert a.timers["score"] == pytest.approx(1.5)
        a.reset()
        assert a.counters == {} and a.timers == {}

    def test_summary_mentions_everything(self):
        stats = self._stats()
        stats.count("evaluations", 2)
        stats.add_time("score", 0.25)
        text = stats.summary()
        assert "evaluations=2" in text
        assert "hit_rate=" in text
        assert "score_s=0.250" in text
