"""Tests for structural reuse profiling."""

import networkx as nx
import pytest

from repro.core.profile import profile_circuit, profile_graph
from repro.workloads import bv_circuit, power_law_graph, random_graph


class TestProfileGraph:
    def test_star_profile(self):
        graph = nx.star_graph(9)  # hub 0 + 9 leaves
        profile = profile_graph(graph)
        assert profile.max_degree == 9
        assert profile.median_degree == 1
        assert profile.coloring_bound == 2
        assert profile.lifetime_floor <= 3
        assert profile.max_saving > 0.5

    def test_complete_graph_no_saving(self):
        profile = profile_graph(nx.complete_graph(5))
        assert profile.lifetime_floor == 5
        assert profile.max_saving == 0.0

    def test_power_law_more_hub_dominant_than_random(self):
        pl = profile_graph(power_law_graph(32, 0.3, seed=4))
        rnd = profile_graph(random_graph(32, 0.3, seed=4))
        assert pl.hub_dominance > rnd.hub_dominance
        assert pl.lifetime_floor < rnd.lifetime_floor

    def test_empty_graph(self):
        profile = profile_graph(nx.Graph())
        assert profile.num_qubits == 0
        assert profile.max_saving == 0.0

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        profile = profile_graph(graph)
        assert profile.lifetime_floor == 1
        assert profile.max_saving == 0.75

    def test_summary_mentions_key_numbers(self):
        profile = profile_graph(nx.star_graph(5))
        text = profile.summary()
        assert "6 qubits" in text
        assert "Coloring bound 2" in text


class TestProfileCircuit:
    def test_bv_star_profile(self):
        profile = profile_circuit(bv_circuit(6))
        assert profile.num_qubits == 6
        assert profile.max_degree == 5  # the ancilla hub
        assert profile.lifetime_floor == 2

    def test_idle_wires_excluded(self):
        from repro.circuit import QuantumCircuit

        circuit = QuantumCircuit(6)
        circuit.cx(1, 4)
        profile = profile_circuit(circuit)
        assert profile.num_qubits == 2
        assert profile.num_edges == 1
