"""Tests for the reuse transformation (wire merging via measure+reset)."""

import pytest

from repro.circuit import QuantumCircuit
from repro.core import ReusePair, apply_reuse_chain, apply_reuse_pair
from repro.exceptions import ReuseError
from repro.sim import run_counts
from repro.workloads import bv_circuit, bv_expected_bitstring


class TestApplyReusePair:
    def test_width_shrinks_by_one(self):
        circuit = bv_circuit(4)
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        assert result.circuit.num_qubits == 3

    def test_invalid_pair_rejected(self):
        circuit = QuantumCircuit(2, 2)
        circuit.cx(0, 1)
        with pytest.raises(ReuseError):
            apply_reuse_pair(circuit, ReusePair(0, 1))

    def test_condition2_violation_rejected(self):
        circuit = QuantumCircuit(4)
        circuit.cx(3, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 0)
        with pytest.raises(ReuseError):
            apply_reuse_pair(circuit, ReusePair(0, 3))

    def test_reuses_existing_terminal_measure(self):
        """BV's data qubits end in a measurement: no new clbit needed."""
        circuit = bv_circuit(4)
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        assert result.circuit.num_clbits == circuit.num_clbits
        assert result.measure_clbit == 0

    def test_adds_measure_when_no_terminal_measure(self):
        circuit = QuantumCircuit(3, 0)
        circuit.h(0)
        circuit.h(1)
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        assert result.circuit.num_clbits == 1
        names = [i.name for i in result.circuit.data]
        assert "measure" in names

    def test_conditional_reset_inserted(self):
        circuit = bv_circuit(4)
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        conditionals = [
            i for i in result.circuit.data if i.condition is not None
        ]
        assert len(conditionals) == 1
        assert conditionals[0].name == "x"
        assert conditionals[0].condition == (0, 1)

    def test_builtin_reset_style(self):
        circuit = bv_circuit(4)
        result = apply_reuse_pair(circuit, ReusePair(0, 1), reset_style="builtin")
        assert "reset" in result.circuit.count_ops()

    def test_bad_reset_style(self):
        with pytest.raises(ReuseError):
            apply_reuse_pair(bv_circuit(3), ReusePair(0, 1), reset_style="banana")

    def test_target_gates_after_reset_on_merged_wire(self):
        circuit = bv_circuit(4)
        merged_wire_ops = []
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        wire = result.qubit_map[0]
        for instruction in result.circuit.data:
            if wire in instruction.qubits:
                merged_wire_ops.append(instruction)
        names = [i.name for i in merged_wire_ops]
        # q0's H, CX, H, measure; the conditional X; then q1's gates
        x_index = next(
            i for i, instr in enumerate(merged_wire_ops) if instr.condition
        )
        assert "measure" in names[:x_index]
        assert names[x_index + 1 :].count("cx") == 1

    def test_semantics_bv_preserved(self):
        """The reused BV circuit must still output the secret."""
        circuit = bv_circuit(4, secret=[1, 0, 1])
        result = apply_reuse_pair(circuit, ReusePair(0, 1))
        counts = run_counts(result.circuit, shots=200, seed=5)
        assert counts == {bv_expected_bitstring(4, [1, 0, 1]): 200}


class TestApplyReuseChain:
    def test_bv_to_two_qubits(self):
        """Paper Fig. 1(c): chaining reuse takes 5-qubit BV to 2 qubits."""
        circuit = bv_circuit(5)
        # after each application the data wires renumber; reusing wire 0
        # for the next data qubit is always pair (0 -> 1)
        chained = apply_reuse_chain(
            circuit, [ReusePair(0, 1), ReusePair(0, 1), ReusePair(0, 1)]
        )
        assert chained.num_qubits == 2
        counts = run_counts(chained, shots=200, seed=6)
        assert counts == {"1111": 200}

    def test_chain_preserves_clbit_assignment(self):
        circuit = bv_circuit(4, secret=[0, 1, 1])
        chained = apply_reuse_chain(circuit, [ReusePair(0, 1), ReusePair(0, 1)])
        assert chained.num_qubits == 2
        counts = run_counts(chained, shots=100, seed=7)
        assert counts == {"011": 100}
